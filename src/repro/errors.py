"""Exception hierarchy for the repro storage manager.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Corruption-related
conditions carry enough structure (addresses, region ids, transaction ids)
for the recovery machinery to act on them programmatically.

Every error also answers one question a caller can act on without
inspecting its type: **is retrying this operation safe and potentially
useful?**  ``exc.retryable`` is ``True`` exactly when (a) the failed
operation left no partial durable effect the caller could double-apply
by retrying, and (b) the condition is transient -- load, contention, or
a shard that the supervisor is already bringing back.  The full
classification contract lives in ``docs/errors.md``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package.

    ``retryable`` is a class-level default; see :class:`RetryableError`
    for the conditions under which a subclass (or an instance -- the
    attribute may be overridden per raise) advertises ``True``.
    """

    #: Whether retrying the failed operation is safe and potentially
    #: useful.  ``False`` by default: unknown errors must not be retried
    #: blindly (the operation may have partially applied).
    retryable = False


class RetryableError(ReproError):
    """Marker base for transient errors that are safe to retry.

    A subclass promises two things: the failed operation left **no
    durable effect** that a retry could double-apply, and the condition
    is **transient** -- backing off and retrying (possibly after the
    supervisor repairs a shard) can succeed.  The serving layer copies
    this flag into :class:`~repro.serve.protocol.Response.retryable` so
    remote clients get the same contract without type introspection.
    """

    retryable = True


class ConfigError(ReproError):
    """Invalid configuration (bad region size, page size, scheme name...)."""


class MemoryError_(ReproError):
    """Address-space violation inside the simulated memory image."""


class OutOfSpaceError(MemoryError_):
    """A segment or allocator has no room for the requested allocation."""


class ProtectionFault(ReproError):
    """A write hit a hardware-protected page (simulated mprotect trap).

    Under the Hardware Protection scheme this is the SIGSEGV-equivalent:
    the offending write is *not* performed.
    """

    def __init__(self, address: int, length: int, page_id: int):
        super().__init__(
            f"write of {length} bytes at address {address:#x} trapped on "
            f"protected page {page_id}"
        )
        self.address = address
        self.length = length
        self.page_id = page_id


class CorruptionDetected(ReproError):
    """A codeword check failed: region content no longer matches codeword."""

    def __init__(self, region_ids: list[int], context: str = ""):
        ids = ", ".join(str(r) for r in region_ids)
        suffix = f" during {context}" if context else ""
        super().__init__(f"codeword mismatch in region(s) [{ids}]{suffix}")
        self.region_ids = list(region_ids)
        self.context = context


class AuditFailure(CorruptionDetected):
    """An asynchronous audit found corrupt regions.

    Carries the log sequence number of the last *clean* audit (``Audit_SN``
    in the paper) so corruption recovery knows the window in which the
    error could have occurred.
    """

    def __init__(self, region_ids: list[int], clean_audit_lsn: int):
        super().__init__(region_ids, context="audit")
        self.clean_audit_lsn = clean_audit_lsn


class QuarantinedRegionError(CorruptionDetected):
    """A prescribed read touched a region held in quarantine.

    Under ``DBConfig(quarantine=True)`` a failed audit or precheck places
    the corrupt regions in a quarantine set instead of aborting the
    system; a later read overlapping a quarantined region raises this
    (or triggers a transparent repair under ``quarantine_repair=True``)
    so known-corrupt bytes are never served as data.  Subclasses
    :class:`CorruptionDetected` so existing handlers keep working.

    Deliberately **not** retryable: the bytes stay corrupt until a
    repair runs, so an immediate retry hits the same quarantine.  Run
    (or wait for) ``repair_quarantined()``, then retry.
    """

    def __init__(self, region_ids: list[int], address: int = 0, length: int = 0):
        super().__init__(list(region_ids), context="quarantined read")
        self.address = address
        self.length = length


class SimulatedCrash(ReproError):
    """An armed crash point fired (deterministic fault testing).

    Raised by :class:`~repro.faults.crashpoints.CrashPointRegistry` when
    execution reaches an armed point; carries the point name and the hit
    count at which it fired so tests can assert exactly where the
    simulated process died.  Callers are expected to treat the exception
    as a process death: call :meth:`Database.crash` and recover.
    """

    def __init__(self, point: str, hit: int = 1):
        super().__init__(f"simulated crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class LatchError(ReproError):
    """Latch misuse: double release, upgrade deadlock, wrong owner."""


class LockError(ReproError):
    """Logical lock misuse or (in tests) an induced lock conflict.

    A *conflict* (another transaction holds the key) is transient --
    the lock manager is non-blocking, nothing was acquired, and the
    holder will finish -- so lock errors are retryable.  Misuse (bad
    duration string) shares the class but is caught in development.

    Conflicts carry the holding transaction id (``holder_txn_id``) so
    the cross-shard deadlock detector can build wait-for edges.  The
    id also rides in the message (``"... by transaction N"``) because
    worker-process errors cross the pipe as strings;
    :func:`lock_holder_from_detail` recovers it on the other side.
    """

    retryable = True

    def __init__(self, message: str, holder_txn_id: int | None = None):
        super().__init__(message)
        self.holder_txn_id = holder_txn_id


def lock_holder_from_detail(detail: str) -> int | None:
    """Recover a conflict's holder txn id from a stringified LockError.

    Worker-process shards report errors over a pipe as ``(class name,
    message)`` pairs, so structured attributes are lost; the holder id
    survives only in the message text.  Returns ``None`` when the text
    is not a conflict message.
    """
    marker = " by transaction "
    index = detail.rfind(marker)
    if index < 0:
        return None
    tail = detail[index + len(marker):].strip()
    digits = ""
    for ch in tail:
        if not ch.isdigit():
            break
        digits += ch
    return int(digits) if digits else None


class TransactionError(ReproError):
    """Transaction state machine violation (e.g. update after commit)."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back; carries the abort reason."""

    def __init__(self, txn_id: int, reason: str):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class LogError(ReproError):
    """Log codec or sequencing error (bad record, LSN out of order...)."""


class RecoveryError(ReproError):
    """Restart or corruption recovery could not complete."""


class CheckpointError(ReproError):
    """Checkpoint could not be written or certified."""


class ArchiveError(RecoveryError):
    """An archive could not be created or read.

    Typed (rather than a bare :class:`RecoveryError` message) so campaign
    scoring can classify "the checkpoint under the archive failed
    certification" as a detection, not a schedule error.
    """


class ReplicationError(ReproError):
    """Log shipping or replica replay failed (bad batch, seq/LSN gap...)."""


class DivergenceDetected(CorruptionDetected):
    """The replica's codeword digest disagrees with the primary's.

    Carries the replay epoch (the primary checkpoint's ``CK_end``), the
    mismatched region ids and the classification the
    :class:`~repro.replication.divergence.DivergenceDetector` assigned:
    ``"primary"`` (replica self-audit clean -- the primary's content
    moved), ``"replica"`` (the replica's own audit convicts the region)
    or ``"both"``.
    """

    def __init__(self, region_ids: list[int], ck_end: int, classification: str):
        super().__init__(list(region_ids), context=f"digest epoch {ck_end}")
        self.ck_end = ck_end
        self.classification = classification


class PromotionError(ReplicationError):
    """Failover could not certify the replica's image.

    Carries the failed :class:`~repro.core.audit.AuditReport` so the
    caller can quarantine/repair and retry the promotion.
    """

    def __init__(self, message: str, audit_report=None):
        super().__init__(message)
        self.audit_report = audit_report


class WorkloadError(ReproError):
    """Benchmark workload misconfiguration."""


class ServeError(ReproError):
    """Serving front-end misuse (closed session, unknown op...)."""


class BackpressureError(RetryableError, ServeError):
    """The server's admission queue is full; retry after backoff.

    Raised to the *submitting* client instead of growing the queue
    without bound -- the server sheds load at admission, it does not
    melt down under it.  Retryable: the request was never admitted,
    so nothing was applied.
    """



class ShardError(ReproError):
    """Shard router/worker failure (dead worker, routing misuse...)."""


class TwoPhaseCommitError(ShardError):
    """A cross-shard transaction could not reach a consistent outcome
    in this round trip.

    Two very different conditions share the type, told apart by
    ``committed``:

    * ``committed=False`` -- presumed abort.  No decision was made
      durable, every prepared branch rolls back (now or at that
      shard's restart), so the *whole transaction* is safe to retry:
      ``retryable`` is ``True``.
    * ``committed=True`` -- the decision log holds the commit but
      delivering it to some participant failed.  The transaction IS
      committed; retrying it would apply it twice, so ``retryable``
      is ``False``.  Under supervision this state never surfaces: the
      :class:`~repro.shard.supervisor.ShardSupervisor` queues the
      undelivered decision and completes it, and the router reports
      success.
    """

    def __init__(
        self,
        message: str,
        gid: str | None = None,
        committed: bool = False,
        undelivered: tuple[int, ...] = (),
    ):
        super().__init__(message)
        self.gid = gid
        self.committed = committed
        #: Shard ids still owed the commit decision (``committed=True``).
        self.undelivered = tuple(undelivered)
        self.retryable = not committed


class ShardUnavailableError(RetryableError, ShardError):
    """The shard is down, hung, or mid-recovery; fail fast and retry.

    Raised *instead of blocking on a dead worker pipe*: the supervisor
    marks a crashed/hung shard and every routed call to it returns this
    immediately until the shard's recovery certifies and it rejoins.
    Nothing was applied (the call never reached a serving shard), so
    the error is retryable; surviving shards keep serving throughout.
    """

    def __init__(self, shard_id: int, state: str, detail: str = ""):
        suffix = f": {detail}" if detail else ""
        super().__init__(f"shard {shard_id} is {state}{suffix}")
        self.shard_id = shard_id
        self.state = state


class ShardTimeoutError(ShardUnavailableError):
    """A shard call exceeded its deadline; the worker is presumed hung.

    The pipe to the worker is poisoned by the timeout (a late reply
    would desynchronize the FIFO), so the supervisor restarts the
    worker exactly as if it had died.  The timed-out call's outcome is
    *indeterminate* until that restart recovery runs -- uncommitted
    work rolls back, which is what makes the error safe to mark
    retryable at the transaction level.
    """

    def __init__(self, shard_id: int, timeout_s: float):
        ShardError.__init__(
            self,
            f"shard {shard_id} did not answer within {timeout_s:.3f}s; "
            "worker presumed hung, pipe poisoned",
        )
        self.shard_id = shard_id
        self.state = "hung"
        self.timeout_s = timeout_s


class PartialDrainError(RetryableError, ShardError):
    """A supervised pipelined drain lost part of its backlog to a dead
    or hung shard.

    The answers that did arrive are in ``results`` (in submission order
    per shard, surviving shards complete); ``lost`` maps each crashed
    shard id to the number of its un-acked submissions whose outcome is
    now *indeterminate* until that shard's restart recovery settles
    them (committed work replays, the rest rolls back).  Raised instead
    of silently returning a shorter list so a caller correlating drain
    results with ``submit_txn_nowait`` calls can tell exactly which
    transactions need the outcome-check-then-retry discipline.
    Retryable at the session level: the shards are being restarted by
    the supervisor.
    """

    def __init__(self, results: list, lost: dict):
        total = sum(lost.values())
        super().__init__(
            f"drain lost the un-acked backlog of shard(s) "
            f"{sorted(lost)}: {total} submission(s) indeterminate until "
            "restart recovery settles them"
        )
        self.results = results
        self.lost = dict(lost)


class DeadlockError(RetryableError, ShardError):
    """A cross-shard wait-for cycle convicted this session (youngest
    victim).  Its open branches are rolled back on every shard; the
    whole transaction is safe to retry and the surviving sessions in
    the cycle proceed.
    """

    def __init__(self, victim: int, cycle: tuple[int, ...]):
        chain = " -> ".join(str(s) for s in cycle)
        super().__init__(
            f"session {victim} aborted to break cross-shard deadlock "
            f"cycle [{chain}]"
        )
        self.victim = victim
        self.cycle = tuple(cycle)
