"""Exception hierarchy for the repro storage manager.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Corruption-related
conditions carry enough structure (addresses, region ids, transaction ids)
for the recovery machinery to act on them programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """Invalid configuration (bad region size, page size, scheme name...)."""


class MemoryError_(ReproError):
    """Address-space violation inside the simulated memory image."""


class OutOfSpaceError(MemoryError_):
    """A segment or allocator has no room for the requested allocation."""


class ProtectionFault(ReproError):
    """A write hit a hardware-protected page (simulated mprotect trap).

    Under the Hardware Protection scheme this is the SIGSEGV-equivalent:
    the offending write is *not* performed.
    """

    def __init__(self, address: int, length: int, page_id: int):
        super().__init__(
            f"write of {length} bytes at address {address:#x} trapped on "
            f"protected page {page_id}"
        )
        self.address = address
        self.length = length
        self.page_id = page_id


class CorruptionDetected(ReproError):
    """A codeword check failed: region content no longer matches codeword."""

    def __init__(self, region_ids: list[int], context: str = ""):
        ids = ", ".join(str(r) for r in region_ids)
        suffix = f" during {context}" if context else ""
        super().__init__(f"codeword mismatch in region(s) [{ids}]{suffix}")
        self.region_ids = list(region_ids)
        self.context = context


class AuditFailure(CorruptionDetected):
    """An asynchronous audit found corrupt regions.

    Carries the log sequence number of the last *clean* audit (``Audit_SN``
    in the paper) so corruption recovery knows the window in which the
    error could have occurred.
    """

    def __init__(self, region_ids: list[int], clean_audit_lsn: int):
        super().__init__(region_ids, context="audit")
        self.clean_audit_lsn = clean_audit_lsn


class QuarantinedRegionError(CorruptionDetected):
    """A prescribed read touched a region held in quarantine.

    Under ``DBConfig(quarantine=True)`` a failed audit or precheck places
    the corrupt regions in a quarantine set instead of aborting the
    system; a later read overlapping a quarantined region raises this
    (or triggers a transparent repair under ``quarantine_repair=True``)
    so known-corrupt bytes are never served as data.  Subclasses
    :class:`CorruptionDetected` so existing handlers keep working.
    """

    def __init__(self, region_ids: list[int], address: int = 0, length: int = 0):
        super().__init__(list(region_ids), context="quarantined read")
        self.address = address
        self.length = length


class SimulatedCrash(ReproError):
    """An armed crash point fired (deterministic fault testing).

    Raised by :class:`~repro.faults.crashpoints.CrashPointRegistry` when
    execution reaches an armed point; carries the point name and the hit
    count at which it fired so tests can assert exactly where the
    simulated process died.  Callers are expected to treat the exception
    as a process death: call :meth:`Database.crash` and recover.
    """

    def __init__(self, point: str, hit: int = 1):
        super().__init__(f"simulated crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class LatchError(ReproError):
    """Latch misuse: double release, upgrade deadlock, wrong owner."""


class LockError(ReproError):
    """Logical lock misuse or (in tests) an induced lock conflict."""


class TransactionError(ReproError):
    """Transaction state machine violation (e.g. update after commit)."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back; carries the abort reason."""

    def __init__(self, txn_id: int, reason: str):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class LogError(ReproError):
    """Log codec or sequencing error (bad record, LSN out of order...)."""


class RecoveryError(ReproError):
    """Restart or corruption recovery could not complete."""


class CheckpointError(ReproError):
    """Checkpoint could not be written or certified."""


class ArchiveError(RecoveryError):
    """An archive could not be created or read.

    Typed (rather than a bare :class:`RecoveryError` message) so campaign
    scoring can classify "the checkpoint under the archive failed
    certification" as a detection, not a schedule error.
    """


class ReplicationError(ReproError):
    """Log shipping or replica replay failed (bad batch, seq/LSN gap...)."""


class DivergenceDetected(CorruptionDetected):
    """The replica's codeword digest disagrees with the primary's.

    Carries the replay epoch (the primary checkpoint's ``CK_end``), the
    mismatched region ids and the classification the
    :class:`~repro.replication.divergence.DivergenceDetector` assigned:
    ``"primary"`` (replica self-audit clean -- the primary's content
    moved), ``"replica"`` (the replica's own audit convicts the region)
    or ``"both"``.
    """

    def __init__(self, region_ids: list[int], ck_end: int, classification: str):
        super().__init__(list(region_ids), context=f"digest epoch {ck_end}")
        self.ck_end = ck_end
        self.classification = classification


class PromotionError(ReplicationError):
    """Failover could not certify the replica's image.

    Carries the failed :class:`~repro.core.audit.AuditReport` so the
    caller can quarantine/repair and retry the promotion.
    """

    def __init__(self, message: str, audit_report=None):
        super().__init__(message)
        self.audit_report = audit_report


class WorkloadError(ReproError):
    """Benchmark workload misconfiguration."""


class ServeError(ReproError):
    """Serving front-end misuse (closed session, unknown op...)."""


class BackpressureError(ServeError):
    """The server's admission queue is full; retry after backoff.

    Raised to the *submitting* client instead of growing the queue
    without bound -- the server sheds load at admission, it does not
    melt down under it.
    """



class ShardError(ReproError):
    """Shard router/worker failure (dead worker, routing misuse...)."""


class TwoPhaseCommitError(ShardError):
    """A cross-shard transaction could not reach a consistent outcome."""
