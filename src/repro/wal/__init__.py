"""Logging subsystem: record codec, local per-transaction logs, system log."""

from repro.wal.records import (
    AuditBeginRecord,
    AuditEndRecord,
    LogRecord,
    LogicalUndo,
    OpBeginRecord,
    OpCommitRecord,
    ReadRecord,
    TxnAbortRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    UpdateRecord,
    decode_record,
    encode_record,
)
from repro.wal.local_log import LocalRedoLog, LogicalUndoEntry, PhysicalUndo, UndoLog
from repro.wal.system_log import SystemLog

__all__ = [
    "LogRecord",
    "UpdateRecord",
    "ReadRecord",
    "OpBeginRecord",
    "OpCommitRecord",
    "TxnBeginRecord",
    "TxnCommitRecord",
    "TxnAbortRecord",
    "AuditBeginRecord",
    "AuditEndRecord",
    "LogicalUndo",
    "encode_record",
    "decode_record",
    "PhysicalUndo",
    "LogicalUndoEntry",
    "UndoLog",
    "LocalRedoLog",
    "SystemLog",
]
