"""The system log: in-memory tail plus stable on-disk log.

"The contents of the system log tail are flushed to the stable system log
on disk when a transaction commits, or during a checkpoint.  The system
log latch must be obtained before performing a flush." (Section 2.1)

LSNs are dense sequence numbers assigned when a record enters the tail
(i.e. at operation commit, when local redo records migrate here).  The
stable file stores ``u64 lsn`` followed by the framed record, so a scan
can start from any LSN (``CK_end``, ``Audit_SN``).

The write path is batch-oriented: a flush encodes the whole tail into one
``bytearray`` via :func:`~repro.wal.records.encode_into` (one write
syscall, no per-record joins), scans decode out of a single
``memoryview`` of the file, truncation splices the file at a byte offset
instead of decoding and re-encoding every survivor, and
:attr:`stable_record_count` is a counter maintained at flush/truncate
time instead of an O(file) scan per call.
"""

from __future__ import annotations

import os
import threading
from typing import Iterator

from repro.errors import LogError
from repro.faults.crashpoints import CrashPointRegistry
from repro.sim.clock import Meter
from repro.txn.latches import Latch
from repro.wal.records import LogRecord, decode_record, encode_into, type_codes

import struct

_LSN_HEADER = struct.Struct("<Q")

#: ``want`` filter matching no record type: frames are CRC-verified and
#: skipped without constructing the record.
_SKIP_ALL = frozenset()


def decode_frames(payload: bytes) -> Iterator[tuple[int, LogRecord]]:
    """Decode exported frame bytes into ``(lsn, record)`` pairs.

    Strict: a truncated header, bad CRC or non-ascending LSN raises
    :class:`~repro.errors.LogError`.  Used by the replica to turn a
    shipped batch into replayable records (and to reject corrupt batches
    before a single byte lands in its log).
    """
    view = memoryview(payload)
    size = len(view)
    offset = 0
    previous_lsn = -1
    while offset < size:
        if offset + 8 > size:
            raise LogError("truncated LSN header in shipped frames")
        (lsn,) = _LSN_HEADER.unpack_from(view, offset)
        record, offset = decode_record(view, offset + 8, None)
        if lsn <= previous_lsn:
            raise LogError(
                f"shipped frame LSNs out of order: {lsn} after {previous_lsn}"
            )
        previous_lsn = lsn
        yield lsn, record


class SystemLog:
    """System log tail + stable log file."""

    def __init__(
        self,
        path: str,
        meter: Meter,
        crashpoints: CrashPointRegistry | None = None,
    ) -> None:
        self.path = path
        self.meter = meter
        # A private inert registry when none is shared in: ``reach`` on an
        # un-armed registry is a dict lookup, so the flush path needs no
        # conditional instrumentation.
        self.crashpoints = crashpoints if crashpoints is not None else CrashPointRegistry()
        self.latch = Latch("system_log")
        # Guards LSN assignment and the in-memory tail so concurrent
        # serving sessions can append while a flush snapshots the tail.
        # Uncontended acquisition is a cheap C-level operation, and the
        # meter never sees it -- the paper's cost model charges the
        # *system log latch* (held across flushes), not this mutex.
        self._tail_lock = threading.Lock()
        self.tail: list[tuple[int, LogRecord]] = []
        self.next_lsn = 0
        self.end_of_stable_lsn = 0  # records with lsn < this are on disk
        self.torn_tail_detected = False
        self._clean_prefix_bytes = 0
        #: LSN of the last decodable frame seen by the most recent
        #: :meth:`scan` (-1 for an empty file) -- tracked for *every*
        #: frame, even ones a ``from_lsn``/``only`` filter skipped, so
        #: restart recovery can learn the true end of log from a
        #: filtered scan.
        self.last_scanned_lsn = -1
        self._file = open(path, "ab")
        # Stable-record counter: exact from birth for a fresh file,
        # lazily counted once when opening a pre-existing file.
        self._stable_count: int | None = 0 if self._file.tell() == 0 else None

    # ------------------------------------------------------------ write

    def append(self, record: LogRecord, charge: bool = True) -> int:
        """Add a record to the tail; returns its LSN.

        Records migrating from a local redo log were already charged when
        first appended there; callers pass ``charge=False`` for those so
        the move itself costs nothing extra (it is a pointer move in Dali).
        """
        with self._tail_lock:
            lsn = self.next_lsn
            self.next_lsn += 1
            self.tail.append((lsn, record))
        if charge:
            self.meter.charge("log_record")
            self.meter.charge("log_byte", record.approx_size())
        return lsn

    def extend(self, records, charge: bool = True) -> tuple[int, int]:
        """Append many records in one batch; returns ``(first_lsn, next_lsn)``.

        Meter-identical to a loop of :meth:`append` calls with the same
        ``charge`` flag: :meth:`~repro.sim.clock.Meter.charge` is linear,
        so one bulk ``log_record``/``log_byte`` charge equals the
        per-record sequence in both event counts and virtual nanoseconds.
        """
        records = list(records)
        with self._tail_lock:
            first = self.next_lsn
            lsn = first
            tail_append = self.tail.append
            for record in records:
                tail_append((lsn, record))
                lsn += 1
            self.next_lsn = lsn
        if charge and records:
            self.meter.charge("log_record", len(records))
            self.meter.charge(
                "log_byte", sum(record.approx_size() for record in records)
            )
        return first, lsn

    def flush(self) -> int:
        """Flush the tail to the stable log; returns end_of_stable_lsn.

        Holds the system log latch for the duration, as the paper requires
        to serialize access to the flush buffers.  The whole tail is
        encoded into one buffer and written with a single syscall.
        """
        with self.latch.exclusive():
            self.meter.charge("latch_pair")
            with self._tail_lock:
                if not self.tail:
                    return self.end_of_stable_lsn
                # Detach the tail under the mutex: records appended by
                # other sessions from here on ride the *next* flush.
                pending = self.tail
                self.tail = []
            self.crashpoints.reach("wal.flush.pre")
            self.meter.charge("flush_fixed")
            buf = bytearray()
            pack_lsn = _LSN_HEADER.pack
            for lsn, record in pending:
                buf += pack_lsn(lsn)
                encode_into(record, buf)
            armed = self.crashpoints.reach("wal.flush.mid", defer=True)
            if armed is not None:
                # A torn flush: a prefix of the buffer reaches disk, then
                # the process dies.  The surviving prefix ends mid-frame,
                # so the next scan's CRC check reports a torn tail --
                # exactly the state FaultInjector.torn_flush fabricates
                # after the fact.
                keep = armed.payload.get("keep_bytes")
                if keep is None:
                    keep = int(len(buf) * armed.payload.get("keep_fraction", 0.5))
                keep = max(0, min(keep, len(buf) - 1))
                self._file.write(buf[:keep])
                self._file.flush()
                self._stable_count = None  # bytes the counter can't vouch for
                self.crashpoints.crash("wal.flush.mid")
            self._file.write(buf)
            self._file.flush()
            self.crashpoints.reach("wal.flush.post")
            self.meter.charge("flush_byte", len(buf))
            if self._stable_count is not None:
                self._stable_count += len(pending)
            self.end_of_stable_lsn = pending[-1][0] + 1
            return self.end_of_stable_lsn

    def close(self) -> None:
        self._file.close()

    def crash(self) -> None:
        """Simulate a process crash: the unflushed tail is lost."""
        self.tail.clear()
        self._file.close()

    # ------------------------------------------------------------- read

    def scan(
        self, from_lsn: int = 0, strict: bool = False, only=None
    ) -> Iterator[tuple[int, LogRecord]]:
        """Yield ``(lsn, record)`` from the *stable* log, lsn >= from_lsn.

        A crash can tear the last flush, leaving a truncated or
        CRC-damaged record at the end of the file.  By default the scan
        stops cleanly at the first undecodable record (setting
        :attr:`torn_tail_detected`), which is the standard write-ahead-log
        recovery behaviour; ``strict=True`` raises instead, for integrity
        checks that must see every byte accounted for.

        ``only`` restricts the yield to an iterable of record *classes*
        (e.g. ``only=(AmendRecord,)`` for archive replay's amendment
        prepass).  Skipped frames -- filtered by type or below
        ``from_lsn`` -- are still CRC-verified and LSN-ordered, but the
        record object is never constructed, so a filtered scan touches
        each byte once and allocates nothing per skipped record.
        """
        self.torn_tail_detected = False
        self._clean_prefix_bytes = 0
        self.last_scanned_lsn = -1
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        want = type_codes(only) if only is not None else None
        view = memoryview(data)
        size = len(view)
        offset = 0
        previous_lsn = -1
        frames = 0
        unpack_lsn = _LSN_HEADER.unpack_from
        while offset < size:
            try:
                if offset + 8 > size:
                    raise LogError("truncated LSN header in stable log")
                (lsn,) = unpack_lsn(view, offset)
                record, offset = decode_record(
                    view, offset + 8, want if lsn >= from_lsn else _SKIP_ALL
                )
            except LogError:
                if strict:
                    raise
                self.torn_tail_detected = True
                # The file holds bytes the counter can no longer vouch
                # for; recount lazily after the tail is repaired.
                self._stable_count = None
                return
            self._clean_prefix_bytes = offset
            if lsn <= previous_lsn:
                raise LogError(
                    f"stable log LSNs out of order: {lsn} after {previous_lsn}"
                )
            previous_lsn = lsn
            self.last_scanned_lsn = lsn
            frames += 1
            if record is not None:
                yield lsn, record
        if self._stable_count is None:
            # A clean full traversal counted every frame; repair the
            # counter for free.
            self._stable_count = frames

    def export_frames(
        self,
        from_lsn: int,
        max_records: int | None = None,
        up_to_lsn: int | None = None,
    ) -> tuple[bytes, int, int]:
        """Raw stable-log frames with ``from_lsn <= lsn < up_to_lsn``.

        Returns ``(payload, first_lsn, count)`` where ``payload`` is the
        verbatim on-disk bytes (``u64 lsn`` header + CRC-framed record,
        per frame) of up to ``max_records`` consecutive frames.  This is
        the log-shipping export: the bytes are copied as-is, so a replica
        ingesting them ends with a byte-identical stable log suffix, and
        every frame still carries its own CRC for end-to-end verification.
        The skipped prefix is CRC-checked but never constructed; a torn
        tail is never exported.  ``first_lsn`` is ``-1`` when nothing
        qualifies.
        """
        if not os.path.exists(self.path):
            return b"", -1, 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        view = memoryview(data)
        size = len(view)
        offset = 0
        start_offset = None
        first_lsn = -1
        count = 0
        unpack_lsn = _LSN_HEADER.unpack_from
        while offset + 8 <= size:
            (lsn,) = unpack_lsn(view, offset)
            if up_to_lsn is not None and lsn >= up_to_lsn:
                break
            if max_records is not None and count >= max_records:
                break
            try:
                _record, next_offset = decode_record(view, offset + 8, _SKIP_ALL)
            except LogError:
                break  # torn tail: not shippable until truncated
            if lsn >= from_lsn:
                if start_offset is None:
                    start_offset = offset
                    first_lsn = lsn
                count += 1
            offset = next_offset
        if start_offset is None:
            return b"", -1, 0
        payload = bytes(data[start_offset:offset])
        del view
        return payload, first_lsn, count

    def ingest_frames(self, payload: bytes, first_lsn: int) -> int:
        """Append exported frames verbatim; returns the new end-of-stable LSN.

        The receive half of log shipping: ``payload`` must be bytes from
        :meth:`export_frames`, starting exactly at this log's
        :attr:`next_lsn` (dense LSNs are the idempotence key -- callers
        drop already-ingested frames before calling).  Every frame is
        CRC-verified and LSN-checked *before* any byte is written, so a
        corrupt or mis-sequenced batch leaves the file untouched.  The
        tail must be empty: a replica's log only ever grows by ingestion
        until promotion.
        """
        frames = list(decode_frames(payload))
        if not frames:
            return self.end_of_stable_lsn
        with self.latch.exclusive():
            self.meter.charge("latch_pair")
            with self._tail_lock:
                if self.tail:
                    raise LogError(
                        "cannot ingest frames into a log with a live tail"
                    )
                if first_lsn != self.next_lsn or frames[0][0] != first_lsn:
                    raise LogError(
                        f"ingest expects frames starting at LSN {self.next_lsn}, "
                        f"got {frames[0][0]} (declared {first_lsn})"
                    )
                expected = first_lsn
                for lsn, _record in frames:
                    if lsn != expected:
                        raise LogError(
                            f"ingested frames not dense: expected LSN "
                            f"{expected}, got {lsn}"
                        )
                    expected += 1
                self.meter.charge("flush_fixed")
                self._file.write(payload)
                self._file.flush()
                self.meter.charge("flush_byte", len(payload))
                if self._stable_count is not None:
                    self._stable_count += len(frames)
                self.next_lsn = expected
                self.end_of_stable_lsn = expected
                return self.end_of_stable_lsn

    def truncate_before(self, lsn: int) -> int:
        """Drop stable records with LSNs below ``lsn``; returns the count.

        Standard log reclamation after a certified checkpoint: restart
        recovery never reads below ``CK_end``.  Archive replay *does* read
        below it, so callers that keep archives must not truncate past the
        oldest archive's ``CK_end`` (see ``Database.truncate_log``).

        Only the dropped prefix is decoded (CRC-verified, records never
        constructed); the survivors are spliced out byte-for-byte at the
        cut offset -- encoding is deterministic, so the spliced bytes are
        exactly what the old decode→re-encode cycle produced.  Torn-tail
        bytes, if any, stay in place for ``scan``/``truncate_torn_tail``.
        """
        if not os.path.exists(self.path):
            return 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        view = memoryview(data)
        size = len(view)
        offset = 0
        removed = 0
        while offset + 8 <= size:
            (record_lsn,) = _LSN_HEADER.unpack_from(view, offset)
            if record_lsn >= lsn:
                break
            try:
                _record, offset = decode_record(view, offset + 8, _SKIP_ALL)
            except LogError:
                break
            removed += 1
        if removed == 0:
            return 0
        kept = data[offset:]
        del view
        self._file.close()
        with open(self.path, "wb") as handle:
            handle.write(kept)
        self._file = open(self.path, "ab")
        if self._stable_count is not None:
            self._stable_count -= removed
        return removed

    def truncate_torn_tail(self) -> bool:
        """Cut a torn tail found by the last :meth:`scan` off the file.

        Must be called before any further flush appends records, or the
        new records would land after undecodable garbage.  Returns True
        if anything was truncated.
        """
        if not self.torn_tail_detected:
            return False
        self._file.close()
        with open(self.path, "r+b") as handle:
            handle.truncate(self._clean_prefix_bytes)
        self._file = open(self.path, "ab")
        self.torn_tail_detected = False
        return True

    @property
    def stable_record_count(self) -> int:
        """Number of records in the stable file.

        O(1): the counter is maintained at flush/truncate time.  It is
        (re)counted lazily -- CRC checks only, no record construction --
        after opening a pre-existing file or after a scan found a torn
        tail (external damage the counter cannot vouch for).
        """
        if self._stable_count is None:
            count = 0
            if os.path.exists(self.path):
                with open(self.path, "rb") as handle:
                    view = memoryview(handle.read())
                size = len(view)
                offset = 0
                while offset + 8 <= size:
                    try:
                        _record, offset = decode_record(view, offset + 8, _SKIP_ALL)
                    except LogError:
                        break
                    count += 1
            self._stable_count = count
        return self._stable_count
