"""The system log: in-memory tail plus stable on-disk log.

"The contents of the system log tail are flushed to the stable system log
on disk when a transaction commits, or during a checkpoint.  The system
log latch must be obtained before performing a flush." (Section 2.1)

LSNs are dense sequence numbers assigned when a record enters the tail
(i.e. at operation commit, when local redo records migrate here).  The
stable file stores ``u64 lsn`` followed by the framed record, so a scan
can start from any LSN (``CK_end``, ``Audit_SN``).
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.errors import LogError
from repro.sim.clock import Meter
from repro.txn.latches import Latch
from repro.wal.records import LogRecord, decode_record, encode_record

import struct

_LSN_HEADER = struct.Struct("<Q")


class SystemLog:
    """System log tail + stable log file."""

    def __init__(self, path: str, meter: Meter) -> None:
        self.path = path
        self.meter = meter
        self.latch = Latch("system_log")
        self.tail: list[tuple[int, LogRecord]] = []
        self.next_lsn = 0
        self.end_of_stable_lsn = 0  # records with lsn < this are on disk
        self.torn_tail_detected = False
        self._clean_prefix_bytes = 0
        self._file = open(path, "ab")

    # ------------------------------------------------------------ write

    def append(self, record: LogRecord, charge: bool = True) -> int:
        """Add a record to the tail; returns its LSN.

        Records migrating from a local redo log were already charged when
        first appended there; callers pass ``charge=False`` for those so
        the move itself costs nothing extra (it is a pointer move in Dali).
        """
        lsn = self.next_lsn
        self.next_lsn += 1
        self.tail.append((lsn, record))
        if charge:
            self.meter.charge("log_record")
            self.meter.charge("log_byte", record.approx_size())
        return lsn

    def extend(self, records: list[LogRecord]) -> tuple[int, int]:
        """Append many records; returns ``(first_lsn, next_lsn)``."""
        first = self.next_lsn
        for record in records:
            self.append(record)
        return first, self.next_lsn

    def flush(self) -> int:
        """Flush the tail to the stable log; returns end_of_stable_lsn.

        Holds the system log latch for the duration, as the paper requires
        to serialize access to the flush buffers.
        """
        with self.latch.exclusive():
            self.meter.charge("latch_pair")
            if not self.tail:
                return self.end_of_stable_lsn
            self.meter.charge("flush_fixed")
            chunks = []
            byte_count = 0
            for lsn, record in self.tail:
                encoded = _LSN_HEADER.pack(lsn) + encode_record(record)
                chunks.append(encoded)
                byte_count += len(encoded)
            self._file.write(b"".join(chunks))
            self._file.flush()
            self.meter.charge("flush_byte", byte_count)
            self.end_of_stable_lsn = self.tail[-1][0] + 1
            self.tail.clear()
            return self.end_of_stable_lsn

    def close(self) -> None:
        self._file.close()

    def crash(self) -> None:
        """Simulate a process crash: the unflushed tail is lost."""
        self.tail.clear()
        self._file.close()

    # ------------------------------------------------------------- read

    def scan(
        self, from_lsn: int = 0, strict: bool = False
    ) -> Iterator[tuple[int, LogRecord]]:
        """Yield ``(lsn, record)`` from the *stable* log, lsn >= from_lsn.

        A crash can tear the last flush, leaving a truncated or
        CRC-damaged record at the end of the file.  By default the scan
        stops cleanly at the first undecodable record (setting
        :attr:`torn_tail_detected`), which is the standard write-ahead-log
        recovery behaviour; ``strict=True`` raises instead, for integrity
        checks that must see every byte accounted for.
        """
        self.torn_tail_detected = False
        self._clean_prefix_bytes = 0
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        previous_lsn = -1
        while offset < len(data):
            try:
                if offset + _LSN_HEADER.size > len(data):
                    raise LogError("truncated LSN header in stable log")
                (lsn,) = _LSN_HEADER.unpack_from(data, offset)
                record, offset = decode_record(data, offset + _LSN_HEADER.size)
            except LogError:
                if strict:
                    raise
                self.torn_tail_detected = True
                return
            self._clean_prefix_bytes = offset
            if lsn <= previous_lsn:
                raise LogError(
                    f"stable log LSNs out of order: {lsn} after {previous_lsn}"
                )
            previous_lsn = lsn
            if lsn >= from_lsn:
                yield lsn, record

    def truncate_before(self, lsn: int) -> int:
        """Drop stable records with LSNs below ``lsn``; returns the count.

        Standard log reclamation after a certified checkpoint: restart
        recovery never reads below ``CK_end``.  Archive replay *does* read
        below it, so callers that keep archives must not truncate past the
        oldest archive's ``CK_end`` (see ``Database.truncate_log``).
        """
        kept: list[bytes] = []
        removed = 0
        for record_lsn, record in self.scan(0):
            if record_lsn < lsn:
                removed += 1
            else:
                kept.append(_LSN_HEADER.pack(record_lsn) + encode_record(record))
        if removed == 0:
            return 0
        self._file.close()
        with open(self.path, "wb") as handle:
            handle.write(b"".join(kept))
        self._file = open(self.path, "ab")
        return removed

    def truncate_torn_tail(self) -> bool:
        """Cut a torn tail found by the last :meth:`scan` off the file.

        Must be called before any further flush appends records, or the
        new records would land after undecodable garbage.  Returns True
        if anything was truncated.
        """
        if not self.torn_tail_detected:
            return False
        self._file.close()
        with open(self.path, "r+b") as handle:
            handle.truncate(self._clean_prefix_bytes)
        self._file = open(self.path, "ab")
        self.torn_tail_detected = False
        return True

    @property
    def stable_record_count(self) -> int:
        return sum(1 for _ in self.scan())
