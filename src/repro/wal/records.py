"""Log record types and their binary codec.

Record kinds follow Section 2.1 plus the paper's two additions:

* ``ReadRecord`` -- the Read Logging scheme's "identity of the item and an
  optional checksum of the value, but not the value itself" (Section 4.2);
* ``UpdateRecord.old_checksum`` -- the "codewords in write log records"
  extension of Section 4.3, which lets a write be treated as a read
  followed by a write during corruption recovery.

Stable-log framing is ``u32 length | u8 type | payload | u32 crc32``; the
CRC covers type and payload, so a torn or corrupted stable log is detected
at scan time instead of silently replayed.

The codec is batch-oriented: :func:`encode_into` appends a frame to a
caller-owned ``bytearray`` (one ``zlib.crc32`` per frame, no intermediate
``bytes`` joins), and :func:`decode_record`/:func:`iter_records` decode
straight out of a ``memoryview`` so scanning a whole stable file never
slices per-record copies of it.  Both directions dispatch through
per-type tables with one combined :class:`struct.Struct` per record kind;
the wire format is byte-for-byte the original framing (property-tested in
``tests/test_wal_batch_equivalence.py``).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import LogError


class RecordType(IntEnum):
    UPDATE = 1
    READ = 2
    OP_BEGIN = 3
    OP_COMMIT = 4
    TXN_BEGIN = 5
    TXN_COMMIT = 6
    TXN_ABORT = 7
    AUDIT_BEGIN = 8
    AUDIT_END = 9
    AMEND = 10
    TXN_PREPARE = 11


@dataclass(frozen=True)
class LogicalUndo:
    """A logical undo description carried by an operation commit record.

    ``op_name`` selects an inverse operation from the storage layer's
    operation registry; ``args`` are its arguments (ints, strings or
    bytes).
    """

    op_name: str
    args: tuple = ()

    def encode(self) -> bytes:
        parts = [_encode_str(self.op_name), struct.pack("<H", len(self.args))]
        for arg in self.args:
            if isinstance(arg, bool):  # bool is an int subclass; keep it distinct
                parts.append(b"b" + struct.pack("<B", int(arg)))
            elif isinstance(arg, int):
                parts.append(b"i" + struct.pack("<q", arg))
            elif isinstance(arg, str):
                parts.append(b"s" + _encode_str(arg))
            elif isinstance(arg, bytes):
                parts.append(b"y" + struct.pack("<I", len(arg)) + arg)
            else:
                raise LogError(
                    f"logical undo argument of unsupported type {type(arg).__name__}"
                )
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["LogicalUndo", int]:
        op_name, offset = _decode_str(data, offset)
        (count,) = struct.unpack_from("<H", data, offset)
        offset += 2
        args = []
        for _ in range(count):
            tag = data[offset : offset + 1]
            offset += 1
            if tag == b"b":
                args.append(bool(data[offset]))
                offset += 1
            elif tag == b"i":
                (value,) = struct.unpack_from("<q", data, offset)
                args.append(value)
                offset += 8
            elif tag == b"s":
                value, offset = _decode_str(data, offset)
                args.append(value)
            elif tag == b"y":
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                args.append(bytes(data[offset : offset + length]))
                offset += length
            else:
                raise LogError(f"bad logical-undo argument tag {tag!r}")
        return cls(op_name, tuple(args)), offset


@dataclass(frozen=True, slots=True)
class LogRecord:
    """Base class; ``lsn`` is assigned when the record reaches the system log."""

    txn_id: int


@dataclass(frozen=True, slots=True)
class UpdateRecord(LogRecord):
    """Physical redo: the after-image of an in-place update."""

    address: int
    image: bytes = field(repr=False)
    old_checksum: int | None = None  # CW-in-write-records extension

    @property
    def length(self) -> int:
        return len(self.image)

    def approx_size(self) -> int:
        return 21 + len(self.image)


@dataclass(frozen=True, slots=True)
class ReadRecord(LogRecord):
    """Limited read logging: item identity, not the value (Section 4.2)."""

    address: int
    length: int
    checksum: int | None = None

    def approx_size(self) -> int:
        return 21


@dataclass(frozen=True, slots=True)
class OpBeginRecord(LogRecord):
    op_id: int = 0
    level: int = 1
    object_key: str = ""

    def approx_size(self) -> int:
        return 15 + len(self.object_key)


@dataclass(frozen=True, slots=True)
class OpCommitRecord(LogRecord):
    op_id: int = 0
    level: int = 1
    object_key: str = ""
    logical_undo: LogicalUndo = field(default_factory=lambda: LogicalUndo("noop"))

    def approx_size(self) -> int:
        return 15 + len(self.object_key) + len(self.logical_undo.op_name) + 8


@dataclass(frozen=True, slots=True)
class TxnBeginRecord(LogRecord):
    """Transaction start.  ``is_recovery`` marks compensation transactions
    spawned by restart recovery's undo phase: an archive replay must never
    recruit them into the CorruptTransTable (they run post-undo on a clean
    image and their effects are part of the recovered history)."""

    is_recovery: bool = False

    def approx_size(self) -> int:
        return 9


@dataclass(frozen=True, slots=True)
class TxnCommitRecord(LogRecord):
    def approx_size(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class TxnPrepareRecord(LogRecord):
    """Presumed-abort two-phase commit: the participant's prepare vote.

    Written (and flushed) by a shard when the cross-shard router asks it
    to prepare a distributed transaction.  ``gid`` is the router-assigned
    global transaction id.  A prepared transaction keeps its locks and
    stays in the ATT; restart recovery treats a prepare record with no
    later commit/abort as *in doubt* and resolves it through the
    coordinator's decision log -- absence of a decision means abort
    (presumed abort needs no coordinator record for aborts).
    """

    gid: str = ""

    def approx_size(self) -> int:
        return 10 + len(self.gid)


@dataclass(frozen=True, slots=True)
class TxnAbortRecord(LogRecord):
    def approx_size(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class AuditBeginRecord(LogRecord):
    """Marks the start of an audit; txn_id doubles as the audit id."""

    def approx_size(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class AuditEndRecord(LogRecord):
    clean: bool = True
    corrupt_regions: tuple[int, ...] = ()
    region_size: int = 0

    def approx_size(self) -> int:
        return 17 + 4 * len(self.corrupt_regions)


@dataclass(frozen=True, slots=True)
class AmendRecord(LogRecord):
    """Log amendment written at the end of corruption recovery.

    Section 4.3: "Note that this checkpoint invalidates all archives.
    The log may be amended during recovery to avoid this problem, but
    this scheme is omitted for simplicity."  This record is that
    amendment: it preserves the corruption context (corrupt ranges,
    ``Audit_SN``, checksum mode) so a later *archive* recovery can re-run
    the same delete-transaction decisions while replaying the full log --
    keeping archives taken before the corruption valid.

    ``txn_id`` doubles as the recovery episode id.
    """

    corrupt_ranges: tuple[tuple[int, int], ...] = ()
    audit_sn: int = 0
    use_checksums: bool = False
    #: user-specified transactions deleted as logical-corruption roots
    root_txns: tuple[int, ...] = ()

    def approx_size(self) -> int:
        return 22 + 16 * len(self.corrupt_ranges) + 8 * len(self.root_txns)


# --------------------------------------------------------------- codec


def _encode_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _decode_str(data, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<H", data, offset)
    offset += 2
    # str(buffer, encoding) accepts bytes and memoryview slices alike.
    text = str(data[offset : offset + length], "utf-8")
    return text, offset + length


_OPT_U32_NONE = 0xFFFFFFFFFFFFFFFF


def _pack_opt_u32(value: int | None) -> bytes:
    return struct.pack("<Q", _OPT_U32_NONE if value is None else value)


def _unpack_opt_u32(data: bytes, offset: int) -> tuple[int | None, int]:
    (raw,) = struct.unpack_from("<Q", data, offset)
    return (None if raw == _OPT_U32_NONE else raw), offset + 8


# One combined Struct per record kind covers the type byte plus the fixed
# part of the payload in a single pack/unpack call ("<" means standard
# sizes, no padding, so the combined layout is byte-identical to packing
# the pieces separately).
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_F_UPDATE = struct.Struct("<BQqIQ")   # type, txn_id, address, image_len, opt_cksum
_F_OP = struct.Struct("<BQQBH")       # type, txn_id, op_id, level, key_len
_F_TXN_BEGIN = struct.Struct("<BQB")  # type, txn_id, is_recovery
_F_U64 = struct.Struct("<BQ")         # type, txn_id/audit_id
_F_AUDIT_END = struct.Struct("<BQBII")
_F_AMEND = struct.Struct("<BQQBII")
_F_TXN_PREPARE = struct.Struct("<BQH")  # type, txn_id, gid_len
_P_UPDATE = struct.Struct("<QqIQ")    # payload-only variants for decode
_P_OP = struct.Struct("<QQB")
_P_TXN_BEGIN = struct.Struct("<QB")
_P_U64 = struct.Struct("<Q")
_P_AUDIT_END = struct.Struct("<QBII")
_P_AMEND = struct.Struct("<QQBII")
# Hot-path header variants that fold the u32 length prefix into the same
# pack call: one allocation per frame header instead of two.  Plain-int
# type codes skip IntEnum __index__ on every pack.
_H_UPDATE = struct.Struct("<IBQqIQ")  # body_len, type, txn, addr, len, cksum
_H_TXN_BEGIN = struct.Struct("<IBQB")
_H_U64 = struct.Struct("<IBQ")
_T_UPDATE = int(RecordType.UPDATE)
_T_READ = int(RecordType.READ)
_T_TXN_BEGIN = int(RecordType.TXN_BEGIN)

_crc32 = zlib.crc32


def _append_crc(buf: bytearray, body_start: int) -> None:
    # The temporary memoryview is released before the append resizes buf.
    buf += _U32.pack(_crc32(memoryview(buf)[body_start:]) & 0xFFFFFFFF)


def _enc_update(r: UpdateRecord, buf: bytearray) -> None:
    image = r.image
    checksum = r.old_checksum
    start = len(buf)
    buf += _H_UPDATE.pack(
        29 + len(image),
        _T_UPDATE,
        r.txn_id,
        r.address,
        len(image),
        _OPT_U32_NONE if checksum is None else checksum,
    )
    buf += image
    _append_crc(buf, start + 4)


def _enc_read(r: ReadRecord, buf: bytearray) -> None:
    checksum = r.checksum
    start = len(buf)
    buf += _H_UPDATE.pack(
        29,
        _T_READ,
        r.txn_id,
        r.address,
        r.length,
        _OPT_U32_NONE if checksum is None else checksum,
    )
    _append_crc(buf, start + 4)


def _enc_op_begin(r: OpBeginRecord, buf: bytearray) -> None:
    key = r.object_key.encode("utf-8")
    start = len(buf)
    buf += _U32.pack(20 + len(key))
    buf += _F_OP.pack(RecordType.OP_BEGIN, r.txn_id, r.op_id, r.level, len(key))
    buf += key
    _append_crc(buf, start + 4)


def _enc_op_commit(r: OpCommitRecord, buf: bytearray) -> None:
    key = r.object_key.encode("utf-8")
    undo = r.logical_undo.encode()
    start = len(buf)
    buf += _U32.pack(20 + len(key) + len(undo))
    buf += _F_OP.pack(RecordType.OP_COMMIT, r.txn_id, r.op_id, r.level, len(key))
    buf += key
    buf += undo
    _append_crc(buf, start + 4)


def _enc_txn_begin(r: TxnBeginRecord, buf: bytearray) -> None:
    start = len(buf)
    buf += _H_TXN_BEGIN.pack(10, _T_TXN_BEGIN, r.txn_id, int(r.is_recovery))
    _append_crc(buf, start + 4)


def _enc_u64(rtype: int):
    code = int(rtype)

    def enc(r: LogRecord, buf: bytearray) -> None:
        start = len(buf)
        buf += _H_U64.pack(9, code, r.txn_id)
        _append_crc(buf, start + 4)

    return enc


def _enc_txn_prepare(r: TxnPrepareRecord, buf: bytearray) -> None:
    gid = r.gid.encode("utf-8")
    start = len(buf)
    buf += _U32.pack(11 + len(gid))
    buf += _F_TXN_PREPARE.pack(RecordType.TXN_PREPARE, r.txn_id, len(gid))
    buf += gid
    _append_crc(buf, start + 4)


def _enc_audit_end(r: AuditEndRecord, buf: bytearray) -> None:
    regions = r.corrupt_regions
    start = len(buf)
    buf += _U32.pack(18 + 4 * len(regions))
    buf += _F_AUDIT_END.pack(
        RecordType.AUDIT_END, r.txn_id, int(r.clean), r.region_size, len(regions)
    )
    buf += struct.pack(f"<{len(regions)}I", *regions)
    _append_crc(buf, start + 4)


def _enc_amend(r: AmendRecord, buf: bytearray) -> None:
    ranges = r.corrupt_ranges
    roots = r.root_txns
    start = len(buf)
    buf += _U32.pack(26 + 16 * len(ranges) + 8 * len(roots))
    buf += _F_AMEND.pack(
        RecordType.AMEND,
        r.txn_id,
        r.audit_sn,
        int(r.use_checksums),
        len(ranges),
        len(roots),
    )
    if ranges:
        buf += struct.pack(
            f"<{2 * len(ranges)}q", *(value for pair in ranges for value in pair)
        )
    buf += struct.pack(f"<{len(roots)}Q", *roots)
    _append_crc(buf, start + 4)


_ENCODERS: dict[type, object] = {
    UpdateRecord: _enc_update,
    ReadRecord: _enc_read,
    OpBeginRecord: _enc_op_begin,
    OpCommitRecord: _enc_op_commit,
    TxnBeginRecord: _enc_txn_begin,
    TxnCommitRecord: _enc_u64(RecordType.TXN_COMMIT),
    TxnAbortRecord: _enc_u64(RecordType.TXN_ABORT),
    AuditBeginRecord: _enc_u64(RecordType.AUDIT_BEGIN),
    AuditEndRecord: _enc_audit_end,
    AmendRecord: _enc_amend,
    TxnPrepareRecord: _enc_txn_prepare,
}


def encode_into(record: LogRecord, buf: bytearray) -> int:
    """Append one framed record to ``buf``; returns the bytes appended.

    The batch entry point: a flush appends every tail record into one
    preallocated ``bytearray`` and writes it with a single syscall.
    """
    encoder = _ENCODERS.get(type(record))
    if encoder is None:
        for klass in type(record).__mro__:  # user subclasses of a record type
            encoder = _ENCODERS.get(klass)
            if encoder is not None:
                break
        else:
            raise LogError(f"cannot encode record of type {type(record).__name__}")
    before = len(buf)
    encoder(record, buf)
    return len(buf) - before


def encode_record(record: LogRecord) -> bytes:
    """Encode a record with framing and CRC for the stable log."""
    buf = bytearray()
    encode_into(record, buf)
    return bytes(buf)


def _dec_update(data, pos: int, end: int) -> UpdateRecord:
    txn_id, address, image_len, raw = _P_UPDATE.unpack_from(data, pos)
    pos += 28
    return UpdateRecord(
        txn_id,
        address,
        bytes(data[pos : pos + image_len]),
        None if raw == _OPT_U32_NONE else raw,
    )


def _dec_read(data, pos: int, end: int) -> ReadRecord:
    txn_id, address, length, raw = _P_UPDATE.unpack_from(data, pos)
    return ReadRecord(txn_id, address, length, None if raw == _OPT_U32_NONE else raw)


def _dec_op_begin(data, pos: int, end: int) -> OpBeginRecord:
    txn_id, op_id, level = _P_OP.unpack_from(data, pos)
    key, _pos = _decode_str(data, pos + 17)
    return OpBeginRecord(txn_id, op_id, level, key)


def _dec_op_commit(data, pos: int, end: int) -> OpCommitRecord:
    txn_id, op_id, level = _P_OP.unpack_from(data, pos)
    key, pos = _decode_str(data, pos + 17)
    undo, _pos = LogicalUndo.decode(data, pos)
    return OpCommitRecord(txn_id, op_id, level, key, undo)


def _dec_txn_begin(data, pos: int, end: int) -> TxnBeginRecord:
    txn_id, is_recovery = _P_TXN_BEGIN.unpack_from(data, pos)
    return TxnBeginRecord(txn_id, bool(is_recovery))


def _dec_u64(klass):
    unpack = _P_U64.unpack_from

    def dec(data, pos: int, end: int):
        return klass(unpack(data, pos)[0])

    return dec


def _dec_txn_prepare(data, pos: int, end: int) -> TxnPrepareRecord:
    (txn_id,) = _P_U64.unpack_from(data, pos)
    gid, _pos = _decode_str(data, pos + 8)
    return TxnPrepareRecord(txn_id, gid)


def _dec_audit_end(data, pos: int, end: int) -> AuditEndRecord:
    audit_id, clean, region_size, count = _P_AUDIT_END.unpack_from(data, pos)
    regions = struct.unpack_from(f"<{count}I", data, pos + 17)
    return AuditEndRecord(audit_id, bool(clean), tuple(regions), region_size)


def _dec_amend(data, pos: int, end: int) -> AmendRecord:
    txn_id, audit_sn, use_checksums, count, root_count = _P_AMEND.unpack_from(
        data, pos
    )
    values = struct.unpack_from(f"<{2 * count}q", data, pos + 25)
    ranges = tuple(zip(values[0::2], values[1::2]))
    roots = struct.unpack_from(f"<{root_count}Q", data, pos + 25 + 16 * count)
    return AmendRecord(txn_id, ranges, audit_sn, bool(use_checksums), tuple(roots))


_DECODERS: dict[int, object] = {
    RecordType.UPDATE: _dec_update,
    RecordType.READ: _dec_read,
    RecordType.OP_BEGIN: _dec_op_begin,
    RecordType.OP_COMMIT: _dec_op_commit,
    RecordType.TXN_BEGIN: _dec_txn_begin,
    RecordType.TXN_COMMIT: _dec_u64(TxnCommitRecord),
    RecordType.TXN_ABORT: _dec_u64(TxnAbortRecord),
    RecordType.AUDIT_BEGIN: _dec_u64(AuditBeginRecord),
    RecordType.AUDIT_END: _dec_audit_end,
    RecordType.AMEND: _dec_amend,
    RecordType.TXN_PREPARE: _dec_txn_prepare,
}

#: Record class -> wire type code, for building :func:`decode_record`
#: ``want`` filters from record classes.
RECORD_TYPE_CODES: dict[type, int] = {
    UpdateRecord: RecordType.UPDATE,
    ReadRecord: RecordType.READ,
    OpBeginRecord: RecordType.OP_BEGIN,
    OpCommitRecord: RecordType.OP_COMMIT,
    TxnBeginRecord: RecordType.TXN_BEGIN,
    TxnCommitRecord: RecordType.TXN_COMMIT,
    TxnAbortRecord: RecordType.TXN_ABORT,
    AuditBeginRecord: RecordType.AUDIT_BEGIN,
    AuditEndRecord: RecordType.AUDIT_END,
    AmendRecord: RecordType.AMEND,
    TxnPrepareRecord: RecordType.TXN_PREPARE,
}


def type_codes(classes) -> frozenset:
    """Wire type codes for an iterable of record classes (``want`` filter)."""
    try:
        return frozenset(RECORD_TYPE_CODES[klass] for klass in classes)
    except KeyError as exc:
        raise LogError(f"not a log record class: {exc.args[0]!r}") from None


def decode_record(data, offset: int = 0, want=None):
    """Decode one framed record; returns ``(record, next_offset)``.

    ``data`` may be ``bytes`` or a ``memoryview`` (batch scans pass one
    view over the whole file, so nothing is sliced per record).  With a
    ``want`` set of wire type codes (see :func:`type_codes`), frames of
    other types are CRC-verified but not constructed and ``record`` is
    ``None`` -- the cheap path for type-filtered scans.
    """
    size = len(data)
    if offset + 4 > size:
        raise LogError("truncated record frame")
    (body_len,) = _U32.unpack_from(data, offset)
    body_start = offset + 4
    body_end = body_start + body_len
    if body_len == 0 or body_end + 4 > size:
        raise LogError("truncated record body")
    (crc,) = _U32.unpack_from(data, body_end)
    if _crc32(data[body_start:body_end]) & 0xFFFFFFFF != crc:
        raise LogError("log record CRC mismatch")
    next_offset = body_end + 4
    rtype = data[body_start]
    if want is not None and rtype not in want:
        return None, next_offset
    decoder = _DECODERS.get(rtype)
    if decoder is None:
        raise LogError(f"unknown record type {rtype}")
    return decoder(data, body_start + 1, body_end), next_offset


def iter_records(data, offset: int = 0, want=None):
    """Stream-decode a buffer of framed records (no LSN headers).

    Wraps ``data`` in a single ``memoryview`` and yields records until
    the buffer is exhausted; a torn or corrupt frame raises
    :class:`~repro.errors.LogError` at that point.  ``want`` filters by
    wire type code without constructing skipped records.
    """
    if not isinstance(data, memoryview):
        data = memoryview(data)
    size = len(data)
    while offset < size:
        record, offset = decode_record(data, offset, want)
        if record is not None:
            yield record
