"""Log record types and their binary codec.

Record kinds follow Section 2.1 plus the paper's two additions:

* ``ReadRecord`` -- the Read Logging scheme's "identity of the item and an
  optional checksum of the value, but not the value itself" (Section 4.2);
* ``UpdateRecord.old_checksum`` -- the "codewords in write log records"
  extension of Section 4.3, which lets a write be treated as a read
  followed by a write during corruption recovery.

Stable-log framing is ``u32 length | u8 type | payload | u32 crc32``; the
CRC covers type and payload, so a torn or corrupted stable log is detected
at scan time instead of silently replayed.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import LogError


class RecordType(IntEnum):
    UPDATE = 1
    READ = 2
    OP_BEGIN = 3
    OP_COMMIT = 4
    TXN_BEGIN = 5
    TXN_COMMIT = 6
    TXN_ABORT = 7
    AUDIT_BEGIN = 8
    AUDIT_END = 9
    AMEND = 10


@dataclass(frozen=True)
class LogicalUndo:
    """A logical undo description carried by an operation commit record.

    ``op_name`` selects an inverse operation from the storage layer's
    operation registry; ``args`` are its arguments (ints, strings or
    bytes).
    """

    op_name: str
    args: tuple = ()

    def encode(self) -> bytes:
        parts = [_encode_str(self.op_name), struct.pack("<H", len(self.args))]
        for arg in self.args:
            if isinstance(arg, bool):  # bool is an int subclass; keep it distinct
                parts.append(b"b" + struct.pack("<B", int(arg)))
            elif isinstance(arg, int):
                parts.append(b"i" + struct.pack("<q", arg))
            elif isinstance(arg, str):
                parts.append(b"s" + _encode_str(arg))
            elif isinstance(arg, bytes):
                parts.append(b"y" + struct.pack("<I", len(arg)) + arg)
            else:
                raise LogError(
                    f"logical undo argument of unsupported type {type(arg).__name__}"
                )
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["LogicalUndo", int]:
        op_name, offset = _decode_str(data, offset)
        (count,) = struct.unpack_from("<H", data, offset)
        offset += 2
        args = []
        for _ in range(count):
            tag = data[offset : offset + 1]
            offset += 1
            if tag == b"b":
                args.append(bool(data[offset]))
                offset += 1
            elif tag == b"i":
                (value,) = struct.unpack_from("<q", data, offset)
                args.append(value)
                offset += 8
            elif tag == b"s":
                value, offset = _decode_str(data, offset)
                args.append(value)
            elif tag == b"y":
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                args.append(bytes(data[offset : offset + length]))
                offset += length
            else:
                raise LogError(f"bad logical-undo argument tag {tag!r}")
        return cls(op_name, tuple(args)), offset


@dataclass(frozen=True)
class LogRecord:
    """Base class; ``lsn`` is assigned when the record reaches the system log."""

    txn_id: int


@dataclass(frozen=True)
class UpdateRecord(LogRecord):
    """Physical redo: the after-image of an in-place update."""

    address: int
    image: bytes = field(repr=False)
    old_checksum: int | None = None  # CW-in-write-records extension

    @property
    def length(self) -> int:
        return len(self.image)

    def approx_size(self) -> int:
        return 21 + len(self.image)


@dataclass(frozen=True)
class ReadRecord(LogRecord):
    """Limited read logging: item identity, not the value (Section 4.2)."""

    address: int
    length: int
    checksum: int | None = None

    def approx_size(self) -> int:
        return 21


@dataclass(frozen=True)
class OpBeginRecord(LogRecord):
    op_id: int = 0
    level: int = 1
    object_key: str = ""

    def approx_size(self) -> int:
        return 15 + len(self.object_key)


@dataclass(frozen=True)
class OpCommitRecord(LogRecord):
    op_id: int = 0
    level: int = 1
    object_key: str = ""
    logical_undo: LogicalUndo = field(default_factory=lambda: LogicalUndo("noop"))

    def approx_size(self) -> int:
        return 15 + len(self.object_key) + len(self.logical_undo.op_name) + 8


@dataclass(frozen=True)
class TxnBeginRecord(LogRecord):
    """Transaction start.  ``is_recovery`` marks compensation transactions
    spawned by restart recovery's undo phase: an archive replay must never
    recruit them into the CorruptTransTable (they run post-undo on a clean
    image and their effects are part of the recovered history)."""

    is_recovery: bool = False

    def approx_size(self) -> int:
        return 9


@dataclass(frozen=True)
class TxnCommitRecord(LogRecord):
    def approx_size(self) -> int:
        return 8


@dataclass(frozen=True)
class TxnAbortRecord(LogRecord):
    def approx_size(self) -> int:
        return 8


@dataclass(frozen=True)
class AuditBeginRecord(LogRecord):
    """Marks the start of an audit; txn_id doubles as the audit id."""

    def approx_size(self) -> int:
        return 8


@dataclass(frozen=True)
class AuditEndRecord(LogRecord):
    clean: bool = True
    corrupt_regions: tuple[int, ...] = ()
    region_size: int = 0

    def approx_size(self) -> int:
        return 17 + 4 * len(self.corrupt_regions)


@dataclass(frozen=True)
class AmendRecord(LogRecord):
    """Log amendment written at the end of corruption recovery.

    Section 4.3: "Note that this checkpoint invalidates all archives.
    The log may be amended during recovery to avoid this problem, but
    this scheme is omitted for simplicity."  This record is that
    amendment: it preserves the corruption context (corrupt ranges,
    ``Audit_SN``, checksum mode) so a later *archive* recovery can re-run
    the same delete-transaction decisions while replaying the full log --
    keeping archives taken before the corruption valid.

    ``txn_id`` doubles as the recovery episode id.
    """

    corrupt_ranges: tuple[tuple[int, int], ...] = ()
    audit_sn: int = 0
    use_checksums: bool = False
    #: user-specified transactions deleted as logical-corruption roots
    root_txns: tuple[int, ...] = ()

    def approx_size(self) -> int:
        return 22 + 16 * len(self.corrupt_ranges) + 8 * len(self.root_txns)


# --------------------------------------------------------------- codec


def _encode_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _decode_str(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<H", data, offset)
    offset += 2
    text = data[offset : offset + length].decode("utf-8")
    return text, offset + length


_OPT_U32_NONE = 0xFFFFFFFFFFFFFFFF


def _pack_opt_u32(value: int | None) -> bytes:
    return struct.pack("<Q", _OPT_U32_NONE if value is None else value)


def _unpack_opt_u32(data: bytes, offset: int) -> tuple[int | None, int]:
    (raw,) = struct.unpack_from("<Q", data, offset)
    return (None if raw == _OPT_U32_NONE else raw), offset + 8


def encode_record(record: LogRecord) -> bytes:
    """Encode a record with framing and CRC for the stable log."""
    if isinstance(record, UpdateRecord):
        rtype = RecordType.UPDATE
        payload = (
            struct.pack("<QqI", record.txn_id, record.address, len(record.image))
            + _pack_opt_u32(record.old_checksum)
            + record.image
        )
    elif isinstance(record, ReadRecord):
        rtype = RecordType.READ
        payload = struct.pack(
            "<QqI", record.txn_id, record.address, record.length
        ) + _pack_opt_u32(record.checksum)
    elif isinstance(record, OpBeginRecord):
        rtype = RecordType.OP_BEGIN
        payload = struct.pack(
            "<QQB", record.txn_id, record.op_id, record.level
        ) + _encode_str(record.object_key)
    elif isinstance(record, OpCommitRecord):
        rtype = RecordType.OP_COMMIT
        payload = (
            struct.pack("<QQB", record.txn_id, record.op_id, record.level)
            + _encode_str(record.object_key)
            + record.logical_undo.encode()
        )
    elif isinstance(record, TxnBeginRecord):
        rtype = RecordType.TXN_BEGIN
        payload = struct.pack("<QB", record.txn_id, int(record.is_recovery))
    elif isinstance(record, TxnCommitRecord):
        rtype = RecordType.TXN_COMMIT
        payload = struct.pack("<Q", record.txn_id)
    elif isinstance(record, TxnAbortRecord):
        rtype = RecordType.TXN_ABORT
        payload = struct.pack("<Q", record.txn_id)
    elif isinstance(record, AuditBeginRecord):
        rtype = RecordType.AUDIT_BEGIN
        payload = struct.pack("<Q", record.txn_id)
    elif isinstance(record, AuditEndRecord):
        rtype = RecordType.AUDIT_END
        payload = struct.pack(
            "<QBII",
            record.txn_id,
            int(record.clean),
            record.region_size,
            len(record.corrupt_regions),
        ) + struct.pack(f"<{len(record.corrupt_regions)}I", *record.corrupt_regions)
    elif isinstance(record, AmendRecord):
        rtype = RecordType.AMEND
        payload = struct.pack(
            "<QQBII",
            record.txn_id,
            record.audit_sn,
            int(record.use_checksums),
            len(record.corrupt_ranges),
            len(record.root_txns),
        )
        for start, length in record.corrupt_ranges:
            payload += struct.pack("<qq", start, length)
        payload += struct.pack(f"<{len(record.root_txns)}Q", *record.root_txns)
    else:
        raise LogError(f"cannot encode record of type {type(record).__name__}")

    body = bytes([rtype]) + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return struct.pack("<I", len(body)) + body + struct.pack("<I", crc)


def decode_record(data: bytes, offset: int = 0) -> tuple[LogRecord, int]:
    """Decode one framed record; returns ``(record, next_offset)``."""
    if offset + 4 > len(data):
        raise LogError("truncated record frame")
    (body_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    if offset + body_len + 4 > len(data):
        raise LogError("truncated record body")
    body = data[offset : offset + body_len]
    offset += body_len
    (crc,) = struct.unpack_from("<I", data, offset)
    offset += 4
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise LogError("log record CRC mismatch")

    rtype = RecordType(body[0])
    payload = body[1:]
    if rtype == RecordType.UPDATE:
        txn_id, address, image_len = struct.unpack_from("<QqI", payload, 0)
        old_checksum, pos = _unpack_opt_u32(payload, 20)
        image = bytes(payload[pos : pos + image_len])
        return UpdateRecord(txn_id, address, image, old_checksum), offset
    if rtype == RecordType.READ:
        txn_id, address, length = struct.unpack_from("<QqI", payload, 0)
        checksum, _pos = _unpack_opt_u32(payload, 20)
        return ReadRecord(txn_id, address, length, checksum), offset
    if rtype == RecordType.OP_BEGIN:
        txn_id, op_id, level = struct.unpack_from("<QQB", payload, 0)
        key, _pos = _decode_str(payload, 17)
        return OpBeginRecord(txn_id, op_id, level, key), offset
    if rtype == RecordType.OP_COMMIT:
        txn_id, op_id, level = struct.unpack_from("<QQB", payload, 0)
        key, pos = _decode_str(payload, 17)
        undo, _pos = LogicalUndo.decode(payload, pos)
        return OpCommitRecord(txn_id, op_id, level, key, undo), offset
    if rtype == RecordType.TXN_BEGIN:
        txn_id, is_recovery = struct.unpack_from("<QB", payload, 0)
        return TxnBeginRecord(txn_id, bool(is_recovery)), offset
    if rtype == RecordType.TXN_COMMIT:
        (txn_id,) = struct.unpack_from("<Q", payload, 0)
        return TxnCommitRecord(txn_id), offset
    if rtype == RecordType.TXN_ABORT:
        (txn_id,) = struct.unpack_from("<Q", payload, 0)
        return TxnAbortRecord(txn_id), offset
    if rtype == RecordType.AUDIT_BEGIN:
        (audit_id,) = struct.unpack_from("<Q", payload, 0)
        return AuditBeginRecord(audit_id), offset
    if rtype == RecordType.AUDIT_END:
        audit_id, clean, region_size, count = struct.unpack_from("<QBII", payload, 0)
        regions = struct.unpack_from(f"<{count}I", payload, 17)
        return AuditEndRecord(audit_id, bool(clean), tuple(regions), region_size), offset
    if rtype == RecordType.AMEND:
        txn_id, audit_sn, use_checksums, count, root_count = struct.unpack_from(
            "<QQBII", payload, 0
        )
        ranges = []
        pos = 25
        for _ in range(count):
            start, length = struct.unpack_from("<qq", payload, pos)
            ranges.append((start, length))
            pos += 16
        roots = struct.unpack_from(f"<{root_count}Q", payload, pos)
        return (
            AmendRecord(
                txn_id, tuple(ranges), audit_sn, bool(use_checksums), tuple(roots)
            ),
            offset,
        )
    raise LogError(f"unknown record type {rtype}")  # pragma: no cover
