"""Per-transaction local undo and redo logs.

Dali stores undo and redo logs on a per-transaction basis ("local
logging", Section 2).  When an operation commits, its redo records are
moved to the system log tail and its physical undo records are replaced by
one logical undo record -- both before the operation's locks are released.

Physical undo records carry the ``codeword_applied`` flag of Section 3.1:
between ``begin_update`` and ``end_update`` the stored codeword still
matches the *old* content, so a rollback inside that window must apply the
undo image without touching the codeword.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import LogError
from repro.wal.records import LogRecord, LogicalUndo


@dataclass(slots=True)
class PhysicalUndo:
    """Before-image of one physical (level-0) update."""

    seq: int
    op_id: int
    address: int
    image: bytes = field(repr=False)
    codeword_applied: bool = True

    LEVEL = 0


@dataclass(slots=True)
class LogicalUndoEntry:
    """Logical undo for a committed operation (replaces its physical undos)."""

    seq: int
    op_id: int
    level: int
    object_key: str
    undo: LogicalUndo


UndoEntry = PhysicalUndo | LogicalUndoEntry


class UndoLog:
    """Append-ordered undo log; rollback walks it in reverse."""

    def __init__(self) -> None:
        self.entries: list[UndoEntry] = []

    def append_physical(self, entry: PhysicalUndo) -> None:
        self.entries.append(entry)

    def replace_operation(self, op_id: int, logical: LogicalUndoEntry) -> None:
        """Drop the op's physical undos, append its logical undo.

        The physical entries of a committing operation are by construction
        a suffix of the log (inner operations commit before outer ones).
        """
        keep = len(self.entries)
        while keep > 0:
            entry = self.entries[keep - 1]
            if isinstance(entry, PhysicalUndo) and entry.op_id == op_id:
                keep -= 1
            else:
                break
        del self.entries[keep:]
        self.entries.append(logical)

    def drop_operation(self, op_id: int) -> list[PhysicalUndo]:
        """Remove and return the op's trailing physical undos (op rollback)."""
        removed: list[PhysicalUndo] = []
        while self.entries:
            entry = self.entries[-1]
            if isinstance(entry, PhysicalUndo) and entry.op_id == op_id:
                removed.append(entry)
                self.entries.pop()
            else:
                break
        return removed

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # ------------------------------------------------- checkpoint codec

    def encode(self) -> bytes:
        parts = [struct.pack("<I", len(self.entries))]
        for entry in self.entries:
            if isinstance(entry, PhysicalUndo):
                parts.append(
                    b"P"
                    + struct.pack(
                        "<QQqIB",
                        entry.seq,
                        entry.op_id,
                        entry.address,
                        len(entry.image),
                        int(entry.codeword_applied),
                    )
                    + entry.image
                )
            else:
                key = entry.object_key.encode("utf-8")
                parts.append(
                    b"L"
                    + struct.pack("<QQBH", entry.seq, entry.op_id, entry.level, len(key))
                    + key
                    + entry.undo.encode()
                )
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["UndoLog", int]:
        log = cls()
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        for _ in range(count):
            tag = data[offset : offset + 1]
            offset += 1
            if tag == b"P":
                seq, op_id, address, image_len, applied = struct.unpack_from(
                    "<QQqIB", data, offset
                )
                offset += 29
                image = bytes(data[offset : offset + image_len])
                offset += image_len
                log.entries.append(
                    PhysicalUndo(seq, op_id, address, image, bool(applied))
                )
            elif tag == b"L":
                seq, op_id, level, key_len = struct.unpack_from("<QQBH", data, offset)
                offset += 19
                key = data[offset : offset + key_len].decode("utf-8")
                offset += key_len
                undo, offset = LogicalUndo.decode(data, offset)
                log.entries.append(LogicalUndoEntry(seq, op_id, level, key, undo))
            else:
                raise LogError(f"bad undo entry tag {tag!r}")
        return log, offset


class LocalRedoLog:
    """Per-transaction redo staging buffer.

    Records accumulate here during an operation and are *moved* (not
    copied) to the system log tail when the operation commits.
    """

    def __init__(self) -> None:
        self.records: list[LogRecord] = []

    def append(self, record: LogRecord) -> None:
        self.records.append(record)

    def mark(self) -> int:
        """Current position; an operation remembers its start mark."""
        return len(self.records)

    def take_from(self, mark: int) -> list[LogRecord]:
        """Remove and return all records appended since ``mark``."""
        taken = self.records[mark:]
        del self.records[mark:]
        return taken

    def discard_from(self, mark: int) -> None:
        del self.records[mark:]

    def __len__(self) -> int:
        return len(self.records)
