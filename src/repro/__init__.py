"""repro: reproduction of "Using Codewords to Protect Database Data from a
Class of Software Errors" (Bohannon, Rastogi, Seshadri, Silberschatz,
Sudarshan; ICDE 1999).

A main-memory storage manager in the style of Dali -- in-place updates,
local per-transaction logging, multi-level recovery, ping-pong
checkpointing -- with the paper's codeword protection schemes layered on
the prescribed ``begin_update``/``end_update``/``read`` interface, fault
injection for addressing errors, and delete-transaction corruption
recovery.

Public entry points::

    from repro import Database, DBConfig, Schema, Field, FieldType
    from repro import FaultInjector
    from repro.bench import tpcb
"""

from repro.errors import (
    ArchiveError,
    AuditFailure,
    CheckpointError,
    ConfigError,
    CorruptionDetected,
    DivergenceDetected,
    LatchError,
    LockError,
    LogError,
    MemoryError_,
    OutOfSpaceError,
    PromotionError,
    ProtectionFault,
    QuarantinedRegionError,
    RecoveryError,
    ReplicationError,
    ReproError,
    SimulatedCrash,
    TransactionAborted,
    TransactionError,
    WorkloadError,
)
from repro.faults import (
    CorruptionEvent,
    CrashPointRegistry,
    FaultInjector,
    tear_log_tail,
)
from repro.replication import (
    DivergenceDetector,
    LogShipper,
    Replica,
    ShipTransport,
)
from repro.storage import Database, DBConfig, Field, FieldType, Schema, Table
from repro.core import SCHEME_NAMES, make_scheme
from repro.sim import CostModel, DEFAULT_COSTS, VirtualClock

__version__ = "1.0.0"

__all__ = [
    "Database",
    "DBConfig",
    "Schema",
    "Field",
    "FieldType",
    "Table",
    "FaultInjector",
    "CorruptionEvent",
    "CrashPointRegistry",
    "tear_log_tail",
    "make_scheme",
    "SCHEME_NAMES",
    "CostModel",
    "DEFAULT_COSTS",
    "VirtualClock",
    # replication
    "Replica",
    "LogShipper",
    "ShipTransport",
    "DivergenceDetector",
    # errors
    "ReproError",
    "ConfigError",
    "MemoryError_",
    "OutOfSpaceError",
    "ProtectionFault",
    "CorruptionDetected",
    "AuditFailure",
    "QuarantinedRegionError",
    "SimulatedCrash",
    "LatchError",
    "LockError",
    "TransactionError",
    "TransactionAborted",
    "LogError",
    "RecoveryError",
    "CheckpointError",
    "WorkloadError",
    "ArchiveError",
    "ReplicationError",
    "DivergenceDetected",
    "PromotionError",
]
