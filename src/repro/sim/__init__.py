"""Virtual-time simulation support: clock, event meter, and cost model."""

from repro.sim.clock import VirtualClock, Meter
from repro.sim.costs import CostModel, DEFAULT_COSTS

__all__ = ["VirtualClock", "Meter", "CostModel", "DEFAULT_COSTS"]
