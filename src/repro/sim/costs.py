"""Calibrated unit costs for the virtual-time performance model.

The reproduction separates *mechanics* from *calibration*:

* Mechanics -- how many words a scheme folds, how many regions a read
  spans, how many pages an operation updates, how many log bytes a commit
  flushes -- are measured from the real implementation as it runs.
* Calibration -- how many nanoseconds one such event costs on the paper's
  2x200 MHz UltraSPARC -- lives *only* in this module.

The constants below were fitted once against Table 2 of the paper (see
EXPERIMENTS.md for the paper-vs-measured comparison).  Nothing else in the
code base contains timing magic numbers.

Calibration rationale
---------------------
* ``base_operation`` anchors the baseline row of Table 2 (417 ops/sec =
  2.398 ms per TPC-B operation).  It stands for the part of Dali's code
  path this reproduction models functionally but not at instruction
  granularity (buffer arithmetic, function-call overhead, cache misses of
  the C implementation).
* ``cw_maint_fixed``/``cw_maint_word`` reproduce the Data Codeword row:
  maintenance cost is dominated by per-update processing of the undo and
  redo images, plus a per-word XOR fold.
* ``cw_check_fixed``/``cw_check_word`` reproduce the Read Prechecking rows:
  checking is a sequential fold of the whole region, so its cost scales
  with region size -- the time/space tradeoff of Section 5.3.
* ``readlog_record``/``readlog_byte`` reproduce the Read Logging row, and
  ``checksum_word`` the additional cost of logging checksums of the bytes
  read (CW ReadLog row).
* ``mprotect`` costs come from Table 1 (see ``repro.bench.platforms``):
  a per-syscall fixed cost plus a per-page PTE cost.  Inside a running
  workload each call additionally pays ``mprotect_workload_penalty`` for
  the TLB/cache refill it forces on the working set -- a tight
  protect/unprotect microbenchmark touches no data and therefore never
  pays it, which is why the in-DBMS cost per call exceeds the Table 1
  microbenchmark cost (Section 5.3 observes 38% slowdown; Table 1 alone
  would predict ~11%).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


def _default_unit_costs() -> dict[str, int]:
    return {
        # -------------------------------------------------- baseline path
        "base_operation": 2_191_000,  # fixed per TPC-B operation
        "op_begin": 3_000,
        "op_commit": 8_000,           # migrate local redo to system log
        "txn_begin": 10_000,
        "txn_commit": 60_000,         # commit record + flush initiation
        "txn_prepare": 60_000,        # 2PC vote: prepare record + forced flush
        "lock_acquire": 2_000,
        "lock_release": 1_000,
        "latch_pair": 1_000,          # shared or exclusive acquire+release
        "index_probe": 4_000,
        "index_update": 6_000,
        "record_read": 3_000,         # copy + field decode, per record
        "record_write": 3_000,
        "begin_update": 2_000,        # undo image capture
        "end_update": 4_000,          # redo image + local log append
        "log_record": 1_500,          # fixed per log record appended
        "log_byte": 15,               # per byte appended to any log
        "flush_byte": 8,              # per byte moved to the stable log
        "flush_fixed": 40_000,        # per flush (system log latch + I/O setup)
        "alloc_slot": 2_500,
        "free_slot": 2_500,
        # -------------------------------------------- codeword maintenance
        "cw_maint_fixed": 15_000,     # per physical update (image processing)
        "cw_maint_word": 600,         # per 32-bit word folded (old + new)
        "deferred_update": 3_000,     # per update under deferred maintenance
        # ---------------------------------------------- codeword checking
        "cw_check_fixed": 1_500,      # per region checked
        "cw_check_word": 230,         # per 32-bit word folded sequentially
        # -------------------------------------------------- read logging
        "readlog_record": 14_500,     # per read log record built + appended
        "readlog_byte": 15,           # per byte of read log record
        "checksum_word": 1_200,       # per word checksummed for CW read log
        # --------------------------------------------- hardware protection
        # per-call syscall cost comes from the platform profile; this is
        # the additional working-set TLB/cache refill paid inside the DBMS
        "mprotect_workload_penalty": 70_500,
        # ------------------------------------------------------ recovery
        "redo_apply": 2_000,          # per physical redo applied at restart
        "undo_apply": 2_500,
        # ------------------------------------------------------- audits
        "audit_region": 0,            # accounted via cw_check_* events
    }


@dataclass(frozen=True)
class CostModel:
    """Immutable table of per-event unit costs in nanoseconds.

    Instances are cheap to derive: ``costs.override(cw_check_word=500)``
    returns a new model, which is how ablation benchmarks explore the
    sensitivity of the Table 2 shape to individual constants.
    """

    unit_costs: dict[str, int] = field(default_factory=_default_unit_costs)

    def unit_ns(self, event: str) -> int:
        try:
            return self.unit_costs[event]
        except KeyError:
            raise KeyError(
                f"unknown cost event {event!r}; add it to CostModel before "
                "charging it"
            ) from None

    def override(self, **events_ns: int) -> "CostModel":
        """Return a copy with the given event costs replaced."""
        merged = dict(self.unit_costs)
        for event, ns in events_ns.items():
            if event not in merged:
                raise KeyError(f"unknown cost event {event!r}")
            merged[event] = ns
        return replace(self, unit_costs=merged)

    @classmethod
    def free(cls) -> "CostModel":
        """A model where every event costs zero.

        Used by functional tests that exercise the storage manager without
        caring about virtual time.
        """
        return cls(unit_costs={event: 0 for event in _default_unit_costs()})


DEFAULT_COSTS = CostModel()
