"""Virtual clock and event meter.

The performance results of the paper were measured on a 2x200 MHz
UltraSPARC running a C storage manager.  Re-measuring the same algorithms
in CPython wall-clock time would invert every relative result (interpreter
overhead dwarfs a 16-word XOR), so the benchmark harness instead runs the
*real* implementation while charging each primitive event -- a word folded
into a codeword, a latch acquired, a log byte appended, an ``mprotect``
call issued -- to a :class:`VirtualClock` at calibrated unit costs.

Every component receives a :class:`Meter`, which pairs the clock with a
:class:`~repro.sim.costs.CostModel` and keeps per-event counters.  The
counters make the benchmarks auditable: a reported slowdown can always be
decomposed into "N events of kind K at C ns each".
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.costs import CostModel


class VirtualClock:
    """A monotonically advancing nanosecond counter.

    The clock only moves when a component charges time to it; it is the
    single source of "elapsed time" for throughput calculations in the
    benchmark harness.
    """

    __slots__ = ("now_ns",)

    def __init__(self) -> None:
        self.now_ns: int = 0

    def advance(self, ns: int) -> None:
        """Advance the clock by ``ns`` nanoseconds (must be >= 0)."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        self.now_ns += ns

    @property
    def now_seconds(self) -> float:
        return self.now_ns / 1e9

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_ns={self.now_ns})"


class Meter:
    """Charges named events to a clock at unit costs from a cost model.

    ``meter.charge("cw_maint_word", 16)`` advances the clock by sixteen
    times the ``cw_maint_word`` unit cost and increments the event counter.
    Unknown event names raise ``KeyError`` immediately: silent free events
    would corrupt the cost accounting.
    """

    __slots__ = ("clock", "costs", "counts", "time_ns", "_lock")

    def __init__(self, clock: VirtualClock, costs: "CostModel") -> None:
        self.clock = clock
        self.costs = costs
        self.counts: Counter[str] = Counter()
        self.time_ns: Counter[str] = Counter()
        # ``None`` on the single-threaded fast path; installed by
        # ``enable_thread_safety`` when concurrent serving sessions share
        # this meter, so clock advances and counters never lose updates.
        self._lock: threading.Lock | None = None

    def enable_thread_safety(self) -> None:
        """Serialize charges (concurrent serving / threaded scheduler).

        Virtual time loses its single-call-stack meaning once real
        threads interleave, but the counters stay exact and the clock
        still advances monotonically -- which is what the fault and
        audit machinery relies on.
        """
        if self._lock is None:
            self._lock = threading.Lock()

    def charge(self, event: str, count: int = 1) -> None:
        """Charge ``count`` occurrences of ``event`` to the clock."""
        unit = self.costs.unit_ns(event)
        ns = unit * count
        lock = self._lock
        if lock is None:
            self.clock.advance(ns)
            self.counts[event] += count
            self.time_ns[event] += ns
            return
        with lock:
            self.clock.advance(ns)
            self.counts[event] += count
            self.time_ns[event] += ns

    def charge_ns(self, event: str, ns: int, count: int = 1) -> None:
        """Charge an explicit duration under an event label.

        Used for costs that are not a simple ``unit x count`` product, such
        as a platform-dependent ``mprotect`` call.
        """
        lock = self._lock
        if lock is None:
            self.clock.advance(ns)
            self.counts[event] += count
            self.time_ns[event] += ns
            return
        with lock:
            self.clock.advance(ns)
            self.counts[event] += count
            self.time_ns[event] += ns

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """Return ``{event: (count, total_ns)}`` for reporting."""
        return {
            event: (self.counts[event], self.time_ns[event])
            for event in sorted(self.counts)
        }

    def reset(self) -> None:
        self.counts.clear()
        self.time_ns.clear()
