"""Sharded benchmark: shard-per-core scale-up of the protected store.

Three curves over the ``repro.shard`` engine in process mode (one worker
process per shard, so codeword folds, WAL writes and fsyncs run on N
cores with no shared GIL):

- *Throughput*: the single-branch TPC-B mix (each transaction updates
  the account/teller/branch balances of one branch and appends history,
  so it routes to exactly one shard) pipelined over 1..N shards, for the
  unprotected baseline and the data-codeword scheme -- a sharded Table-2
  variant: protection overhead stays a ratio while absolute throughput
  scales with cores.
- *Recovery*: the same databases are crashed after the timed run and
  restart-recovered; N workers replay N WALs concurrently, so recovery
  of the *same total image* drops near-linearly with shards.

Measurement protocol: headline throughput uses the repo's virtual clock
(exactly Table 2's protocol, per shard) -- every shard ticks its own
clock, shards run on separate cores, so the sharded elapsed time is the
*max* across shards.  Recovery is scored on the parallel critical path:
each worker times its own replay (CPU time) and the slowest shard is the
restart time on N cores.  Real wall-clock numbers ride along in the JSON
for both; on a machine with >= N idle cores they track the model, on the
1-2 core CI runners they cannot (N processes timeslice one core), which
is why the gates are on the model numbers.
- *Fault campaign*: with in-flight traffic pipelined to every other
  shard, wild writes are injected into cold records of shard 0 and
  scored against injector ground truth: every corruption must be
  detected (zero false negatives), quarantined and repaired while the
  other shards complete their traffic with zero errors.

``python -m repro.bench --sharded`` writes ``BENCH_sharded.json`` and
exits 1 on any false negative, traffic error, or lost balance.
"""

from __future__ import annotations

import os
import random
import shutil
import time
from dataclasses import dataclass, replace

from repro.bench.reporting import render_table, write_bench_json
from repro.bench.tpcb import (
    ACCOUNT_SCHEMA,
    BRANCH_SCHEMA,
    HISTORY_SCHEMA,
    TELLER_SCHEMA,
)
from repro.bench.suites import Suite
from repro.shard import ShardedConfig, ShardedDatabase

SHARDED_JSON_VERSION = 1

#: Wild writes scribble 8 bytes over the balance field (offset 16) of an
#: account record -- corruption a balance-sum check alone would miss
#: until read, but a codeword audit flags immediately.  Each injection
#: gets a *unique* payload: the audit folds a region with XOR, so two
#: identical scribbles over identical old bytes in one region cancel
#: exactly and become invisible by construction.
_BALANCE_OFFSET = 16


def _wild_payload(rng: random.Random) -> bytes:
    return bytes(rng.randrange(256) for _ in range(8))


@dataclass(frozen=True)
class ShardedBenchConfig:
    """Shape of one ``--sharded`` run."""

    shard_counts: tuple[int, ...] = (1, 2, 4)
    #: partition modulus; divisible by every shard count so load is even
    branches: int = 16
    accounts_per_branch: int = 100
    tellers_per_branch: int = 10
    #: transactions per throughput point (each = ``ops_per_txn`` TPC-B ops)
    txns: int = 240
    ops_per_txn: int = 10
    #: transactions of in-flight traffic during the fault campaign
    campaign_txns: int = 36
    campaign_ops_per_txn: int = 5
    fault_injections: int = 6
    schemes: tuple[str, ...] = ("baseline", "data_codeword")
    region_size: int = 64
    group_commit_size: int = 8
    #: drain the pipelined replies every this many transactions
    window: int = 16
    seed: int = 202

    def quick(self) -> "ShardedBenchConfig":
        """CI smoke variant: same code paths, minutes -> seconds."""
        return replace(
            self,
            shard_counts=(1, 2),
            txns=48,
            ops_per_txn=5,
            campaign_txns=18,
            fault_injections=3,
            schemes=("data_codeword",),
        )

    @property
    def accounts(self) -> int:
        return self.branches * self.accounts_per_branch

    @property
    def tellers(self) -> int:
        return self.branches * self.tellers_per_branch

    def table_defs(self) -> list[tuple]:
        history_capacity = 2 * max(
            self.txns * self.ops_per_txn,
            self.campaign_txns * self.campaign_ops_per_txn,
        ) + 64
        return [
            ("account", ACCOUNT_SCHEMA, self.accounts, "aid"),
            ("teller", TELLER_SCHEMA, self.tellers, "tid"),
            ("branch", BRANCH_SCHEMA, self.branches, "bid"),
            ("history", HISTORY_SCHEMA, history_capacity, "hid"),
        ]

    def sharded_config(self, workdir: str, n_shards: int, scheme: str,
                       quarantine: bool = False) -> ShardedConfig:
        return ShardedConfig(
            dir=workdir,
            n_shards=n_shards,
            mode="process",
            branches=self.branches,
            scheme=scheme,
            scheme_params={"region_size": self.region_size},
            group_commit_size=self.group_commit_size,
            quarantine=quarantine,
            quarantine_repair=quarantine,
        )


@dataclass
class ShardedPoint:
    """Measured result of one (shards, scheme) cell.

    ``txn_s``/``ops_s`` are virtual-clock (Table 2 protocol, max across
    shards); ``wall_s``/``txn_s_wall`` are the observed wall-clock on
    whatever cores the host actually had.  ``recovery_s`` is the parallel
    critical path (slowest shard's own replay time); ``recovery_wall_s``
    is the observed wall-clock of the whole restart.
    """

    shards: int
    scheme: str
    txns: int
    ops: int
    virtual_s: float
    txn_s: float
    ops_s: float
    wall_s: float
    txn_s_wall: float
    conserved: bool
    #: recovery of the same database after a full-node crash; only
    #: measured on the protected scheme (None for baseline rows)
    recovery_s: float | None = None
    recovery_wall_s: float | None = None
    recovery_redo: int | None = None
    recovery_conserved: bool | None = None

    def to_payload(self) -> dict:
        payload = {
            "shards": self.shards,
            "scheme": self.scheme,
            "txns": self.txns,
            "ops": self.ops,
            "virtual_s": round(self.virtual_s, 6),
            "txn_s": round(self.txn_s, 1),
            "ops_s": round(self.ops_s, 1),
            "wall_s": round(self.wall_s, 4),
            "txn_s_wall": round(self.txn_s_wall, 1),
            "conserved": self.conserved,
        }
        if self.recovery_s is not None:
            payload["recovery_s"] = round(self.recovery_s, 4)
            payload["recovery_wall_s"] = round(self.recovery_wall_s, 4)
            payload["recovery_redo"] = self.recovery_redo
            payload["recovery_conserved"] = self.recovery_conserved
        return payload


def _load(db: ShardedDatabase, config: ShardedBenchConfig) -> None:
    """Populate all branches; each branch's rows ride one shard-local txn."""
    for b in range(config.branches):
        ops: list = [("insert", "branch", {"bid": b, "balance": 0})]
        ops.extend(
            (
                "insert",
                "teller",
                {"tid": b + config.branches * j, "branch_id": b, "balance": 0},
            )
            for j in range(config.tellers_per_branch)
        )
        ops.extend(
            (
                "insert",
                "account",
                {"aid": b + config.branches * j, "branch_id": b, "balance": 0},
            )
            for j in range(config.accounts_per_branch)
        )
        db.submit_txn_nowait(ops)
        if (b + 1) % 4 == 0:
            db.drain()
    db.drain()


def _make_txn(
    config: ShardedBenchConfig,
    rng: random.Random,
    branch: int,
    next_hid: int,
    ops_per_txn: int,
) -> tuple[list, int, int]:
    """One single-branch TPC-B transaction; returns (ops, next_hid, delta_sum)."""
    ops: list = []
    delta_sum = 0
    for _ in range(ops_per_txn):
        aid = branch + config.branches * rng.randrange(config.accounts_per_branch)
        tid = branch + config.branches * rng.randrange(config.tellers_per_branch)
        delta = rng.randint(-9_999, 9_999)
        delta_sum += delta
        ops.append(("add", "account", aid, "balance", delta))
        ops.append(("add", "teller", tid, "balance", delta))
        ops.append(("add", "branch", branch, "balance", delta))
        ops.append(
            (
                "insert",
                "history",
                {
                    "hid": next_hid,
                    "aid": aid,
                    "tid": tid,
                    "bid": branch,
                    "delta": delta,
                },
            )
        )
        next_hid += 1
    return ops, next_hid, delta_sum


def run_sharded_point(
    base_dir: str, config: ShardedBenchConfig, n_shards: int, scheme: str
) -> ShardedPoint:
    """Throughput at ``n_shards``, then (for the protected scheme) crash
    the node and time shard-parallel recovery of the same image."""
    workdir = os.path.join(base_dir, f"n{n_shards}-{scheme}")
    sharded_config = config.sharded_config(workdir, n_shards, scheme)
    db = ShardedDatabase.create(sharded_config, config.table_defs())
    try:
        _load(db, config)
        rng = random.Random(config.seed)
        next_hid = 0
        expected = 0
        clocks_began = db.call_all(("clock",))
        began = time.perf_counter()
        for i in range(config.txns):
            # Round-robin branch choice keeps shard load exactly even.
            ops, next_hid, delta_sum = _make_txn(
                config, rng, i % config.branches, next_hid, config.ops_per_txn
            )
            expected += delta_sum
            db.submit_txn_nowait(ops)
            if (i + 1) % config.window == 0:
                db.drain()
        db.drain()
        wall_s = max(time.perf_counter() - began, 1e-9)
        clocks_ended = db.call_all(("clock",))
        # Each shard ticks its own virtual clock; they run concurrently,
        # so the run's virtual elapsed time is the slowest shard's.
        virtual_s = max(
            max(end - start for start, end in zip(clocks_began, clocks_ended))
            / 1e9,
            1e-9,
        )
        conserved = db.sum_field("account", "balance") == expected

        point = ShardedPoint(
            shards=n_shards,
            scheme=scheme,
            txns=config.txns,
            ops=config.txns * config.ops_per_txn,
            virtual_s=virtual_s,
            txn_s=config.txns / virtual_s,
            ops_s=config.txns * config.ops_per_txn / virtual_s,
            wall_s=wall_s,
            txn_s_wall=config.txns / wall_s,
            conserved=conserved,
        )
        if scheme == "baseline":
            db.close()
            return point

        # Group commit may still hold a tail of acknowledged commits in
        # memory; force it down so the crash tests recovery, not the
        # durability window (the 2PC and crash-point tests cover that).
        db.call_all(("flush",))
        # Crash the whole node and restart: N workers replay N WALs.
        db.crash()
        began = time.perf_counter()
        recovered, reports = ShardedDatabase.recover(sharded_config)
        point.recovery_wall_s = max(time.perf_counter() - began, 1e-9)
        # Parallel critical path: the slowest shard's own replay time.
        point.recovery_s = max(
            max(r["recovery_cpu_s"] for r in reports), 1e-9
        )
        point.recovery_redo = sum(r["redo_applied"] for r in reports)
        point.recovery_conserved = (
            recovered.sum_field("account", "balance") == expected
        )
        recovered.close()
        return point
    finally:
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)


def run_sharded_matrix(
    base_dir: str, config: ShardedBenchConfig
) -> list[ShardedPoint]:
    return [
        run_sharded_point(base_dir, config, n_shards, scheme)
        for scheme in config.schemes
        for n_shards in config.shard_counts
    ]


def run_sharded_fault_campaign(base_dir: str, config: ShardedBenchConfig) -> dict:
    """Wild writes into one shard while the rest carry in-flight traffic.

    Shard 0's branches get no traffic at all; its cold account records
    are the injection targets.  The writes land while the other shards
    still hold pipelined, un-drained transactions, so quarantine and
    repair of the victim shard demonstrably do not disturb the others.
    """
    n_shards = max(config.shard_counts)
    workdir = os.path.join(base_dir, "faults")
    sharded_config = config.sharded_config(
        workdir, n_shards, "data_codeword", quarantine=True
    )
    db = ShardedDatabase.create(sharded_config, config.table_defs())
    try:
        _load(db, config)
        # Checkpoint certifies the loaded image and bounds repair replay.
        db.checkpoint_all()

        hot_branches = [
            b for b in range(config.branches) if b % n_shards != 0
        ] or [1 % config.branches]
        rng = random.Random(config.seed + 1)
        next_hid = 0
        expected = 0
        for i in range(config.campaign_txns):
            branch = hot_branches[i % len(hot_branches)]
            ops, next_hid, delta_sum = _make_txn(
                config, rng, branch, next_hid, config.campaign_ops_per_txn
            )
            expected += delta_sum
            db.submit_txn_nowait(ops)

        # Traffic is still queued on shards 1..N-1; scribble on shard 0.
        in_flight = sum(shard.pending for shard in db.shards)
        cold_aids = [
            config.branches * j
            for j in range(
                config.accounts_per_branch - config.fault_injections,
                config.accounts_per_branch,
            )
        ]
        injected = [
            db.wild_write("account", aid, _BALANCE_OFFSET, _wild_payload(rng))
            for aid in cold_aids
        ]

        traffic_errors = 0
        completed = 0
        try:
            completed = len(db.drain())
        except Exception:
            traffic_errors += 1

        audits = db.audit_all()
        victim_ranges = audits[0][2]
        detected = [
            any(start <= address < start + length for start, length in victim_ranges)
            for address in injected
        ]
        false_negatives = detected.count(False)
        others_clean = all(clean for clean, _, _ in audits[1:])

        quarantined = len(db.quarantined().get(0, ()))
        repaired = db.repair_all()
        post = db.audit_all()
        post_clean = all(clean for clean, _, _ in post)
        conserved = db.sum_field("account", "balance") == expected
        return {
            "shards": n_shards,
            "victim_shard": 0,
            "traffic_txns": config.campaign_txns,
            "traffic_in_flight_at_injection": in_flight,
            "traffic_completed": completed,
            "traffic_errors": traffic_errors,
            "injected": len(injected),
            "detected": detected.count(True),
            "false_negatives": false_negatives,
            "other_shards_audit_clean": others_clean,
            "quarantined_regions": quarantined,
            "repaired_regions": repaired,
            "post_repair_audit_clean": post_clean,
            "balances_conserved": conserved,
        }
    finally:
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)


def sharded_gates(points: list[ShardedPoint], campaign: dict) -> dict:
    """Pass/fail summary: scale-up ratios plus campaign ground truth."""
    protected = [p for p in points if p.scheme != "baseline"]
    single = next((p for p in protected if p.shards == 1), None)
    widest = max(protected, key=lambda p: p.shards, default=None)
    throughput_speedup = None
    recovery_ratio = None
    if single is not None and widest is not None and widest.shards > 1:
        throughput_speedup = widest.txn_s / single.txn_s
        if single.recovery_s and widest.recovery_s:
            recovery_ratio = widest.recovery_s / single.recovery_s
    gated = widest is not None and widest.shards >= 4
    return {
        "max_shards": widest.shards if widest else 0,
        "throughput_speedup": (
            round(throughput_speedup, 2) if throughput_speedup else None
        ),
        "throughput_ok": (
            throughput_speedup is not None and throughput_speedup >= 2.5
            if gated
            else None
        ),
        "recovery_ratio": round(recovery_ratio, 3) if recovery_ratio else None,
        "recovery_ok": (
            recovery_ratio is not None and recovery_ratio <= 0.5 if gated else None
        ),
        "false_negatives": campaign["false_negatives"],
        "traffic_errors": campaign["traffic_errors"],
        "conserved": (
            all(p.conserved for p in points)
            and all(p.recovery_conserved is not False for p in points)
            and campaign["balances_conserved"]
        ),
    }


def sharded_payload(
    points: list[ShardedPoint],
    campaign: dict,
    gates: dict,
    config: ShardedBenchConfig,
    quick: bool,
) -> dict:
    return {
        "version": SHARDED_JSON_VERSION,
        "quick": quick,
        "branches": config.branches,
        "txns": config.txns,
        "ops_per_txn": config.ops_per_txn,
        "group_commit_size": config.group_commit_size,
        "region_size": config.region_size,
        "matrix": [point.to_payload() for point in points],
        "fault_campaign": campaign,
        "gates": gates,
    }


def render_sharded_table(points: list[ShardedPoint]) -> str:
    singles = {p.scheme: p for p in points if p.shards == 1}
    rows = []
    for point in points:
        single = singles.get(point.scheme)
        speedup = (
            f"{point.txn_s / single.txn_s:.2f}x" if single else "-"
        )
        if point.recovery_s is not None and single and single.recovery_s:
            recovery = f"{point.recovery_s * 1000:,.0f}"
            recovery_speedup = f"{single.recovery_s / point.recovery_s:.2f}x"
        else:
            recovery = "-"
            recovery_speedup = "-"
        rows.append(
            [
                str(point.shards),
                point.scheme,
                f"{point.txn_s:,.0f}",
                f"{point.ops_s:,.0f}",
                speedup,
                f"{point.txn_s_wall:,.0f}",
                recovery,
                recovery_speedup,
            ]
        )
    return render_table(
        [
            "Shards",
            "Scheme",
            "Txn/s",
            "Ops/s",
            "Speedup",
            "Wall txn/s",
            "Recovery ms",
            "Rec speedup",
        ],
        rows,
        title=(
            "Shard-per-core scale-up (process mode, single-branch TPC-B "
            "mix; Txn/s and Recovery on the per-shard clocks, see module doc)"
        ),
    )


def run_sharded_benchmark(
    json_path: str | None,
    quick: bool = False,
    base_dir: str | None = None,
    shard_counts: tuple[int, ...] | None = None,
) -> int:
    """CLI driver for ``--sharded``; returns a process exit code."""
    import tempfile

    config = ShardedBenchConfig()
    if quick:
        config = config.quick()
    if shard_counts:
        config = replace(config, shard_counts=shard_counts)
    workdir = base_dir or tempfile.mkdtemp(prefix="repro-sharded-")
    try:
        points = run_sharded_matrix(workdir, config)
        print(render_sharded_table(points))
        print()
        campaign = run_sharded_fault_campaign(workdir, config)
        gates = sharded_gates(points, campaign)
        print(
            f"Sharded fault campaign ({campaign['shards']} shards): "
            f"{campaign['injected']} wild writes into shard "
            f"{campaign['victim_shard']} with {campaign['traffic_in_flight_at_injection']} "
            f"transactions in flight elsewhere; {campaign['detected']} detected, "
            f"{campaign['false_negatives']} false negatives, "
            f"{campaign['traffic_errors']} traffic errors; "
            f"{campaign['quarantined_regions']} regions quarantined, "
            f"{campaign['repaired_regions']} repaired, post-repair audit "
            f"clean={campaign['post_repair_audit_clean']}."
        )
        if gates["throughput_speedup"] is not None:
            print(
                f"Scale-up at {gates['max_shards']} shards: "
                f"{gates['throughput_speedup']}x throughput, "
                f"recovery ratio {gates['recovery_ratio']}."
            )
        if json_path:
            write_bench_json(
                json_path, sharded_payload(points, campaign, gates, config, quick)
            )
            print(f"\nwrote {json_path}")
        failed = []
        if campaign["false_negatives"]:
            failed.append("false negatives in the sharded fault campaign")
        if campaign["traffic_errors"]:
            failed.append("traffic errors on non-victim shards")
        if not gates["conserved"]:
            failed.append("balance sums not conserved")
        if not quick:
            if gates["throughput_ok"] is False:
                failed.append(
                    f"throughput speedup {gates['throughput_speedup']}x < 2.5x"
                )
            if gates["recovery_ok"] is False:
                failed.append(
                    f"recovery ratio {gates['recovery_ratio']} > 0.5"
                )
        if failed:
            print()
            for failure in failed:
                print(f"GATE: {failure}")
            return 1
        return 0
    finally:
        if base_dir is None:
            shutil.rmtree(workdir, ignore_errors=True)


# --------------------------------------------------------- registration


def _add_arguments(parser) -> None:
    parser.add_argument(
        "--sharded",
        action="store_true",
        help="run the shard-per-core scale-up benchmark (process mode: "
        "throughput and recovery-time curves over 1..N shards, plus a "
        "sharded fault campaign; exit 1 on any false negative)",
    )
    parser.add_argument(
        "--sharded-quick",
        action="store_true",
        help="shrink the --sharded matrix for CI smoke runs",
    )
    parser.add_argument(
        "--sharded-json",
        metavar="PATH",
        default="BENCH_sharded.json",
        help="where --sharded writes its JSON artifact "
        "(default: BENCH_sharded.json)",
    )
    parser.add_argument(
        "--sharded-shards",
        default=None,
        help="comma-separated shard counts for the scale-up curve "
        "(default: 1,2,4; must divide --sharded's branch count of 16)",
    )


def _run(args) -> int:
    counts = (
        tuple(int(s) for s in args.sharded_shards.split(",") if s)
        if args.sharded_shards
        else None
    )
    return run_sharded_benchmark(
        args.sharded_json, quick=args.sharded_quick, shard_counts=counts
    )


SHARDED_SUITE = Suite(
    name="sharded",
    add_arguments=_add_arguments,
    run=_run,
    selected=lambda args: args.sharded,
)
