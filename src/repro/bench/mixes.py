"""A read/write-mix microworkload (extension, not in the paper).

The paper's TPC-B operation has a fixed 3-update/1-insert shape, so each
scheme's overhead is a single number.  This workload dials the read
fraction, exposing *why* the schemes cost what they cost:

* Read Prechecking and Read Logging charge per read -- their overhead
  grows with the read fraction;
* Data Codeword maintenance and Hardware Protection charge per update
  window -- their overhead shrinks as reads displace writes.

The crossing of those curves is the quantitative version of the paper's
advice that users "make their own safety/performance tradeoff".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.storage.database import Database, DBConfig
from repro.storage.schema import Field, FieldType, Schema

MIX_SCHEMA = Schema(
    [
        Field("key", FieldType.INT64),
        Field("value", FieldType.INT64),
        Field("filler", FieldType.CHAR, 84),
    ]
)


@dataclass(frozen=True)
class MixConfig:
    """Shape of a read/write-mix run."""

    rows: int = 2_000
    operations: int = 1_000
    read_fraction: float = 0.5
    ops_per_txn: int = 100
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(
                f"read_fraction must be in [0, 1]: {self.read_fraction}"
            )


def build_mix_database(db_config: DBConfig, mix: MixConfig) -> Database:
    """Create and load the single-table mix database."""
    db = Database(db_config)
    db.create_table("row", MIX_SCHEMA, mix.rows, key_field="key")
    db.start()
    table = db.table("row")
    txn = db.begin()
    for key in range(mix.rows):
        table.insert(txn, {"key": key, "value": key})
        if (key + 1) % 1000 == 0:
            db.commit(txn)
            txn = db.begin()
    db.commit(txn)
    return db


class MixWorkload:
    """Runs a stream of reads and read-modify-write updates."""

    def __init__(self, db: Database, mix: MixConfig) -> None:
        self.db = db
        self.mix = mix
        self.rng = random.Random(mix.seed)
        self.reads_done = 0
        self.writes_done = 0

    def run(self) -> int:
        db = self.db
        mix = self.mix
        table = db.table("row")
        txn = db.begin()
        in_txn = 0
        for _ in range(mix.operations):
            db.meter.charge("base_operation")
            key = self.rng.randrange(mix.rows)
            slot = table.lookup(txn, key)
            if self.rng.random() < mix.read_fraction:
                table.read(txn, slot)
                self.reads_done += 1
            else:
                table.update(txn, slot, {"value": lambda v: v + 1})
                self.writes_done += 1
            in_txn += 1
            if in_txn >= mix.ops_per_txn:
                db.commit(txn)
                txn = db.begin()
                in_txn = 0
        db.commit(txn)
        return mix.operations


def run_mix(
    db_config: DBConfig, mix: MixConfig
) -> tuple[float, dict[str, tuple[int, int]]]:
    """Run the mix once; returns (virtual ops/sec, event snapshot)."""
    db = build_mix_database(db_config, mix)
    db.checkpoint()
    db.meter.reset()
    start_ns = db.clock.now_ns
    workload = MixWorkload(db, mix)
    operations = workload.run()
    elapsed_s = (db.clock.now_ns - start_ns) / 1e9
    events = db.meter.snapshot()
    db.close()
    return operations / elapsed_s, events
