"""Platform profiles for the ``mprotect`` study (Table 1 / Figure 1).

The paper measured protect/unprotect pairs per second on four UNIX
workstations to show that memory-protection performance varies wildly and
is uncorrelated with integer performance (the HP has ~2x the SPECint92 of
the SPARCstation 20 but a quarter of its mprotect throughput).

We do not have the hardware, so each platform is a cost profile
(per-syscall fixed cost + per-page PTE cost) calibrated against the
published pairs/sec; the microbenchmark itself -- 2000 pages protected
then unprotected, repeated 50 times -- runs for real against the simulated
MMU and the numbers emerge from the per-call mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.memory import MemoryImage
from repro.mem.mprotect import MprotectCosts, PROT_READ, PROT_READWRITE, SimulatedMMU
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import CostModel


@dataclass(frozen=True)
class PlatformProfile:
    """One row of Table 1."""

    name: str
    specint92: float | None
    mprotect_costs: MprotectCosts
    paper_pairs_per_sec: int


def _profile(name: str, specint92: float | None, pairs_per_sec: int) -> PlatformProfile:
    # One pair = two single-page mprotect calls.  Split each call's cost
    # 90/10 between trap entry/kernel bookkeeping and the per-page
    # PTE/TLB work (the split only matters for multi-page calls).
    call_ns = round(1e9 / pairs_per_sec / 2)
    return PlatformProfile(
        name=name,
        specint92=specint92,
        mprotect_costs=MprotectCosts(
            syscall_fixed_ns=round(call_ns * 0.9),
            per_page_ns=round(call_ns * 0.1),
        ),
        paper_pairs_per_sec=pairs_per_sec,
    )


PLATFORMS: dict[str, PlatformProfile] = {
    "SPARCstation 20": _profile("SPARCstation 20", 88.9, 15_600),
    "UltraSPARC 2": _profile("UltraSPARC 2", None, 43_000),
    "HP 9000 C110": _profile("HP 9000 C110", 170.2, 3_300),
    "SGI Challenge DM": _profile("SGI Challenge DM", None, 8_200),
}


def mprotect_microbenchmark(
    profile: PlatformProfile, pages: int = 2000, reps: int = 50
) -> float:
    """Reproduce the Table 1 measurement for one platform.

    Protects ``pages`` pages one call at a time, unprotects them the same
    way, ``reps`` times over; returns protect/unprotect *pairs* per second
    of virtual time.
    """
    clock = VirtualClock()
    meter = Meter(clock, CostModel.free())
    memory = MemoryImage()
    memory.add_segment("bench", pages * memory.page_size)
    mmu = SimulatedMMU(memory, profile.mprotect_costs, meter)
    page_size = memory.page_size
    for _rep in range(reps):
        for page_id in range(pages):
            mmu.mprotect(page_id * page_size, page_size, PROT_READ)
        for page_id in range(pages):
            mmu.mprotect(page_id * page_size, page_size, PROT_READWRITE)
    pairs = pages * reps
    return pairs / clock.now_seconds
