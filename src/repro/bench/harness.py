"""The Table 2 harness: run the TPC-B workload under each scheme.

Measurement protocol (Section 5.2/5.3, adapted to virtual time):

* build + load the database, take the initial checkpoint -- none of this
  is timed;
* snapshot the virtual clock, run the configured number of operations
  (committing every ``ops_per_txn``), snapshot again;
* ops/sec = operations / elapsed virtual seconds.

The checkpointer runs off the measured path, as on the paper's two-CPU
machine, but logging and commit-time flushes are on it.  Each run reports
its full event breakdown so a slowdown is always decomposable into
"N events of kind K".
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field

from repro.bench.tpcb import TPCBConfig, TPCBWorkload, build_tpcb_database, load_tpcb
from repro.sim.costs import CostModel, DEFAULT_COSTS
from repro.storage.database import Database, DBConfig


@dataclass(frozen=True)
class SchemeSpec:
    """One row of Table 2: a label plus a scheme configuration."""

    label: str
    scheme: str
    params: dict = field(default_factory=dict)
    paper_ops_per_sec: float | None = None
    paper_slowdown_pct: float | None = None

    def scheme_dir(self) -> str:
        """A filesystem-safe per-run directory name."""
        scheme = self.scheme.replace("+", "-")
        suffix = "_".join(f"{k}{v}" for k, v in sorted(self.params.items()))
        return f"{scheme}_{suffix}" if suffix else scheme


#: The rows of Table 2 in the paper's order.
TABLE2_ROWS: tuple[SchemeSpec, ...] = (
    SchemeSpec("Baseline", "baseline", {}, 417, 0.0),
    SchemeSpec("Data CW", "data_cw", {}, 380, 8.5),
    SchemeSpec(
        "Data CW w/Precheck, 64 byte", "precheck", {"region_size": 64}, 366, 12.2
    ),
    SchemeSpec("Data CW w/ReadLog", "read_logging", {}, 345, 17.1),
    SchemeSpec("Data CW w/CW ReadLog", "cw_read_logging", {}, 323, 22.4),
    SchemeSpec(
        "Data CW w/Precheck, 512 byte", "precheck", {"region_size": 512}, 311, 25.4
    ),
    SchemeSpec("Memory Protection", "hardware", {}, 257, 38.2),
    SchemeSpec(
        "Data CW w/Precheck, 8K byte", "precheck", {"region_size": 8192}, 115, 72.4
    ),
)

#: Stacked-pipeline rows (no paper counterparts -- the paper measured the
#: levels one at a time; §4.2/§4.3 discuss exactly these combinations).
#: Run with ``python -m repro.bench --table 2 --stacked``.
STACKED_ROWS: tuple[SchemeSpec, ...] = (
    SchemeSpec("Stack: Data CW + ReadLog", "data_cw+read_logging", {}),
    SchemeSpec("Stack: Data CW + CW ReadLog", "data_cw+cw_read_logging", {}),
    SchemeSpec(
        "Stack: Precheck 64 + ReadLog",
        "precheck+read_logging",
        {"region_size": 64},
    ),
)


@dataclass
class RunResult:
    """Outcome of one scheme's workload run."""

    label: str
    scheme: str
    operations: int
    elapsed_virtual_s: float
    ops_per_sec: float
    slowdown_pct: float | None  # vs the baseline of the same batch
    paper_ops_per_sec: float | None
    paper_slowdown_pct: float | None
    space_overhead_pct: float
    events: dict[str, tuple[int, int]]
    #: the scheme_params the run was configured with (e.g. precheck
    #: region size) -- reported so a captured row is reproducible.
    scheme_params: dict = field(default_factory=dict)

    def events_per_op(self, event: str) -> float:
        count, _ns = self.events.get(event, (0, 0))
        return count / self.operations if self.operations else 0.0


def run_scheme(
    spec: SchemeSpec,
    workload_config: TPCBConfig,
    workdir: str,
    costs: CostModel = DEFAULT_COSTS,
    keep_db: bool = False,
) -> RunResult | tuple[RunResult, Database]:
    """Run the TPC-B workload once under ``spec``; returns its result.

    ``workdir`` is created (and wiped) per run.  With ``keep_db`` the live
    database is returned too (for benchmarks that continue using it).
    """
    if os.path.exists(workdir):
        shutil.rmtree(workdir)
    db_config = DBConfig(
        dir=workdir, scheme=spec.scheme, scheme_params=dict(spec.params), costs=costs
    )
    db = build_tpcb_database(db_config, workload_config)
    load_tpcb(db, workload_config)
    db.checkpoint()

    start_ns = db.clock.now_ns
    db.meter.reset()
    runner = TPCBWorkload(db, workload_config)
    operations = runner.run()
    elapsed_s = (db.clock.now_ns - start_ns) / 1e9

    result = RunResult(
        label=spec.label,
        scheme=spec.scheme,
        operations=operations,
        elapsed_virtual_s=elapsed_s,
        ops_per_sec=operations / elapsed_s if elapsed_s else float("inf"),
        slowdown_pct=None,
        paper_ops_per_sec=spec.paper_ops_per_sec,
        paper_slowdown_pct=spec.paper_slowdown_pct,
        space_overhead_pct=db.scheme.space_overhead * 100.0,
        events=db.meter.snapshot(),
        scheme_params=dict(spec.params),
    )
    if keep_db:
        return result, db
    db.close()
    return result


def run_table2(
    workload_config: TPCBConfig,
    workdir: str,
    rows: tuple[SchemeSpec, ...] = TABLE2_ROWS,
    costs: CostModel = DEFAULT_COSTS,
) -> list[RunResult]:
    """Run every row of Table 2; slowdowns are relative to the first row."""
    results: list[RunResult] = []
    baseline_ops: float | None = None
    for spec in rows:
        result = run_scheme(
            spec, workload_config, os.path.join(workdir, spec.scheme_dir()), costs
        )
        if baseline_ops is None:
            baseline_ops = result.ops_per_sec
            result.slowdown_pct = 0.0
        else:
            result.slowdown_pct = 100.0 * (1.0 - result.ops_per_sec / baseline_ops)
        results.append(result)
    return results
