"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.bench                 # Table 1 + Table 2 at scale 0.02
    python -m repro.bench --table 2 --scale 0.1
    python -m repro.bench --table 1
    python -m repro.bench --sweep         # region-size ablation series
    python -m repro.bench --json BENCH_tables.json   # machine-readable copy
    python -m repro.bench --profile       # cProfile the TPC-B update loop
    python -m repro.bench --faults --faults-backing mmap
    python -m repro.bench --serving       # concurrent-session throughput/latency
    python -m repro.bench --serving --serving-quick   # CI smoke variant
    python -m repro.bench --replication   # hot-standby detection/failover gate
    python -m repro.bench --sharded       # shard-per-core scale-up curves
    python -m repro.bench --chaos         # supervised worker-kill/hang soak

Each suite registers its flags, selection predicate and runner as a
:class:`repro.bench.suites.Suite`; this module only assembles the
registry, so a new suite is one import plus one tuple entry.
"""

from __future__ import annotations

from repro.bench.chaos import CHAOS_SUITE
from repro.bench.replication import REPLICATION_SUITE
from repro.bench.serving import SERVING_SUITE
from repro.bench.sharded import SHARDED_SUITE
from repro.bench.suites import dispatch
from repro.bench.tables import (  # noqa: F401 - re-exported for callers
    PROFILE_SUITE,
    TABLES_SUITE,
    print_fault_campaign,
    print_profile,
    print_region_sweep,
    print_table1,
    print_table2,
)

#: Argument-registration order (= --help order); TABLES_SUITE is the
#: default and runs when no other suite's flag is present.
SUITES = (
    TABLES_SUITE,
    SERVING_SUITE,
    REPLICATION_SUITE,
    SHARDED_SUITE,
    CHAOS_SUITE,
    PROFILE_SUITE,
)


def main(argv: list[str] | None = None) -> int:
    return dispatch(SUITES, argv)


if __name__ == "__main__":
    raise SystemExit(main())
