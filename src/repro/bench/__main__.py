"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.bench                 # Table 1 + Table 2 at scale 0.02
    python -m repro.bench --table 2 --scale 0.1
    python -m repro.bench --table 1
    python -m repro.bench --sweep         # region-size ablation series
    python -m repro.bench --json BENCH_tables.json   # machine-readable copy
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile

from repro.bench.harness import (
    RunResult,
    SchemeSpec,
    STACKED_ROWS,
    TABLE2_ROWS,
    run_scheme,
)
from repro.bench.platforms import PLATFORMS, mprotect_microbenchmark
from repro.bench.reporting import (
    bench_json_payload,
    render_table,
    render_table1,
    render_table2,
    write_bench_json,
)
from repro.bench.tpcb import TPCBConfig


def print_table1() -> dict[str, float]:
    measured = {
        name: mprotect_microbenchmark(profile)
        for name, profile in PLATFORMS.items()
    }
    print(render_table1(measured))
    return measured


def print_table2(scale: float, stacked: bool = False) -> list[RunResult]:
    workload = TPCBConfig().scaled(scale)
    print(
        f"TPC-B at scale {scale}: {workload.accounts:,} accounts, "
        f"{workload.operations:,} operations\n"
    )
    rows = TABLE2_ROWS + STACKED_ROWS if stacked else TABLE2_ROWS
    workdir = tempfile.mkdtemp(prefix="repro-bench-")
    try:
        results = []
        baseline = None
        for spec in rows:
            result = run_scheme(
                spec, workload, os.path.join(workdir, spec.scheme_dir())
            )
            if baseline is None:
                baseline = result.ops_per_sec
                result.slowdown_pct = 0.0
            else:
                result.slowdown_pct = 100.0 * (1.0 - result.ops_per_sec / baseline)
            results.append(result)
        print(render_table2(results))
        return results
    finally:
        shutil.rmtree(workdir)


def print_region_sweep(scale: float) -> None:
    workload = TPCBConfig().scaled(scale)
    workdir = tempfile.mkdtemp(prefix="repro-sweep-")
    try:
        baseline = run_scheme(
            SchemeSpec("Baseline", "baseline"),
            workload,
            os.path.join(workdir, "baseline"),
        )
        rows = []
        for size in (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192):
            spec = SchemeSpec(f"{size} B", "precheck", {"region_size": size})
            result = run_scheme(
                spec, workload, os.path.join(workdir, spec.scheme_dir())
            )
            slowdown = 100.0 * (1.0 - result.ops_per_sec / baseline.ops_per_sec)
            rows.append(
                [
                    f"{size} B",
                    f"{result.ops_per_sec:,.0f}",
                    f"{slowdown:.1f}%",
                    f"{result.space_overhead_pct:.3f}%",
                ]
            )
        print(
            render_table(
                ["Region size", "Ops/Sec", "% Slower", "Space overhead"],
                rows,
                title="Read Prechecking region-size sweep",
            )
        )
    finally:
        shutil.rmtree(workdir)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables of the ICDE 1999 codeword paper.",
    )
    parser.add_argument(
        "--table",
        choices=["1", "2", "all"],
        default="all",
        help="which table to reproduce (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="TPC-B scale factor; 1.0 = the paper's 100k accounts (default 0.02)",
    )
    parser.add_argument(
        "--stacked",
        action="store_true",
        help="append the stacked-pipeline rows (e.g. data_cw+read_logging) "
        "to Table 2",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="also print the region-size ablation sweep",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the reproduced tables as machine-readable JSON "
        "(a BENCH_*.json perf-trajectory artifact)",
    )
    args = parser.parse_args(argv)

    table1 = None
    table2 = None
    if args.table in ("1", "all"):
        table1 = print_table1()
        print()
    if args.table in ("2", "all"):
        table2 = print_table2(args.scale, stacked=args.stacked)
    if args.sweep:
        print()
        print_region_sweep(args.scale)
    if args.json:
        write_bench_json(
            args.json,
            bench_json_payload(table1=table1, table2=table2, scale=args.scale),
        )
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
