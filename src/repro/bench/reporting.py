"""Plain-text rendering of the reproduced tables.

The benchmark targets print the same rows the paper reports, with the
paper's published values alongside for eyeball comparison.
"""

from __future__ import annotations

from repro.bench.harness import RunResult
from repro.bench.platforms import PLATFORMS, PlatformProfile


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def render_table1(measured: dict[str, float]) -> str:
    """Table 1: protect/unprotect pairs per second per platform."""
    rows = []
    for name, pairs in measured.items():
        profile: PlatformProfile = PLATFORMS[name]
        rows.append(
            [
                name,
                f"{pairs:,.0f}",
                f"{profile.paper_pairs_per_sec:,}",
                f"{profile.specint92:.1f}" if profile.specint92 else "-",
            ]
        )
    return render_table(
        ["Platform", "pairs/sec (measured)", "pairs/sec (paper)", "SPECint92"],
        rows,
        title="Table 1. Performance of Protect/Unprotect",
    )


def render_table2(results: list[RunResult]) -> str:
    """Table 2: cost of corruption protection, paper values alongside."""
    rows = []
    for r in results:
        rows.append(
            [
                r.label,
                f"{r.ops_per_sec:,.0f}",
                f"{r.slowdown_pct:.1f}%" if r.slowdown_pct is not None else "-",
                f"{r.paper_ops_per_sec:,.0f}" if r.paper_ops_per_sec else "-",
                f"{r.paper_slowdown_pct:.1f}%"
                if r.paper_slowdown_pct is not None
                else "-",
                f"{r.space_overhead_pct:.2f}%",
            ]
        )
    return render_table(
        [
            "Algorithm",
            "Ops/Sec",
            "% Slower",
            "Ops/Sec (paper)",
            "% Slower (paper)",
            "Space ovh",
        ],
        rows,
        title="Table 2. Cost of Corruption Protection",
    )
