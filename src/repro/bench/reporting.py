"""Plain-text rendering of the reproduced tables.

The benchmark targets print the same rows the paper reports, with the
paper's published values alongside for eyeball comparison.
"""

from __future__ import annotations

import json

from repro.bench.harness import RunResult
from repro.bench.platforms import PLATFORMS, PlatformProfile


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def render_table1(measured: dict[str, float]) -> str:
    """Table 1: protect/unprotect pairs per second per platform."""
    rows = []
    for name, pairs in measured.items():
        profile: PlatformProfile = PLATFORMS[name]
        rows.append(
            [
                name,
                f"{pairs:,.0f}",
                f"{profile.paper_pairs_per_sec:,}",
                f"{profile.specint92:.1f}" if profile.specint92 else "-",
            ]
        )
    return render_table(
        ["Platform", "pairs/sec (measured)", "pairs/sec (paper)", "SPECint92"],
        rows,
        title="Table 1. Performance of Protect/Unprotect",
    )


def render_table2(results: list[RunResult]) -> str:
    """Table 2: cost of corruption protection, paper values alongside."""
    rows = []
    for r in results:
        rows.append(
            [
                r.label,
                f"{r.ops_per_sec:,.0f}",
                f"{r.slowdown_pct:.1f}%" if r.slowdown_pct is not None else "-",
                f"{r.paper_ops_per_sec:,.0f}" if r.paper_ops_per_sec else "-",
                f"{r.paper_slowdown_pct:.1f}%"
                if r.paper_slowdown_pct is not None
                else "-",
                f"{r.space_overhead_pct:.2f}%",
            ]
        )
    return render_table(
        [
            "Algorithm",
            "Ops/Sec",
            "% Slower",
            "Ops/Sec (paper)",
            "% Slower (paper)",
            "Space ovh",
        ],
        rows,
        title="Table 2. Cost of Corruption Protection",
    )


# --------------------------------------------------------------- JSON output

#: Format marker for machine-readable BENCH_*.json artifacts; bump on
#: breaking layout changes so trajectory tooling can tell files apart.
BENCH_JSON_VERSION = 1


def run_result_to_dict(result: RunResult) -> dict:
    """A ``RunResult`` as plain JSON-serializable data.

    The full event breakdown rides along so a captured run stays
    decomposable into "N events of kind K" without re-running it.
    """
    return {
        "label": result.label,
        "scheme": result.scheme,
        "scheme_params": {
            key: value
            if isinstance(value, (bool, int, float, str, type(None)))
            else repr(value)
            for key, value in result.scheme_params.items()
        },
        "operations": result.operations,
        "elapsed_virtual_s": result.elapsed_virtual_s,
        "ops_per_sec": result.ops_per_sec,
        "slowdown_pct": result.slowdown_pct,
        "paper_ops_per_sec": result.paper_ops_per_sec,
        "paper_slowdown_pct": result.paper_slowdown_pct,
        "space_overhead_pct": result.space_overhead_pct,
        "events": {
            event: {"count": count, "total_ns": total_ns}
            for event, (count, total_ns) in result.events.items()
        },
    }


def bench_json_payload(
    table1: dict[str, float] | None = None,
    table2: list[RunResult] | None = None,
    scale: float | None = None,
) -> dict:
    """Assemble the machine-readable counterpart of the printed tables."""
    payload: dict = {"version": BENCH_JSON_VERSION}
    if scale is not None:
        payload["scale"] = scale
    if table1 is not None:
        payload["table1"] = {
            name: {
                "pairs_per_sec_measured": pairs,
                "pairs_per_sec_paper": PLATFORMS[name].paper_pairs_per_sec,
            }
            for name, pairs in table1.items()
        }
    if table2 is not None:
        payload["table2"] = [run_result_to_dict(result) for result in table2]
    return payload


def write_bench_json(path: str, payload: dict) -> None:
    """Write a ``BENCH_*.json`` perf-trajectory artifact."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
