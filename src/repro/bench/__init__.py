"""Benchmark substrate: platform profiles, TPC-B workload, harness, reports."""

from repro.bench.platforms import (
    PLATFORMS,
    PlatformProfile,
    mprotect_microbenchmark,
)
from repro.bench.tpcb import TPCBConfig, TPCBWorkload, build_tpcb_database, load_tpcb
from repro.bench.harness import (
    TABLE2_ROWS,
    RunResult,
    SchemeSpec,
    run_scheme,
    run_table2,
)
from repro.bench.mixes import MixConfig, MixWorkload, build_mix_database, run_mix
from repro.bench.reporting import render_table, render_table1, render_table2

__all__ = [
    "PLATFORMS",
    "PlatformProfile",
    "mprotect_microbenchmark",
    "TPCBConfig",
    "TPCBWorkload",
    "build_tpcb_database",
    "load_tpcb",
    "SchemeSpec",
    "RunResult",
    "TABLE2_ROWS",
    "run_scheme",
    "run_table2",
    "render_table",
    "render_table1",
    "render_table2",
    "MixConfig",
    "MixWorkload",
    "build_mix_database",
    "run_mix",
]
