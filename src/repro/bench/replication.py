"""Replication benchmark: detection latency and lost commits vs single node.

``python -m repro.bench --replication`` runs the two-node fault campaign
(:mod:`repro.replication.campaign`) and scores the paper's protection
claim extended across a log-shipped hot standby:

* every injected corruption must be detected by *some* layer — replay
  checksums, the replica's independent audits, digest epochs, or the
  certifying promotion sweep — zero false negatives, same gate as the
  single-node campaigns;
* for cold-region wild writes (damage no transaction ever touches), the
  replica's digest channel must detect **strictly faster** than the
  single-node arm, whose incremental audits stay blind until its final
  full sweep — the headline number of this benchmark;
* every transport fault (drop/duplicate/reorder/tear) must be tolerated:
  the protocol converges with no corrupt bytes landed and no committed
  record lost;
* every failover must certify, and any lost-commit window must stay
  within the ship window bound (``window * batch_records`` records).

The exit code is the CI gate: 0 only when every one of those holds.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import replace

from repro.bench.reporting import render_table, write_bench_json
from repro.replication.campaign import (
    ReplicationCampaignResult,
    ReplicationCampaignSpec,
    run_replication_campaign,
)

REPLICATION_JSON_VERSION = 1


def quick_spec(spec: ReplicationCampaignSpec) -> ReplicationCampaignSpec:
    """CI smoke variant: every fault kind, one seed."""
    return replace(spec, seeds=(1,))


def render_replication_table(result: ReplicationCampaignResult) -> str:
    """The per-kind scoreboard as an aligned text table."""
    rows = []
    for kind, row in result.scoreboard().items():
        latency = row["mean_detection_latency_ops"]
        stages = ",".join(
            f"{stage}:{count}"
            for stage, count in row["stages"].items()
            if stage != "none"
        )
        rows.append(
            [
                kind,
                str(row["schedules"]),
                str(row["detected"]),
                str(row["false_negatives"]),
                "-" if latency is None else f"{latency:.2f}",
                stages or "-",
                f"{row['certified']}/{row['promoted']}",
                str(row["promote_retries"]),
                str(row["crashes"]),
                str(row["max_lost_commit_window"]),
                f"{row['values_ok']}/{row['schedules']}",
                str(row["retransmits"]),
            ]
        )
    spec = result.spec
    return render_table(
        [
            "Kind",
            "Runs",
            "Detected",
            "FalseNeg",
            "Latency(ops)",
            "Stages",
            "Certified",
            "Retries",
            "Crashes",
            "MaxLost",
            "Values",
            "Rexmit",
        ],
        rows,
        title=(
            f"Replication campaign: {spec.total_schedules} schedules "
            f"({len(spec.seeds)} seeds x {len(spec.kinds)} kinds x "
            f"{spec.schedules_per_kind}, scheme={spec.scheme}, "
            f"window={spec.window}x{spec.batch_records})"
        ),
    )


def replication_payload(
    result: ReplicationCampaignResult, quick: bool
) -> dict:
    payload = {"version": REPLICATION_JSON_VERSION, "quick": quick}
    payload.update(result.to_payload())
    return payload


def gate_failures(result: ReplicationCampaignResult) -> list[str]:
    """Every reason the bench gate would fail, as printable strings."""
    failures: list[str] = []
    if result.errors:
        failures.append(
            f"{len(result.errors)} schedule(s) raised unexpected errors"
        )
    if result.false_negatives:
        failures.append(
            f"FALSE NEGATIVES: {len(result.false_negatives)} corruption(s) "
            "never detected by any layer"
        )
    if result.tolerance_failures:
        failures.append(
            f"{len(result.tolerance_failures)} transport fault(s) not tolerated"
        )
    if result.uncertified:
        failures.append(
            f"{len(result.uncertified)} promotion(s) finished uncertified"
        )
    lost = result.lost_commit_stats()
    if lost["bound_violations"]:
        failures.append(
            f"{lost['bound_violations']} lost-commit window(s) exceeded the "
            "ship window bound"
        )
    cold = result.cold_comparison()
    if cold["compared"] and not cold["replica_strictly_faster"]:
        failures.append(
            "replica digest detection was NOT strictly faster than the "
            f"single-node full sweep for cold corruption "
            f"(replica={cold['replica_latencies']}, "
            f"single={cold['single_node_latencies']})"
        )
    values_bad = [o for o in result.outcomes if not o.value_ok]
    if values_bad:
        failures.append(
            f"{len(values_bad)} schedule(s) surfaced a value outside the "
            "committed history after failover"
        )
    return failures


def run_replication_benchmark(
    json_path: str | None,
    quick: bool = False,
    base_dir: str | None = None,
    merge_json: str | None = None,
) -> int:
    """CLI driver for ``--replication``; returns a process exit code.

    ``merge_json`` is the generic ``--json`` artifact path: when given, a
    ``{"replication": ...}`` section with the detection-latency
    percentiles, cold-region comparison and lost-commit stats is written
    there too, so perf-trajectory tooling that only reads the generic
    artifact still sees the replication numbers.
    """
    spec = ReplicationCampaignSpec()
    if quick or os.environ.get("REPL_BENCH_QUICK") == "1":
        quick = True
        spec = quick_spec(spec)
    workdir = base_dir or tempfile.mkdtemp(prefix="repro-replication-")
    try:
        result = run_replication_campaign(spec, workdir)
        print(render_replication_table(result))

        latency = result.latency_percentiles()
        cold = result.cold_comparison()
        lost = result.lost_commit_stats()
        print(
            f"\nDetection latency (corruption kinds, workload ops): "
            f"p50={latency['p50']} p90={latency['p90']} max={latency['max']}"
        )
        if cold["compared"]:
            print(
                f"Cold-region wild writes: replica digest latency "
                f"{cold['replica_latencies']} vs single-node full-sweep "
                f"{cold['single_node_latencies']} ops "
                f"(strictly faster: {cold['replica_strictly_faster']})"
            )
        print(
            f"Lost-commit windows: {lost['nonzero']} nonzero, "
            f"max {lost['max_lost_records']} record(s), "
            f"{lost['bound_violations']} bound violation(s)."
        )

        payload = replication_payload(result, quick)
        if json_path:
            write_bench_json(json_path, payload)
            print(f"\nwrote {json_path}")
        if merge_json:
            from repro.bench.reporting import BENCH_JSON_VERSION

            write_bench_json(
                merge_json,
                {"version": BENCH_JSON_VERSION, "replication": payload},
            )
            print(f"wrote {merge_json}")

        failures = gate_failures(result)
        if failures:
            print()
            for failure in failures:
                print(f"GATE: {failure}")
            for o in result.errors:
                print(f"  {o.kind} seed={o.seed} idx={o.index}: {o.error}")
            return 1
        return 0
    finally:
        if base_dir is None:
            shutil.rmtree(workdir, ignore_errors=True)


# --------------------------------------------------------- registration


def _add_arguments(parser) -> None:
    parser.add_argument(
        "--replication",
        action="store_true",
        help="run the two-node replication campaign (log-shipped hot "
        "standby, independent replica audits, certified failover): exit 1 "
        "on any false negative, untolerated transport fault, uncertified "
        "promotion, or lost-commit window past the ship window bound",
    )
    parser.add_argument(
        "--replication-quick",
        action="store_true",
        help="shrink the --replication campaign to one seed for CI smoke "
        "runs (also via REPL_BENCH_QUICK=1)",
    )
    parser.add_argument(
        "--replication-json",
        metavar="PATH",
        default="BENCH_replication.json",
        help="where --replication writes its JSON artifact "
        "(default: BENCH_replication.json)",
    )


def _run(args) -> int:
    # --json alongside --replication merges the detection-latency
    # percentiles into the generic artifact as well.
    return run_replication_benchmark(
        args.replication_json,
        quick=args.replication_quick,
        merge_json=args.json,
    )


from repro.bench.suites import Suite  # noqa: E402 - registration footer

REPLICATION_SUITE = Suite(
    name="replication",
    add_arguments=_add_arguments,
    run=_run,
    selected=lambda args: args.replication,
)
