"""Chaos soak: supervised shards under continuous worker-level faults.

Two phases over the supervised process-mode engine
(:class:`~repro.shard.supervisor.ShardSupervisor` attached to a
:class:`~repro.shard.router.ShardedDatabase`):

- **Targeted kill matrix.**  A fresh supervised two-shard database per
  point; a cross-shard transfer is driven into a worker kill armed at a
  specific protocol moment -- at ``txn_prepare`` (vote never cast ->
  presumed abort, whole transaction retryable), at ``decide`` and in the
  gap right after the coordinator fsyncs the commit decision (decision
  durable, delivery lost -> the caller still sees SUCCESS; the
  supervisor completes the branch), plus a plain kill and a hang.  Every
  point must end with the transfer applied exactly once, the decision
  log agreeing with the acked count, both shards serving, audits clean
  -- and the surviving shard answering queries *while* the victim is
  mid-recovery.
- **Random soak.**  A TPC-B-style mix (single-branch transactions plus
  cross-shard transfers) submitted synchronously while a seeded schedule
  injects worker kills, hangs, and wild writes.  Clients follow the
  error taxonomy: a retryable failure backs off and retries; because a
  worker killed *mid-call* leaves that transaction's outcome
  indeterminate (group commit size 1: it may have committed just before
  dying), the retry loop first checks for the transaction's unique
  history row -- the outcome-check-then-retry discipline
  ``docs/errors.md`` prescribes -- so the acked ledger stays exact.

Scoring is against ground truth:

- *zero lost committed transactions*: every acked transaction's history
  row is present after the final heal;
- *no double-applies*: account balance sum == history delta sum ==
  the acked ledger's sum (a blind retry that applied twice breaks both);
- *zero wild-write false negatives*: every injected corruption is
  either flagged by audit or provably erased by a restart that rebuilt
  the image from WAL+checkpoint after the injection;
- *bounded unavailability*: fault windows are confined to the faulted
  shard (survivor probes must succeed mid-recovery) and every shard is
  SERVING at the end.

``python -m repro.bench --chaos`` writes ``BENCH_chaos.json`` and exits
1 on any gate breach.
"""

from __future__ import annotations

import os
import random
import shutil
import time
from dataclasses import dataclass, replace

from repro.bench.reporting import render_table, write_bench_json
from repro.bench.suites import Suite
from repro.bench.tpcb import (
    ACCOUNT_SCHEMA,
    BRANCH_SCHEMA,
    HISTORY_SCHEMA,
    TELLER_SCHEMA,
)
from repro.errors import ReproError, SimulatedCrash
from repro.faults.workers import (
    hang_worker,
    kill_after_decision,
    kill_on_command,
    kill_worker,
)
from repro.shard import (
    ShardSupervisor,
    ShardedConfig,
    ShardedDatabase,
    SupervisorConfig,
)
from repro.shard.router import DECISION_LOG_FILE, DecisionLog

CHAOS_JSON_VERSION = 1

_BALANCE_OFFSET = 16


def _wild_payload(rng: random.Random) -> bytes:
    """A unique 8-byte scribble for one wild-write injection.

    The payload must vary per injection: the audit folds a region with
    XOR, so two *identical* scribbles over identical old bytes in the
    same region cancel exactly and the corruption becomes invisible by
    construction (and re-scribbling an address with the same bytes is
    not a state change at all).  Unique random payloads make
    cancellation a 2^-64 coincidence instead of a certainty, which is
    also the realistic model -- a wild pointer does not write the same
    sentinel twice.
    """
    return bytes(rng.randrange(256) for _ in range(8))

#: The protocol moments the kill matrix crashes a participant at.
KILL_POINTS = ("prepare", "decide", "after_decide", "serving", "hang")


@dataclass(frozen=True)
class ChaosBenchConfig:
    """Shape of one ``--chaos`` run."""

    n_shards: int = 2
    branches: int = 4
    accounts_per_branch: int = 40
    tellers_per_branch: int = 4
    #: traffic accounts stay below this index; the rest are cold
    #: wild-write targets no transaction ever reads mid-soak
    cold_accounts_per_branch: int = 8
    soak_txns: int = 160
    ops_per_txn: int = 4
    #: every k-th soak transaction is a cross-shard transfer (2PC)
    transfer_every: int = 5
    #: seeded faults spread across the soak (kills, hangs, wild writes)
    soak_faults: int = 9
    #: a hang must outlive the call deadline, or the late reply is just
    #: a slow answer the FIFO drain absorbs rather than a detected hang
    hang_s: float = 3.0
    seed: int = 1999
    #: client-side bound on retries of one transaction
    max_attempts: int = 60
    # ------------------------------------------------- supervisor knobs
    heartbeat_timeout_s: float = 0.3
    call_timeout_s: float = 1.5
    prepare_timeout_s: float = 1.5
    restart_timeout_s: float = 60.0
    heal_timeout_s: float = 60.0

    def quick(self) -> "ChaosBenchConfig":
        """CI smoke variant: same code paths, fewer transactions."""
        return replace(self, soak_txns=60, soak_faults=5)

    @property
    def accounts(self) -> int:
        return self.branches * self.accounts_per_branch

    def table_defs(self) -> list[tuple]:
        history_capacity = 4 * self.soak_txns * self.ops_per_txn + 64
        return [
            ("account", ACCOUNT_SCHEMA, self.accounts, "aid"),
            ("teller", TELLER_SCHEMA, self.branches * self.tellers_per_branch, "tid"),
            ("branch", BRANCH_SCHEMA, self.branches, "bid"),
            ("history", HISTORY_SCHEMA, history_capacity, "hid"),
        ]

    def sharded_config(self, workdir: str) -> ShardedConfig:
        return ShardedConfig(
            dir=workdir,
            n_shards=self.n_shards,
            mode="process",
            branches=self.branches,
            scheme="data_codeword",
            # Acked == durable: no group-commit window to excuse a lost
            # transaction, so the "zero lost committed" gate is exact.
            group_commit_size=1,
            quarantine=True,
            quarantine_repair=True,
        )

    def supervisor_config(self) -> SupervisorConfig:
        return SupervisorConfig(
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            call_timeout_s=self.call_timeout_s,
            prepare_timeout_s=self.prepare_timeout_s,
            restart_timeout_s=self.restart_timeout_s,
            max_restarts=10,
        )


def _build(workdir: str, config: ChaosBenchConfig) -> tuple:
    db = ShardedDatabase.create(config.sharded_config(workdir), config.table_defs())
    supervisor = ShardSupervisor(db, config.supervisor_config()).attach()
    for b in range(config.branches):
        ops: list = [("insert", "branch", {"bid": b, "balance": 0})]
        ops.extend(
            ("insert", "teller",
             {"tid": b + config.branches * j, "branch_id": b, "balance": 0})
            for j in range(config.tellers_per_branch)
        )
        ops.extend(
            ("insert", "account",
             {"aid": b + config.branches * j, "branch_id": b, "balance": 0})
            for j in range(config.accounts_per_branch)
        )
        db.submit_txn(ops)
    # Certify the loaded image and bound any later repair replay.
    db.checkpoint_all()
    return db, supervisor


# ------------------------------------------------------------- clients


def _hid_present(db: ShardedDatabase, supervisor, hid: int, bid: int,
                 config: ChaosBenchConfig) -> bool:
    """Outcome check after an indeterminate failure: did the transaction
    carrying this (unique) history row commit before the worker died?

    History is insert-routed (partitioned by its ``bid`` field), so the
    probe targets the owning shard directly.
    """
    sid = db.partition.shard_of(bid % config.branches)
    deadline = time.monotonic() + config.heal_timeout_s
    while time.monotonic() < deadline:
        try:
            rows = db.shard_call(sid, ("txn", [("query", "history", hid)]))
            return rows[0] is not None
        except SimulatedCrash:
            raise
        except ReproError as exc:
            if not getattr(exc, "retryable", False):
                raise
            supervisor.tick()
            time.sleep(0.02)
    raise ReproError(f"outcome check for hid {hid} did not settle in time")


def _submit_acked(db, supervisor, ops: list, hid: int, bid: int,
                  config: ChaosBenchConfig, stats: dict) -> bool:
    """Submit one transaction following the retryable-error contract.

    Returns True when the transaction is durably applied (acked directly
    or confirmed by the outcome check); ``hid < 0`` disables the outcome
    check (a transaction with no history row, where presumed abort
    already guarantees a failed attempt left nothing durable).
    """
    for attempt in range(config.max_attempts):
        try:
            db.submit_txn(ops)
            if attempt:
                stats["retried_txns"] += 1
            return True
        except SimulatedCrash:
            raise
        except ReproError as exc:
            if not getattr(exc, "retryable", False):
                stats["hard_errors"] += 1
                stats["hard_error_types"].append(type(exc).__name__)
                return False
            stats["retryable_errors"] += 1
            supervisor.tick()
            time.sleep(0.02)
            # The failed attempt's outcome may be indeterminate (killed
            # mid-call after the commit record hit disk); check before
            # retrying so nothing is applied twice.
            if hid >= 0 and _hid_present(db, supervisor, hid, bid, config):
                stats["acked_by_outcome_check"] += 1
                return True
    stats["gave_up"] += 1
    return False


# ---------------------------------------------------------------- soak


def _soak_txn(config: ChaosBenchConfig, rng: random.Random, index: int,
              next_hid: int) -> tuple[list, int, int, int, int]:
    """One soak transaction: (ops, first hid, its bid, next_hid, delta_sum).

    The bid of the first history row rides along because history is
    row-routed: the outcome check needs it to find the owning shard.
    """
    hot = config.accounts_per_branch - config.cold_accounts_per_branch
    first_hid = next_hid
    ops: list = []
    delta_sum = 0
    if config.transfer_every and index % config.transfer_every == 0:
        # Cross-shard transfer: branch b -> branch b+1 (adjacent
        # branches land on different shards when n_shards divides
        # branches evenly).
        b = index % config.branches
        b2 = (b + 1) % config.branches
        src = b + config.branches * rng.randrange(hot)
        dst = b2 + config.branches * rng.randrange(hot)
        amount = rng.randint(1, 999)
        ops = [
            ("add", "account", src, "balance", -amount),
            ("add", "account", dst, "balance", amount),
            ("insert", "history",
             {"hid": next_hid, "aid": src, "tid": 0, "bid": b, "delta": -amount}),
            ("insert", "history",
             {"hid": next_hid + 1, "aid": dst, "tid": 0, "bid": b2,
              "delta": amount}),
        ]
        return ops, first_hid, b, next_hid + 2, 0
    branch = index % config.branches
    for _ in range(config.ops_per_txn):
        aid = branch + config.branches * rng.randrange(hot)
        tid = branch + config.branches * rng.randrange(config.tellers_per_branch)
        delta = rng.randint(-999, 999)
        delta_sum += delta
        ops.append(("add", "account", aid, "balance", delta))
        ops.append(("add", "teller", tid, "balance", delta))
        ops.append(("add", "branch", branch, "balance", delta))
        ops.append(
            ("insert", "history",
             {"hid": next_hid, "aid": aid, "tid": tid, "bid": branch,
              "delta": delta})
        )
        next_hid += 1
    return ops, first_hid, branch, next_hid, delta_sum


def _inject_fault(db, supervisor, config: ChaosBenchConfig,
                  rng: random.Random, stats: dict, wild_writes: list) -> None:
    """One seeded fault against a currently-serving shard.

    Wild-write payloads come from a *separate* rng stream seeded off the
    injection count, so the payload bytes never perturb the seeded fault
    schedule (which shard, which fault, when).
    """
    serving = [
        sid for sid in range(config.n_shards)
        if supervisor.state_of(sid) == "serving"
    ]
    if not serving:
        return
    sid = rng.choice(serving)
    kind = rng.choice(("kill", "hang", "wild_write"))
    try:
        if kind == "kill":
            kill_worker(db, sid)
            stats["kills"] += 1
        elif kind == "hang":
            hang_worker(db, sid, config.hang_s)
            stats["hangs"] += 1
        else:
            # Scribble on a cold account of a branch owned by this
            # shard; no soak transaction reads it, so only the audit
            # (or a restart's image rebuild) can clear it.
            branch = sid % config.branches
            cold = config.branches * (
                config.accounts_per_branch - 1
                - rng.randrange(config.cold_accounts_per_branch)
            )
            aid = branch + cold
            payload = _wild_payload(
                random.Random(config.seed * 1000003 + len(wild_writes))
            )
            address = db.wild_write(
                "account", aid, _BALANCE_OFFSET, payload
            )
            wild_writes.append(
                {"shard": sid, "aid": aid, "address": address,
                 "restarts_at_injection": supervisor.summary()["shards"][sid][
                     "restarts"]}
            )
            stats["wild_writes"] += 1
    except ReproError:
        # The target died under us (e.g. hang raced a kill); the
        # supervisor picks it up either way.
        stats["injection_races"] += 1


def _survivor_probe(db, supervisor, config: ChaosBenchConfig,
                    stats: dict) -> None:
    """Mid-recovery, a shard that was not faulted must answer now."""
    recovering = [
        sid for sid in range(config.n_shards)
        if supervisor.state_of(sid) != "serving"
    ]
    if not recovering:
        return
    survivors = [
        sid for sid in range(config.n_shards)
        if supervisor.state_of(sid) == "serving"
    ]
    if not survivors:
        return
    # aid == branch index of a branch on the survivor -> single-shard.
    branch = survivors[0] % config.branches
    stats["survivor_probes"] += 1
    try:
        db.submit_txn([("query", "account", branch)])
    except ReproError:
        stats["survivor_probe_failures"] += 1


def run_chaos_soak(base_dir: str, config: ChaosBenchConfig) -> dict:
    workdir = os.path.join(base_dir, "soak")
    db, supervisor = _build(workdir, config)
    stats = {
        "kills": 0, "hangs": 0, "wild_writes": 0, "injection_races": 0,
        "retryable_errors": 0, "retried_txns": 0, "acked_by_outcome_check": 0,
        "hard_errors": 0, "hard_error_types": [], "gave_up": 0,
        "survivor_probes": 0, "survivor_probe_failures": 0,
    }
    wild_writes: list[dict] = []
    acked_hids: list[tuple[int, int]] = []  # (hid, bid) pairs
    expected_delta = 0
    rng = random.Random(config.seed)
    fault_at = sorted(
        rng.sample(range(5, config.soak_txns), k=min(config.soak_faults,
                                                     config.soak_txns - 5))
    )
    try:
        next_hid = 0
        began = time.perf_counter()
        for i in range(config.soak_txns):
            if fault_at and i == fault_at[0]:
                fault_at.pop(0)
                _inject_fault(db, supervisor, config, rng, stats, wild_writes)
            ops, first_hid, first_bid, next_hid, delta_sum = _soak_txn(
                config, rng, i, next_hid
            )
            if _submit_acked(db, supervisor, ops, first_hid, first_bid,
                             config, stats):
                acked_hids.append((first_hid, first_bid))
                expected_delta += delta_sum
            _survivor_probe(db, supervisor, config, stats)
            supervisor.tick()
        healed = supervisor.heal(timeout_s=config.heal_timeout_s)
        wall_s = time.perf_counter() - began

        # ---- scoring against ground truth ----
        lost = 0
        for hid, bid in acked_hids:
            if not _hid_present(db, supervisor, hid, bid, config):
                lost += 1
        summary = supervisor.summary()
        audits = db.audit_all()
        false_negatives = 0
        erased_by_restart = 0
        for injection in wild_writes:
            sid = injection["shard"]
            restarted = (
                summary["shards"][sid]["restarts"]
                > injection["restarts_at_injection"]
            )
            clean, _regions, byte_ranges = audits[sid]
            flagged = any(
                start <= injection["address"] < start + length
                for start, length in byte_ranges
            )
            if flagged:
                continue
            if restarted:
                # The restart rebuilt the image from WAL + checkpoint
                # after the injection; the in-memory scribble is gone,
                # which is a repair, not a miss.
                erased_by_restart += 1
            else:
                false_negatives += 1
        repaired = db.repair_all()
        post_clean = all(clean for clean, _, _ in db.audit_all())
        account_sum = db.sum_field("account", "balance")
        history_sum = db.sum_field("history", "delta")
        conserved = account_sum == expected_delta == history_sum
        return {
            "txns": config.soak_txns,
            "acked": len(acked_hids),
            "wall_s": round(wall_s, 3),
            "healed": healed,
            "lost_committed": lost,
            "conserved": conserved,
            "account_sum": account_sum,
            "history_sum": history_sum,
            "expected_sum": expected_delta,
            "wild_write_false_negatives": false_negatives,
            "wild_writes_erased_by_restart": erased_by_restart,
            "repaired_regions": repaired,
            "post_repair_audit_clean": post_clean,
            "all_serving": all(
                shard["state"] == "serving"
                for shard in summary["shards"].values()
            ),
            "restarts": summary["restarts"],
            "decisions_repaired": summary["decisions_repaired"],
            "unavailability": {
                str(sid): {
                    "windows": shard["unavailability_windows"],
                    "total_s": shard["unavailable_s"],
                    "max_window_s": shard["max_window_s"],
                }
                for sid, shard in summary["shards"].items()
            },
            **stats,
        }
    finally:
        supervisor.detach()
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)


# -------------------------------------------------------- kill matrix


def run_kill_point(base_dir: str, config: ChaosBenchConfig,
                   point: str) -> dict:
    """Kill shard 1 at one protocol moment of a cross-shard transfer."""
    workdir = os.path.join(base_dir, f"kill-{point}")
    db, supervisor = _build(workdir, config)
    victim = 1
    # branch 0 -> shard 0, branch 1 -> shard 1 (branches % n_shards).
    transfer = [
        ("add", "account", 0, "balance", -30),
        ("add", "account", 1, "balance", 30),
    ]
    stats = {
        "retryable_errors": 0, "retried_txns": 0, "acked_by_outcome_check": 0,
        "hard_errors": 0, "hard_error_types": [], "gave_up": 0,
    }
    try:
        if point == "prepare":
            kill_on_command(db, victim, "txn_prepare")
        elif point == "decide":
            kill_on_command(db, victim, "decide")
        elif point == "after_decide":
            kill_after_decision(db, victim)
        elif point == "serving":
            kill_worker(db, victim)
        elif point == "hang":
            hang_worker(db, victim, config.hang_s)
        else:  # pragma: no cover - driver bug
            raise ValueError(f"unknown kill point {point!r}")

        first_try_acked = False
        try:
            db.submit_txn(transfer)
            first_try_acked = True
        except SimulatedCrash:
            raise
        except ReproError as exc:
            if not getattr(exc, "retryable", False):
                stats["hard_errors"] += 1
                stats["hard_error_types"].append(type(exc).__name__)

        # Degraded-mode serving: while the victim recovers, the
        # survivor answers and the victim fails fast.
        survivor_began = time.perf_counter()
        survivor_row = db.submit_txn([("query", "account", 0)])[0]
        survivor_latency_s = time.perf_counter() - survivor_began
        victim_recovering = supervisor.state_of(victim) != "serving"
        fail_fast_s = None
        if victim_recovering:
            fail_began = time.perf_counter()
            try:
                db.submit_txn([("query", "account", 1)])
            except ReproError as exc:
                if getattr(exc, "retryable", False):
                    fail_fast_s = time.perf_counter() - fail_began

        healed = supervisor.heal(timeout_s=config.heal_timeout_s)
        acked = first_try_acked
        if not acked and not stats["hard_errors"]:
            acked = _submit_acked(db, supervisor, transfer, -1, 0,
                                  config, stats)

        balances = (
            db.submit_txn([("query", "account", 0)])[0]["balance"],
            db.submit_txn([("query", "account", 1)])[0]["balance"],
        )
        committed_gids = DecisionLog.load_committed(
            os.path.join(db.config.dir, DECISION_LOG_FILE)
        )
        summary = supervisor.summary()
        return {
            "point": point,
            "victim_shard": victim,
            "first_try_acked": first_try_acked,
            "acked": acked,
            "applied_exactly_once": balances == (-30, 30),
            "balances": balances,
            "decision_log_agrees": len(committed_gids) == (1 if acked else 0),
            "survivor_served_mid_recovery": survivor_row is not None,
            "survivor_latency_s": round(survivor_latency_s, 4),
            "victim_fail_fast_s": (
                round(fail_fast_s, 6) if fail_fast_s is not None else None
            ),
            "healed": healed,
            "all_serving": all(
                shard["state"] == "serving"
                for shard in summary["shards"].values()
            ),
            "audits_clean": all(clean for clean, _, _ in db.audit_all()),
            "restarts": summary["restarts"],
            "decisions_repaired": summary["decisions_repaired"],
            **stats,
        }
    finally:
        supervisor.detach()
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)


def run_kill_matrix(base_dir: str, config: ChaosBenchConfig) -> list[dict]:
    return [run_kill_point(base_dir, config, point) for point in KILL_POINTS]


# --------------------------------------------------------------- gates


def chaos_gates(matrix: list[dict], soak: dict) -> dict:
    matrix_ok = all(
        p["acked"] and p["applied_exactly_once"] and p["decision_log_agrees"]
        and p["survivor_served_mid_recovery"] and p["healed"]
        and p["all_serving"] and p["audits_clean"] and not p["hard_errors"]
        for p in matrix
    )
    return {
        "matrix_ok": matrix_ok,
        "lost_committed": soak["lost_committed"],
        "conserved": soak["conserved"],
        "false_negatives": soak["wild_write_false_negatives"],
        "hard_errors": soak["hard_errors"] + sum(p["hard_errors"] for p in matrix),
        "gave_up": soak["gave_up"],
        "survivor_probe_failures": soak["survivor_probe_failures"],
        "healed": soak["healed"] and soak["all_serving"],
    }


def chaos_payload(matrix: list[dict], soak: dict, gates: dict,
                  config: ChaosBenchConfig, quick: bool) -> dict:
    return {
        "version": CHAOS_JSON_VERSION,
        "quick": quick,
        "n_shards": config.n_shards,
        "soak_txns": config.soak_txns,
        "soak_faults": config.soak_faults,
        "seed": config.seed,
        "kill_matrix": matrix,
        "soak": soak,
        "gates": gates,
    }


def render_chaos_table(matrix: list[dict]) -> str:
    rows = [
        [
            p["point"],
            "yes" if p["first_try_acked"] else "retry",
            "yes" if p["applied_exactly_once"] else "NO",
            "yes" if p["survivor_served_mid_recovery"] else "NO",
            (
                f"{p['victim_fail_fast_s'] * 1000:.1f}"
                if p["victim_fail_fast_s"] is not None
                else "-"
            ),
            str(p["restarts"]),
            "yes" if p["all_serving"] else "NO",
        ]
        for p in matrix
    ]
    return render_table(
        [
            "Kill point",
            "Acked",
            "Exactly once",
            "Survivor served",
            "Fail-fast ms",
            "Restarts",
            "Healed",
        ],
        rows,
        title="Targeted worker-kill matrix (cross-shard transfer, "
        "supervised process mode)",
    )


def run_chaos_benchmark(json_path: str | None, quick: bool = False,
                        base_dir: str | None = None) -> int:
    """CLI driver for ``--chaos``; returns a process exit code."""
    import tempfile

    config = ChaosBenchConfig()
    if quick:
        config = config.quick()
    workdir = base_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        matrix = run_kill_matrix(workdir, config)
        print(render_chaos_table(matrix))
        print()
        soak = run_chaos_soak(workdir, config)
        print(
            f"Chaos soak: {soak['acked']}/{soak['txns']} transactions acked "
            f"under {soak['kills']} kills, {soak['hangs']} hangs, "
            f"{soak['wild_writes']} wild writes "
            f"({soak['restarts']} restarts, "
            f"{soak['decisions_repaired']} decisions repaired, "
            f"{soak['retryable_errors']} retryable errors surfaced); "
            f"lost committed: {soak['lost_committed']}, "
            f"conserved: {soak['conserved']}, "
            f"wild-write false negatives: "
            f"{soak['wild_write_false_negatives']} "
            f"({soak['wild_writes_erased_by_restart']} erased by restart)."
        )
        gates = chaos_gates(matrix, soak)
        if json_path:
            write_bench_json(
                json_path, chaos_payload(matrix, soak, gates, config, quick)
            )
            print(f"\nwrote {json_path}")
        failed = []
        if not gates["matrix_ok"]:
            failed.append("targeted kill matrix breached a guarantee")
        if gates["lost_committed"]:
            failed.append(f"{gates['lost_committed']} acked transactions lost")
        if not gates["conserved"]:
            failed.append("balance sums not conserved")
        if gates["false_negatives"]:
            failed.append("wild-write false negatives")
        if gates["hard_errors"]:
            failed.append(
                f"{gates['hard_errors']} non-retryable errors surfaced"
            )
        if gates["gave_up"]:
            failed.append("client retry budget exhausted")
        if gates["survivor_probe_failures"]:
            failed.append("surviving shard failed to serve mid-recovery")
        if not gates["healed"]:
            failed.append("shards did not heal to SERVING")
        if failed:
            print()
            for failure in failed:
                print(f"GATE: {failure}")
            return 1
        return 0
    finally:
        if base_dir is None:
            shutil.rmtree(workdir, ignore_errors=True)


# --------------------------------------------------------- registration


def _add_arguments(parser) -> None:
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the supervised chaos soak (process mode: targeted "
        "worker kills at 2PC protocol moments plus a random kill/hang/"
        "wild-write soak; exit 1 on any lost committed transaction, "
        "detection false negative, or unhealed shard)",
    )
    parser.add_argument(
        "--chaos-quick",
        action="store_true",
        help="shrink the --chaos soak for CI smoke runs",
    )
    parser.add_argument(
        "--chaos-json",
        metavar="PATH",
        default="BENCH_chaos.json",
        help="where --chaos writes its JSON artifact "
        "(default: BENCH_chaos.json)",
    )


def _run(args) -> int:
    return run_chaos_benchmark(args.chaos_json, quick=args.chaos_quick)


CHAOS_SUITE = Suite(
    name="chaos",
    add_arguments=_add_arguments,
    run=_run,
    selected=lambda args: args.chaos,
)
