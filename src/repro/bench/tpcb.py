"""The TPC-B-style workload of Section 5.2.

"The database consists of four tables, Branch, Teller, Account, and
History, each with 100 bytes per record.  Our database contained 100,000
accounts, with 10,000 tellers and 1,000 branches. ... In each run, 50,000
operations were done, where an operation consists of updating the
(non-key) balance fields of one account, teller and branch, and adding a
record to the history table.  Transactions were committed after 500
operations."

:func:`TPCBConfig.scaled` shrinks the database and operation count
proportionally for fast CI runs; per-operation virtual costs are
essentially scale-independent (fixed record sizes, short index chains), so
the Table 2 percentages survive scaling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.storage.database import Database, DBConfig
from repro.storage.schema import Field, FieldType, Schema


def _padded_schema(fields: list[Field], record_size: int = 100) -> Schema:
    used = sum(f.byte_size for f in fields)
    if used > record_size:
        raise WorkloadError(f"fields use {used} bytes, record is {record_size}")
    return Schema(fields + [Field("filler", FieldType.CHAR, record_size - used)])


ACCOUNT_SCHEMA = _padded_schema(
    [
        Field("aid", FieldType.INT64),
        Field("branch_id", FieldType.INT64),
        Field("balance", FieldType.INT64),
    ]
)

TELLER_SCHEMA = _padded_schema(
    [
        Field("tid", FieldType.INT64),
        Field("branch_id", FieldType.INT64),
        Field("balance", FieldType.INT64),
    ]
)

BRANCH_SCHEMA = _padded_schema(
    [
        Field("bid", FieldType.INT64),
        Field("balance", FieldType.INT64),
    ]
)

HISTORY_SCHEMA = _padded_schema(
    [
        Field("hid", FieldType.INT64),
        Field("aid", FieldType.INT64),
        Field("tid", FieldType.INT64),
        Field("bid", FieldType.INT64),
        Field("delta", FieldType.INT64),
    ]
)


@dataclass(frozen=True)
class TPCBConfig:
    """Workload shape; the defaults are the paper's Section 5.2 numbers."""

    accounts: int = 100_000
    tellers: int = 10_000
    branches: int = 1_000
    operations: int = 50_000
    ops_per_txn: int = 500
    seed: int = 42

    def scaled(self, factor: float) -> "TPCBConfig":
        """Scale database size and operation count by ``factor``."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive: {factor}")

        def scale(n: int, minimum: int) -> int:
            return max(minimum, round(n * factor))

        return replace(
            self,
            accounts=scale(self.accounts, 100),
            tellers=scale(self.tellers, 10),
            branches=scale(self.branches, 2),
            operations=scale(self.operations, 100),
            ops_per_txn=min(self.ops_per_txn, scale(self.operations, 100)),
        )


def build_tpcb_database(db_config: DBConfig, workload: TPCBConfig) -> Database:
    """Create (but do not populate) the four-table TPC-B database."""
    db = Database(db_config)
    db.create_table("account", ACCOUNT_SCHEMA, workload.accounts, key_field="aid")
    db.create_table("teller", TELLER_SCHEMA, workload.tellers, key_field="tid")
    db.create_table("branch", BRANCH_SCHEMA, workload.branches, key_field="bid")
    history_capacity = workload.operations + workload.ops_per_txn
    db.create_table("history", HISTORY_SCHEMA, history_capacity, key_field="hid")
    db.start()
    return db


def load_tpcb(db: Database, workload: TPCBConfig, batch: int = 1000) -> None:
    """Populate account/teller/branch with zero balances."""
    loads = [
        ("branch", workload.branches, lambda i: {"bid": i, "balance": 0}),
        (
            "teller",
            workload.tellers,
            lambda i: {"tid": i, "branch_id": i % workload.branches, "balance": 0},
        ),
        (
            "account",
            workload.accounts,
            lambda i: {"aid": i, "branch_id": i % workload.branches, "balance": 0},
        ),
    ]
    for table_name, count, make_row in loads:
        table = db.table(table_name)
        txn = db.begin()
        for i in range(count):
            table.insert(txn, make_row(i))
            if (i + 1) % batch == 0:
                db.commit(txn)
                txn = db.begin()
        db.commit(txn)


class TPCBWorkload:
    """Runs TPC-B operations against a loaded database."""

    def __init__(self, db: Database, config: TPCBConfig) -> None:
        self.db = db
        self.config = config
        self.rng = random.Random(config.seed)
        self.ops_done = 0
        self._txn = None
        self._ops_in_txn = 0
        self._next_hid = 0

    def run(self, operations: int | None = None) -> int:
        """Run ``operations`` ops (default: the configured count)."""
        target = operations if operations is not None else self.config.operations
        for _ in range(target):
            self.run_one()
        self.finish()
        return self.ops_done

    def run_one(self) -> None:
        """One TPC-B operation inside the current batch transaction."""
        if self._txn is None:
            self._txn = self.db.begin()
            self._ops_in_txn = 0
        txn = self._txn
        cfg = self.config
        # The fixed per-operation work of the Dali code path that this
        # reproduction models functionally, not per-instruction; it anchors
        # the baseline row of Table 2 (see repro.sim.costs).
        self.db.meter.charge("base_operation")
        aid = self.rng.randrange(cfg.accounts)
        tid = self.rng.randrange(cfg.tellers)
        bid = tid % cfg.branches
        delta = self.rng.randint(-99_999, 99_999)

        account = self.db.table("account")
        teller = self.db.table("teller")
        branch = self.db.table("branch")
        history = self.db.table("history")

        add = lambda current: current + delta  # noqa: E731 - tiny closure
        account.update(txn, account.lookup(txn, aid), {"balance": add})
        teller.update(txn, teller.lookup(txn, tid), {"balance": add})
        branch.update(txn, branch.lookup(txn, bid), {"balance": add})
        history.insert(
            txn,
            {"hid": self._next_hid, "aid": aid, "tid": tid, "bid": bid, "delta": delta},
        )
        self._next_hid += 1
        self.ops_done += 1
        self._ops_in_txn += 1
        if self._ops_in_txn >= cfg.ops_per_txn:
            self.db.commit(txn)
            self._txn = None

    def finish(self) -> None:
        """Commit any open batch transaction."""
        if self._txn is not None:
            self.db.commit(self._txn)
            self._txn = None
