"""Per-suite registration for the ``python -m repro.bench`` CLI.

Each benchmark suite (the paper tables, the serving matrix, the
replication campaign, the sharded scale-up, ...) registers itself as a
:class:`Suite`: a bundle of argparse flags, a selection predicate, and a
runner.  ``__main__`` just assembles the registered suites and calls
:func:`dispatch` -- adding a new suite is a registration, not another
``elif`` arm in a 400-line main.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Suite:
    """One selectable benchmark suite of the CLI.

    ``add_arguments`` contributes the suite's flags to the shared parser.
    ``selected`` decides (from the parsed namespace) whether this suite
    runs; the single suite registered with ``selected=None`` is the
    default, picked when no other suite claims the invocation.  ``run``
    returns the process exit code.
    """

    name: str
    add_arguments: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]
    selected: Callable[[argparse.Namespace], bool] | None = None


def build_parser(suites: tuple[Suite, ...]) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables of the ICDE 1999 codeword paper.",
    )
    for suite in suites:
        suite.add_arguments(parser)
    return parser


def dispatch(suites: tuple[Suite, ...], argv: list[str] | None = None) -> int:
    """Parse ``argv`` and run the first selected suite (or the default)."""
    args = build_parser(suites).parse_args(argv)
    default: Suite | None = None
    for suite in suites:
        if suite.selected is None:
            if default is not None:
                raise ValueError(
                    f"two default suites: {default.name!r} and {suite.name!r}"
                )
            default = suite
            continue
        if suite.selected(args):
            return suite.run(args)
    if default is None:
        raise ValueError("no suite selected and no default registered")
    return default.run(args)
