"""Serving benchmark: throughput/latency of concurrent TPC-B sessions.

Measures the :mod:`repro.serve` front-end over a codeword-protected
image: N client threads, each with its own session, run
begin/query/update/commit transactions against disjoint account slots
through the threaded server.  For each point in the (client count x
group-commit window) matrix we report wall-clock throughput and
p50/p99 transaction latency.

Unlike the virtual-clock tables (``BENCH_tables.json``), these numbers
are *wall-clock*: the serving layer's queueing, worker hand-off and
lock/latch contention are exactly what is being measured, and the
virtual clock does not see them.

The fault-campaign variant re-runs the busiest point while a fault
injector wild-writes into a cold table no session ever touches, then
full-audits: every injected region must be detected (zero false
negatives) even though concurrent sessions were committing the whole
time.  This is the paper's protection claim restated under concurrency:
codeword maintenance of hot regions must not erase or mask corruption
in cold ones.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from dataclasses import dataclass, replace

from repro.bench.reporting import render_table, write_bench_json
from repro.faults.injector import FaultInjector
from repro.serve import Request, Server
from repro.storage.database import Database, DBConfig
from repro.storage.schema import Field, FieldType, Schema

SERVING_JSON_VERSION = 1

ACCT_SCHEMA = Schema(
    [
        Field("id", FieldType.INT64),
        Field("balance", FieldType.INT64),
        Field("name", FieldType.CHAR, 16),
    ]
)


@dataclass(frozen=True)
class ServingConfig:
    """One serving-benchmark campaign."""

    client_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
    txns_per_client: int = 40
    group_commit_sizes: tuple[int, ...] = (1, 8)
    scheme: str = "data_codeword"
    region_size: int = 64
    workers: int = 8
    fault_injections: int = 6

    def quick(self) -> "ServingConfig":
        """CI smoke variant: same code paths, minutes -> seconds."""
        return replace(
            self,
            client_counts=(1, 4, 8),
            txns_per_client=8,
            group_commit_sizes=(1, 4),
            fault_injections=3,
        )


@dataclass
class ServingPoint:
    """Measured result of one (clients, group_commit_size) cell."""

    clients: int
    group_commit_size: int
    txns: int
    errors: int
    wall_s: float
    throughput_txn_s: float
    p50_ms: float
    p99_ms: float

    def to_payload(self) -> dict:
        return {
            "clients": self.clients,
            "group_commit_size": self.group_commit_size,
            "txns": self.txns,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 4),
            "throughput_txn_s": round(self.throughput_txn_s, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def _make_db(
    workdir: str,
    config: ServingConfig,
    group: int,
    slots_needed: int,
    quarantine_repair: bool = False,
) -> Database:
    db_config = DBConfig(
        dir=workdir,
        scheme=config.scheme,
        scheme_params={"region_size": config.region_size},
        group_commit_size=group,
        scheduler_mode="threaded",
        quarantine=quarantine_repair,
        quarantine_repair=quarantine_repair,
    )
    db = Database(db_config)
    capacity = max(64, 2 * slots_needed)
    db.create_table("acct", ACCT_SCHEMA, capacity, key_field="id")
    db.start()
    txn = db.begin()
    for i in range(slots_needed):
        db.table("acct").insert(
            txn, {"id": i, "balance": 100, "name": f"acct-{i}"}
        )
    db.commit(txn)
    db.manager.flush_commits()
    return db


def _run_clients(
    server: Server, clients: int, txns_per_client: int
) -> tuple[list[float], list[str]]:
    """Drive ``clients`` threads; return per-txn latencies and errors."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []
    barrier = threading.Barrier(clients)

    def client(client_id: int) -> None:
        session = server.open_session()
        barrier.wait()
        for i in range(txns_per_client):
            began = time.perf_counter()
            responses = [
                server.submit(session, request)
                for request in (
                    Request(op="begin"),
                    Request(op="query", table="acct", key=client_id),
                    Request(
                        op="update",
                        table="acct",
                        slot=client_id,
                        values={"balance": 100 + i},
                    ),
                    Request(op="commit"),
                )
            ]
            latencies[client_id].append(time.perf_counter() - began)
            for response in responses:
                if not response.ok:
                    errors.append(f"client {client_id} txn {i}: {response.error}")
                    break
        server.close_session(session)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    flat = [latency for per_client in latencies for latency in per_client]
    return flat, errors


def run_serving_point(
    base_dir: str, config: ServingConfig, clients: int, group: int
) -> ServingPoint:
    """Measure one cell of the matrix on a fresh database."""
    workdir = os.path.join(base_dir, f"c{clients}-g{group}")
    db = _make_db(workdir, config, group, slots_needed=clients)
    server = Server(db, queue_depth=max(64, 2 * clients), workers=config.workers)
    try:
        began = time.perf_counter()
        latencies, errors = _run_clients(server, clients, config.txns_per_client)
        wall_s = max(time.perf_counter() - began, 1e-9)
    finally:
        server.close()
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)
    txns = clients * config.txns_per_client
    latencies.sort()
    return ServingPoint(
        clients=clients,
        group_commit_size=group,
        txns=txns,
        errors=len(errors),
        wall_s=wall_s,
        throughput_txn_s=txns / wall_s,
        p50_ms=1000.0 * _percentile(latencies, 0.50),
        p99_ms=1000.0 * _percentile(latencies, 0.99),
    )


def run_serving_matrix(base_dir: str, config: ServingConfig) -> list[ServingPoint]:
    return [
        run_serving_point(base_dir, config, clients, group)
        for group in config.group_commit_sizes
        for clients in config.client_counts
    ]


def run_serving_fault_campaign(base_dir: str, config: ServingConfig) -> dict:
    """Concurrent sessions + wild writes into cold regions: zero FN.

    Traffic hammers the first ``clients`` slots of ``acct``; the
    injector corrupts records in the *top* half of the table, which no
    session reads or writes.  With region_size small enough that hot and
    cold slots never share a region, the final full audit must flag
    every injected region -- a missed one is a false negative.
    """
    clients = max(config.client_counts)
    workdir = os.path.join(base_dir, "faults")
    # Twice the slots: the top half stays cold (traffic never touches it).
    # Quarantine + repair is on so the campaign reports the full detect ->
    # quarantine -> repair -> re-certify arc, not just detection.
    db = _make_db(
        workdir,
        config,
        max(config.group_commit_sizes),
        2 * clients,
        quarantine_repair=True,
    )
    server = Server(db, queue_depth=max(64, 2 * clients), workers=config.workers)
    try:
        injector = FaultInjector(db, seed=97)
        cold_slots = range(clients + clients // 2, 2 * clients)
        targets = [
            db.table("acct").record_address(slot)
            for slot in list(cold_slots)[: config.fault_injections]
        ]
        injected_done = threading.Event()

        def inject() -> None:
            # Spread the wild writes across the traffic window so some
            # land while commits are in flight.
            for address in targets:
                injector.wild_write(address, 8)
                time.sleep(0.01)
            injected_done.set()

        injector_thread = threading.Thread(target=inject)
        injector_thread.start()
        _latencies, errors = _run_clients(server, clients, config.txns_per_client)
        injector_thread.join(timeout=60)
        assert injected_done.is_set(), "fault injector did not finish"
        report = db.audit()
        detected = [
            any(
                start <= event.address < start + length
                for start, length in report.corrupt_byte_ranges
            )
            for event in injector.events
        ]
        false_negatives = detected.count(False)
        # The detection audit is *supposed* to be dirty -- it just found
        # the injected corruption (`audit_clean: false` here is success,
        # not failure).  Make the report self-describing: the corrupt
        # regions are quarantined by that audit, repaired from checkpoint
        # + log, and a second audit certifies the repaired image.
        quarantined = len(db.quarantined_regions())
        repaired = db.repair_quarantined()
        post_repair = db.audit()
        return {
            "clients": clients,
            "txns": clients * config.txns_per_client,
            "traffic_errors": len(errors),
            "injected": len(injector.events),
            "detected": detected.count(True),
            "false_negatives": false_negatives,
            # Detection-time audit state: clean=False means the injected
            # corruption was caught (zero FN), not that the bench failed.
            "detection_audit_clean": report.clean,
            "corrupt_regions": len(report.corrupt_regions),
            "quarantined_regions": quarantined,
            "repaired_regions": repaired,
            "post_repair_audit_clean": post_repair.clean,
        }
    finally:
        server.close()
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)


def serving_payload(
    points: list[ServingPoint], campaign: dict, config: ServingConfig, quick: bool
) -> dict:
    return {
        "version": SERVING_JSON_VERSION,
        "quick": quick,
        "scheme": config.scheme,
        "workers": config.workers,
        "txns_per_client": config.txns_per_client,
        "matrix": [point.to_payload() for point in points],
        "fault_campaign": campaign,
    }


def render_serving_table(points: list[ServingPoint]) -> str:
    rows = [
        [
            str(point.clients),
            str(point.group_commit_size),
            f"{point.throughput_txn_s:,.0f}",
            f"{point.p50_ms:.2f}",
            f"{point.p99_ms:.2f}",
            str(point.errors),
        ]
        for point in points
    ]
    return render_table(
        ["Clients", "GC window", "Txn/sec", "p50 ms", "p99 ms", "Errors"],
        rows,
        title="Concurrent serving over the protected image (wall-clock)",
    )


def run_serving_benchmark(
    json_path: str | None, quick: bool = False, base_dir: str | None = None
) -> int:
    """CLI driver for ``--serving``; returns a process exit code."""
    import tempfile

    config = ServingConfig()
    if quick:
        config = config.quick()
    workdir = base_dir or tempfile.mkdtemp(prefix="repro-serving-")
    try:
        points = run_serving_matrix(workdir, config)
        print(render_serving_table(points))
        print()
        campaign = run_serving_fault_campaign(workdir, config)
        print(
            f"Fault campaign under {campaign['clients']} concurrent sessions: "
            f"{campaign['injected']} wild writes into cold regions, "
            f"{campaign['detected']} detected, "
            f"{campaign['false_negatives']} false negatives; "
            f"{campaign['quarantined_regions']} regions quarantined, "
            f"{campaign['repaired_regions']} repaired, post-repair audit "
            f"clean={campaign['post_repair_audit_clean']}."
        )
        if json_path:
            write_bench_json(
                json_path, serving_payload(points, campaign, config, quick)
            )
            print(f"\nwrote {json_path}")
        if campaign["false_negatives"]:
            print("\nFALSE NEGATIVES under concurrent serving")
            return 1
        return 0
    finally:
        if base_dir is None:
            shutil.rmtree(workdir, ignore_errors=True)


# --------------------------------------------------------- registration


def _add_arguments(parser) -> None:
    parser.add_argument(
        "--serving",
        action="store_true",
        help="run the concurrent-serving benchmark (threaded scheduler, "
        "N sessions over one protected image): throughput + p50/p99 "
        "latency vs client count, with/without group commit, plus a "
        "fault campaign under concurrency (exit 1 on any false negative)",
    )
    parser.add_argument(
        "--serving-quick",
        action="store_true",
        help="shrink the --serving matrix for CI smoke runs",
    )
    parser.add_argument(
        "--serving-json",
        metavar="PATH",
        default="BENCH_serving.json",
        help="where --serving writes its JSON artifact "
        "(default: BENCH_serving.json)",
    )


def _run(args) -> int:
    return run_serving_benchmark(args.serving_json, quick=args.serving_quick)


from repro.bench.suites import Suite  # noqa: E402 - registration footer

SERVING_SUITE = Suite(
    name="serving",
    add_arguments=_add_arguments,
    run=_run,
    selected=lambda args: args.serving,
)
