"""The default CLI suite: the paper's tables, sweeps and fault campaign.

Holds the runners behind ``python -m repro.bench`` with no suite flag
(Table 1, Table 2, the region-size sweep, the seeded fault campaign and
the ``--json`` artifact) plus the ``--profile`` suite.  Registered with
:mod:`repro.bench.suites`; ``__main__`` only assembles suites.
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile

from repro.bench.harness import (
    RunResult,
    SchemeSpec,
    STACKED_ROWS,
    TABLE2_ROWS,
    run_scheme,
)
from repro.bench.platforms import PLATFORMS, mprotect_microbenchmark
from repro.bench.reporting import (
    bench_json_payload,
    render_table,
    render_table1,
    render_table2,
    write_bench_json,
)
from repro.bench.suites import Suite
from repro.bench.tpcb import TPCBConfig


def print_table1() -> dict[str, float]:
    measured = {
        name: mprotect_microbenchmark(profile)
        for name, profile in PLATFORMS.items()
    }
    print(render_table1(measured))
    return measured


def print_table2(scale: float, stacked: bool = False) -> list[RunResult]:
    workload = TPCBConfig().scaled(scale)
    print(
        f"TPC-B at scale {scale}: {workload.accounts:,} accounts, "
        f"{workload.operations:,} operations\n"
    )
    rows = TABLE2_ROWS + STACKED_ROWS if stacked else TABLE2_ROWS
    workdir = tempfile.mkdtemp(prefix="repro-bench-")
    try:
        results = []
        baseline = None
        for spec in rows:
            result = run_scheme(
                spec, workload, os.path.join(workdir, spec.scheme_dir())
            )
            if baseline is None:
                baseline = result.ops_per_sec
                result.slowdown_pct = 0.0
            else:
                result.slowdown_pct = 100.0 * (1.0 - result.ops_per_sec / baseline)
            results.append(result)
        print(render_table2(results))
        return results
    finally:
        shutil.rmtree(workdir)


def print_region_sweep(scale: float) -> None:
    workload = TPCBConfig().scaled(scale)
    workdir = tempfile.mkdtemp(prefix="repro-sweep-")
    try:
        baseline = run_scheme(
            SchemeSpec("Baseline", "baseline"),
            workload,
            os.path.join(workdir, "baseline"),
        )
        rows = []
        for size in (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192):
            spec = SchemeSpec(f"{size} B", "precheck", {"region_size": size})
            result = run_scheme(
                spec, workload, os.path.join(workdir, spec.scheme_dir())
            )
            slowdown = 100.0 * (1.0 - result.ops_per_sec / baseline.ops_per_sec)
            rows.append(
                [
                    f"{size} B",
                    f"{result.ops_per_sec:,.0f}",
                    f"{slowdown:.1f}%",
                    f"{result.space_overhead_pct:.3f}%",
                ]
            )
        print(
            render_table(
                ["Region size", "Ops/Sec", "% Slower", "Space overhead"],
                rows,
                title="Read Prechecking region-size sweep",
            )
        )
    finally:
        shutil.rmtree(workdir)


def print_profile(scale: float, scheme: str, top: int) -> None:
    """cProfile one TPC-B run; print the top-N cumulative-time entries.

    Answers "where do the update cycles actually go" for the write-path
    work: run under ``--profile`` before and after flipping
    ``update_batch`` / ``image_backing`` to see which frames moved.
    """
    import cProfile
    import pstats

    workload = TPCBConfig().scaled(scale)
    workdir = tempfile.mkdtemp(prefix="repro-profile-")
    spec = SchemeSpec("profiled", scheme)
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        result = run_scheme(spec, workload, os.path.join(workdir, "db"))
        profiler.disable()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"cProfile of one TPC-B run: scheme={scheme}, scale={scale} "
        f"({workload.operations:,} operations, "
        f"{result.ops_per_sec:,.0f} virtual ops/sec)\n"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


def print_fault_campaign(
    seeds: tuple[int, ...],
    schemes: tuple[str, ...],
    schedules: int,
    ops: int,
    image_backing: str = "heap",
):
    """Run a seeded fault campaign and print its scoreboard."""
    from repro.faults.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        seeds=seeds,
        schemes=schemes,
        schedules_per_config=schedules,
        ops_per_schedule=ops,
        image_backing=image_backing,
    )
    workdir = tempfile.mkdtemp(prefix="repro-faults-")
    try:
        result = run_campaign(spec, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    board = result.scoreboard()
    rows = []
    for scheme, row in board.items():
        latency = row["mean_detection_latency_ops"]
        rows.append(
            [
                scheme,
                str(row["schedules"]),
                str(row["direct_faults"]),
                str(row["detected"]),
                str(row["erased"]),
                str(row["false_negatives"]),
                "-" if latency is None else f"{latency:.2f}",
                f"{row['repairs_ok']}/{row['repairs']}",
                f"{row['values_ok']}/{row['schedules']}",
                str(row["quarantine_blocked_reads"]),
                str(row["quarantine_served_garbage"]),
            ]
        )
    print(
        render_table(
            [
                "Scheme",
                "Runs",
                "Direct",
                "Detected",
                "Erased",
                "FalseNeg",
                "Latency(ops)",
                "Repairs",
                "Values",
                "Blocked",
                "Garbage",
            ],
            rows,
            title=(
                f"Fault campaign: {result.spec.total_schedules} schedules "
                f"({len(spec.seeds)} seeds x {len(spec.schemes)} schemes x "
                f"{spec.schedules_per_config}, "
                f"image_backing={spec.image_backing})"
            ),
        )
    )
    if result.errors:
        print(f"\n{len(result.errors)} schedule(s) raised unexpected errors:")
        for o in result.errors:
            print(f"  {o.scheme} seed={o.seed} idx={o.index}: {o.error}")
    if result.false_negatives:
        print(f"\nFALSE NEGATIVES: {len(result.false_negatives)}")
    if result.garbage_served:
        print(f"\nQUARANTINE SERVED GARBAGE: {len(result.garbage_served)}")
    return result


# --------------------------------------------------------- registration


def _add_tables_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--table",
        choices=["1", "2", "all", "none"],
        default="all",
        help="which table to reproduce (default: all; 'none' skips tables, "
        "e.g. for a --faults-only run)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="TPC-B scale factor; 1.0 = the paper's 100k accounts (default 0.02)",
    )
    parser.add_argument(
        "--stacked",
        action="store_true",
        help="append the stacked-pipeline rows (e.g. data_cw+read_logging) "
        "to Table 2",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="also print the region-size ablation sweep",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the reproduced tables as machine-readable JSON "
        "(a BENCH_*.json perf-trajectory artifact)",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="run the seeded crash/fault campaign and print its detection/"
        "repair scoreboard (exit 1 on any false negative or quarantined "
        "read served as data)",
    )
    parser.add_argument(
        "--faults-seeds",
        default="1,2,3",
        help="comma-separated campaign seeds (default: 1,2,3)",
    )
    parser.add_argument(
        "--faults-schemes",
        default=None,
        help="comma-separated scheme stacks for the campaign (default: "
        "data_codeword,read_precheck,read_logging,data_cw+cw_read_logging)",
    )
    parser.add_argument(
        "--faults-schedules",
        type=int,
        default=17,
        help="randomized schedules per (seed, scheme) pair (default: 17)",
    )
    parser.add_argument(
        "--faults-ops",
        type=int,
        default=24,
        help="workload operations per schedule (default: 24)",
    )
    parser.add_argument(
        "--faults-backing",
        choices=["heap", "mmap"],
        default="heap",
        help="memory-image backing for campaign databases (default: heap)",
    )


def _run_tables(args: argparse.Namespace) -> int:
    table1 = None
    table2 = None
    campaign = None
    if args.table in ("1", "all"):
        table1 = print_table1()
        print()
    if args.table in ("2", "all"):
        table2 = print_table2(args.scale, stacked=args.stacked)
    if args.sweep:
        print()
        print_region_sweep(args.scale)
    if args.faults:
        if args.table != "none":
            print()
        from repro.faults.campaign import DEFAULT_SCHEMES

        schemes = (
            tuple(s for s in args.faults_schemes.split(",") if s)
            if args.faults_schemes
            else DEFAULT_SCHEMES
        )
        seeds = tuple(int(s) for s in args.faults_seeds.split(",") if s)
        campaign = print_fault_campaign(
            seeds,
            schemes,
            args.faults_schedules,
            args.faults_ops,
            image_backing=args.faults_backing,
        )
    if args.json:
        payload = bench_json_payload(table1=table1, table2=table2, scale=args.scale)
        if campaign is not None:
            payload["faults"] = campaign.to_payload()
        write_bench_json(args.json, payload)
        print(f"\nwrote {args.json}")
    if campaign is not None and (
        campaign.false_negatives or campaign.garbage_served or campaign.errors
    ):
        return 1
    return 0


def _add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile one TPC-B run and print the hottest frames by "
        "cumulative time (see --profile-scheme / --profile-top)",
    )
    parser.add_argument(
        "--profile-scheme",
        default="data_cw",
        help="scheme for the --profile run (default: data_cw)",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="entries of the --profile report to print (default: 25)",
    )


def _run_profile(args: argparse.Namespace) -> int:
    print_profile(args.scale, args.profile_scheme, args.profile_top)
    return 0


#: The default suite: tables + sweep + fault campaign + --json artifact.
TABLES_SUITE = Suite(
    name="tables",
    add_arguments=_add_tables_arguments,
    run=_run_tables,
    selected=None,
)

PROFILE_SUITE = Suite(
    name="profile",
    add_arguments=_add_profile_arguments,
    run=_run_profile,
    selected=lambda args: args.profile,
)
