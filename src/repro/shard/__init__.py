"""Shard-per-core scale-out: N independent protected stores behind a router.

Each shard is a complete :class:`~repro.storage.database.Database` -- its
own memory image, codeword maintainer, system log, checkpointer, audit
cadence and quarantine set -- holding the branches that hash to it
(:mod:`repro.shard.partition`).  Shards run in-process (deterministic
mode, for tests and the meter/byte-identity properties) or as one
``multiprocessing`` worker per core (:mod:`repro.shard.worker`), which is
what breaks the single-image GIL plateau of ``repro/serve``.

Single-branch transactions commit entirely within one shard.  Cross-shard
transfers commit via a minimal presumed-abort two-phase commit
(:mod:`repro.shard.router`): participant prepare records ride each shard's
own WAL codec, the coordinator's commit decisions live in a durable
decision log, and the existing :class:`~repro.recovery.restart.
RestartRecovery` resolves in-doubt branches against that log at restart --
shard recoveries are independent and run in parallel.

:mod:`repro.shard.supervisor` closes the loop from detection to repair:
heartbeat-driven crash/hang detection, automatic restart with certified
(audited) recovery, replay of undelivered 2PC commit decisions, and
degraded-mode serving (fail-fast retryable errors for a shard that is
mid-recovery while the survivors keep serving).
"""

from repro.shard.core import ShardCore
from repro.shard.partition import PartitionSpec, shard_capacity
from repro.shard.router import (
    DecisionLog,
    ShardedConfig,
    ShardedDatabase,
    ShardRouter,
)
from repro.shard.shard import LocalShard, ProcessShard
from repro.shard.supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    WaitForGraph,
)

__all__ = [
    "DecisionLog",
    "LocalShard",
    "PartitionSpec",
    "ProcessShard",
    "ShardCore",
    "ShardRouter",
    "ShardSupervisor",
    "ShardedConfig",
    "ShardedDatabase",
    "SupervisorConfig",
    "WaitForGraph",
    "shard_capacity",
]
