"""The shard router: partitioned stores, 2PC transfers, parallel recovery.

:class:`ShardedDatabase` owns N shards (in-process or worker processes)
and routes whole transactions: every op in a transaction is mapped to a
shard by the partition spec; a one-shard transaction commits locally in
one round trip, a cross-shard transaction runs presumed-abort two-phase
commit.  The 2PC pieces are deliberately minimal:

- *Participants* are ordinary shard databases.  A prepare is the branch's
  redo migration plus a :class:`~repro.wal.records.TxnPrepareRecord`
  (flushed) on that shard's own WAL -- no new log, no new codec.
- *The coordinator's* durable state is the decision log
  (:class:`DecisionLog`): a fsync'd append-only file of committed gids.
  Absence means abort -- that is the whole presumed-abort protocol.
  Gids carry a persisted incarnation epoch (``g<epoch>.<seq>``) so a
  restarted coordinator can never mint a gid that collides with a
  committed one from a prior life.
- *Recovery* is per-shard and independent: each shard replays its own WAL
  through the existing :class:`~repro.recovery.restart.RestartRecovery`,
  which resolves any prepared branch it finds against the decision log.
  Shards never consult each other, so N recoveries run in N processes
  and wall-clock drops near-linearly (``bench --sharded`` measures it).

:class:`ShardRouter` fronts the ``repro/serve`` request/response protocol
on top: one router instance is one client session, holding at most one
open (possibly multi-shard) transaction, with slot ids transparently
tagged with their shard.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field as dc_field

from repro.errors import (
    ConfigError,
    PartialDrainError,
    ShardError,
    ShardUnavailableError,
    SimulatedCrash,
    TwoPhaseCommitError,
)
from repro.faults.crashpoints import CrashPointRegistry
from repro.serve.protocol import Request, Response
from repro.shard.core import ShardCore
from repro.shard.partition import PartitionSpec, shard_capacity
from repro.shard.shard import LocalShard, ProcessShard, ShardCrashed
from repro.storage.database import DBConfig

DECISION_LOG_FILE = "2pc.decisions"
EPOCH_FILE = "2pc.epoch"


def _bump_epoch(dir_path: str) -> int:
    """Advance and persist the coordinator incarnation counter.

    Gids must be unique across coordinator restarts: the decision log
    durably remembers committed gids from prior incarnations, so a
    reused gid would let a crashed transaction's in-doubt branch resolve
    against a stale decision.  ``len(decisions)`` cannot seed a sequence
    either -- aborted gids are never written (presumed abort).  Each
    incarnation therefore claims a fresh epoch, fsync'd before any gid
    is handed out, and stamps it into every gid it generates.
    """
    path = os.path.join(dir_path, EPOCH_FILE)
    epoch = 0
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            text = handle.read().strip()
            if text:
                epoch = int(text)
    epoch += 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{epoch}\n")
        handle.flush()
        os.fsync(handle.fileno())
    return epoch


class DecisionLog:
    """The coordinator's durable commit decisions: one gid per line.

    Presumed abort needs exactly one durable bit per *committed* global
    transaction; aborted ones are never written.  ``append`` is
    write+flush+fsync, so by the time any participant is told to commit,
    a crash-and-recover coordinator still answers "commit" for that gid.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._committed: set[str] = set()
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                self._committed = {line.strip() for line in handle if line.strip()}
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, gid: str) -> None:
        self._handle.write(gid + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._committed.add(gid)

    def committed(self, gid: str) -> bool:
        return gid in self._committed

    def resolver(self):
        committed = frozenset(self._committed)
        return lambda gid: gid in committed

    def __len__(self) -> int:
        return len(self._committed)

    def close(self) -> None:
        self._handle.close()

    @staticmethod
    def load_committed(path: str) -> frozenset:
        if not os.path.exists(path):
            return frozenset()
        with open(path, encoding="utf-8") as handle:
            return frozenset(line.strip() for line in handle if line.strip())


@dataclass
class ShardedConfig:
    """Shape of a sharded database: partitioning plus per-shard DBConfig."""

    dir: str
    n_shards: int = 1
    #: ``"inproc"`` runs every shard on the caller's thread (deterministic;
    #: what the identity properties and crash-point tests use);
    #: ``"process"`` runs one worker process per shard.
    mode: str = "inproc"
    #: partition modulus: branch = key % branches (see PartitionSpec)
    branches: int = 2
    # ------------------------------------------- per-shard DBConfig knobs
    scheme: str = "data_codeword"
    scheme_params: dict = dc_field(default_factory=dict)
    page_size: int = 8192
    group_commit_size: int = 1
    update_batch: int = 1
    audit_mode: str = "full"
    full_sweep_every: int = 8
    quarantine: bool = False
    quarantine_repair: bool = False
    scheduler_mode: str = "auto"

    def shard_dir(self, shard_id: int) -> str:
        return os.path.join(self.dir, f"shard-{shard_id:02d}")

    def db_config(self, shard_id: int) -> DBConfig:
        return DBConfig(
            dir=self.shard_dir(shard_id),
            scheme=self.scheme,
            scheme_params=dict(self.scheme_params),
            page_size=self.page_size,
            group_commit_size=self.group_commit_size,
            update_batch=self.update_batch,
            audit_mode=self.audit_mode,
            full_sweep_every=self.full_sweep_every,
            quarantine=self.quarantine,
            quarantine_repair=self.quarantine_repair,
            scheduler_mode=self.scheduler_mode,
        )

    def partition(self) -> PartitionSpec:
        return PartitionSpec(branches=self.branches, n_shards=self.n_shards)


def _shard_table_defs(table_defs: list[tuple], n_shards: int) -> list[tuple]:
    """Global table defs -> per-shard defs with split capacities."""
    return [
        (name, schema, shard_capacity(capacity, n_shards), key_field)
        for name, schema, capacity, key_field in table_defs
    ]


class ShardedDatabase:
    """N protected stores behind one transaction router."""

    def __init__(
        self,
        config: ShardedConfig,
        shards: list,
        partition: PartitionSpec,
        decisions: DecisionLog,
        crashpoints: CrashPointRegistry,
    ) -> None:
        self.config = config
        self.shards = shards
        self.partition = partition
        self.decisions = decisions
        #: Router-side crash points (the ``twopc.pre_decide`` /
        #: ``after_decide`` / ``after_first_commit`` coordinator moments).
        self.crashpoints = crashpoints
        self._epoch = _bump_epoch(config.dir)
        self._next_gid = 1
        self._closed = False
        #: Supervision hooks, set by
        #: :meth:`~repro.shard.supervisor.ShardSupervisor.attach`.  When
        #: ``supervisor`` is None (the pre-supervision contract every
        #: existing test relies on) routed calls have no deadlines and a
        #: dead worker raises :class:`ShardCrashed` to the caller, who
        #: owns recovery.  Supervised, deadlines apply, crashes are
        #: reported for automatic restart, and callers get fail-fast
        #: retryable :class:`~repro.errors.ShardUnavailableError`.
        self.supervisor = None
        self.call_timeout_s: float | None = None
        self.prepare_timeout_s: float | None = None
        self.decide_retries: int = 0
        self.decide_backoff_base_s: float = 0.01
        self.decide_backoff_cap_s: float = 0.25
        #: Serializes commit decisions against restart-recovery snapshot
        #: reads (see :meth:`_fenced_decide`): a recovery snapshot taken
        #: under this lock either precedes a decision's incarnation fence
        #: (which then withholds the decision) or follows its append (and
        #: so includes the gid).
        self.decision_lock = threading.Lock()

    # ------------------------------------------------------ construction

    @classmethod
    def create(
        cls,
        config: ShardedConfig,
        table_defs: list[tuple],
        shard_crashpoints: list[CrashPointRegistry] | None = None,
    ) -> "ShardedDatabase":
        """Build N fresh shards.  ``table_defs`` are *global*
        ``(name, schema, capacity, key_field)`` tuples; each shard gets an
        even capacity split (exactly ``capacity`` when N=1)."""
        os.makedirs(config.dir, exist_ok=True)
        per_shard = _shard_table_defs(table_defs, config.n_shards)
        shards: list = []
        if config.mode == "inproc":
            for i in range(config.n_shards):
                registry = (
                    shard_crashpoints[i] if shard_crashpoints is not None else None
                )
                core = ShardCore.create(
                    config.db_config(i), per_shard, crashpoints=registry
                )
                shards.append(LocalShard(i, core))
        elif config.mode == "process":
            for i in range(config.n_shards):
                shards.append(ProcessShard(i, config.db_config(i), per_shard))
            for shard in shards:
                shard.wait_ready()
        else:
            raise ConfigError(f"unknown shard mode {config.mode!r}")
        decisions = DecisionLog(os.path.join(config.dir, DECISION_LOG_FILE))
        return cls(
            config, shards, config.partition(), decisions, CrashPointRegistry()
        )

    @classmethod
    def recover(
        cls,
        config: ShardedConfig,
        shard_crashpoints: list[CrashPointRegistry] | None = None,
    ) -> tuple["ShardedDatabase", list]:
        """Recover every shard; returns ``(router, per-shard reports)``.

        In process mode the N recoveries run concurrently inside the N
        fresh worker processes -- this is the shard-parallel restart the
        benchmark's recovery curve measures.  Each shard resolves its
        in-doubt 2PC branches against the shared decision log.
        """
        decision_path = os.path.join(config.dir, DECISION_LOG_FILE)
        committed = DecisionLog.load_committed(decision_path)
        shards: list = []
        reports: list = []
        if config.mode == "inproc":
            resolver = lambda gid: gid in committed  # noqa: E731
            for i in range(config.n_shards):
                registry = (
                    shard_crashpoints[i] if shard_crashpoints is not None else None
                )
                core, report = ShardCore.recover(
                    config.db_config(i),
                    crashpoints=registry,
                    in_doubt_resolver=resolver,
                )
                shards.append(LocalShard(i, core))
                reports.append(report)
        elif config.mode == "process":
            for i in range(config.n_shards):
                shards.append(
                    ProcessShard(
                        i,
                        config.db_config(i),
                        [],
                        recover=True,
                        committed_gids=committed,
                    )
                )
            for shard in shards:
                reports.append(shard.wait_ready()["recovery"])
        else:
            raise ConfigError(f"unknown shard mode {config.mode!r}")
        decisions = DecisionLog(decision_path)
        router = cls(
            config, shards, config.partition(), decisions, CrashPointRegistry()
        )
        return router, reports

    # ----------------------------------------------------------- routing

    def shard_for_op(self, op: tuple) -> int | None:
        """Which shard executes one workload op; None = unconstrained."""
        kind = op[0]
        if kind in ("add", "query", "update_key", "lookup"):
            return self.partition.shard_for_key(op[1], op[2])
        if kind == "insert":
            return self.partition.shard_for_row(op[1], op[2])
        if kind == "charge":
            return None
        raise ConfigError(f"op {kind!r} is not routable; use slot-tagged forms")

    def _split(self, ops: list) -> dict[int, list]:
        """Partition a transaction's ops by shard, preserving order.

        Unconstrained ops (meter charges) ride with the transaction's
        first routed shard so a single-branch transaction stays
        single-shard.
        """
        groups: dict[int, list] = {}
        unrouted: list = []
        first_shard: int | None = None
        for op in ops:
            sid = self.shard_for_op(op)
            if sid is None:
                if first_shard is None:
                    unrouted.append(op)
                else:
                    groups[first_shard].append(op)
                continue
            if sid not in groups:
                groups[sid] = []
            if first_shard is None:
                first_shard = sid
                groups[sid].extend(unrouted)
                unrouted.clear()
            groups[sid].append(op)
        if unrouted:
            groups.setdefault(0, []).extend(unrouted)
        return groups

    # ----------------------------------------------- supervised dispatch

    def shard_call(self, shard_id: int, cmd: tuple, timeout: float | None = None):
        """Route one command to one shard with supervision semantics.

        Unsupervised this is ``shards[sid].call(cmd)``: no deadline,
        worker death raises :class:`ShardCrashed`.  Supervised, a shard
        that is down/hung/mid-recovery fails fast with a retryable
        :class:`~repro.errors.ShardUnavailableError` instead of blocking
        on (or crashing into) a dead pipe: the crash is reported to the
        supervisor, which restarts and recovers the shard while the
        surviving shards keep serving.  ``timeout=None`` means "the
        supervisor's default call deadline".
        """
        sup = self.supervisor
        if sup is not None:
            sup.ensure_serving(shard_id)
        if timeout is None:
            timeout = self.call_timeout_s
        handle = self.shards[shard_id]
        try:
            # Only pass the deadline when one applies: tests wrap
            # ``handle.call`` with single-argument fakes, and the
            # unsupervised contract has no deadlines at all.
            if timeout is None:
                return handle.call(cmd)
            return handle.call(cmd, timeout=timeout)
        except (ShardCrashed, ShardUnavailableError) as exc:
            if sup is None:
                raise
            raise self._shard_down(shard_id, handle, exc) from exc

    def _shard_down(self, shard_id: int, handle, exc) -> ShardUnavailableError:
        """Report a dead/hung shard; return the fail-fast replacement error."""
        self.supervisor.report_crash(shard_id, handle, reason=str(exc))
        return ShardUnavailableError(shard_id, "recovering", detail=str(exc))

    # ------------------------------------------------------ transactions

    def submit_txn(self, ops: list) -> list:
        """Run one whole transaction; single-shard fast path or 2PC.

        A shard that died or is mid-recovery fails this *fast* under
        supervision (retryable :class:`ShardUnavailableError` from
        :meth:`shard_call`) rather than blocking on the worker pipe.
        """
        self._require_open()
        groups = self._split(ops)
        if len(groups) == 1:
            ((sid, shard_ops),) = groups.items()
            return self.shard_call(sid, ("txn", shard_ops))
        self._commit_two_phase(groups)
        return []

    def submit_txn_nowait(self, ops: list) -> None:
        """Pipelined single-shard submission (the throughput fast path).

        Cross-shard transactions need votes before a decision, so they
        always run synchronously via :meth:`submit_txn`.
        """
        self._require_open()
        groups = self._split(ops)
        if len(groups) != 1:
            self.submit_txn(ops)
            return
        ((sid, shard_ops),) = groups.items()
        if self.supervisor is not None:
            self.supervisor.ensure_serving(sid)
        try:
            self.shards[sid].call_nowait(("txn", shard_ops))
        except (ShardCrashed, ShardUnavailableError) as exc:
            if self.supervisor is None:
                raise
            raise self._shard_down(sid, self.shards[sid], exc) from exc

    def drain(self) -> list:
        """Collect pipelined answers.  Supervised, a shard found dead or
        hung mid-drain loses that shard's un-acked backlog (those
        transactions are *indeterminate* until its restart recovery
        settles them): the shard is handed to the supervisor and a
        retryable :class:`~repro.errors.PartialDrainError` carries the
        surviving shards' answers plus a per-shard count of the lost
        submissions, so the caller can tell exactly which of its
        ``submit_txn_nowait`` calls have no answer.  Unsupervised the
        crash propagates as before."""
        results: list = []
        lost: dict[int, int] = {}
        for shard in self.shards:
            backlog = shard.pending
            try:
                if self.call_timeout_s is None:
                    results.extend(shard.drain())
                else:
                    results.extend(shard.drain(timeout=self.call_timeout_s))
            except (ShardCrashed, ShardUnavailableError) as exc:
                if self.supervisor is None:
                    raise
                self._shard_down(shard.shard_id, shard, exc)
                lost[shard.shard_id] = backlog
        if lost:
            raise PartialDrainError(results, lost)
        return results

    def _new_gid(self) -> str:
        """A gid unique across all coordinator incarnations (epoch.seq)."""
        gid = f"g{self._epoch}.{self._next_gid}"
        self._next_gid += 1
        return gid

    def _prepare_token(self, shard_id: int) -> int:
        """Capture the shard's incarnation right before its prepare."""
        if self.supervisor is None:
            return 0
        return self.supervisor.prepare_token(shard_id)

    def _fenced_decide(
        self, gid: str, prepared: list[int], tokens: dict[int, int]
    ) -> list[int] | None:
        """Durably decide commit, fenced on participant incarnations.

        A restarting shard resolves its in-doubt branches against a
        decision-log snapshot; if that snapshot was read *before* this
        append, the recovered shard presumed-aborted the branch and a
        commit decision now would be acked to the caller while one
        branch is already rolled back -- an atomicity violation.  The
        fence closes the race: snapshot reads
        (:meth:`~repro.shard.supervisor.ShardSupervisor._recover_handle`)
        and this check+append are serialized by ``decision_lock``, so
        either every prepared participant is still its prepare-time
        incarnation when the decision lands (and any later snapshot
        includes the gid), or the decision is withheld and presumed
        abort rolls every branch back.

        Returns ``None`` when the decision was appended, else the
        sorted stale shard ids (restarted or no longer serving since
        their prepare); the caller aborts.
        """
        with self.decision_lock:
            sup = self.supervisor
            if sup is not None:
                stale = sorted(
                    sid
                    for sid in prepared
                    if not sup.can_decide(sid, tokens.get(sid, -1))
                )
                if stale:
                    return stale
            self.decisions.append(gid)
            return None

    def _fence_abort(
        self, gid: str, prepared: list[int], stale: list[int]
    ) -> TwoPhaseCommitError:
        """Presumed abort after a fence rejection: roll back the live
        branches (the stale shards' recoveries already did) and build
        the retryable outcome error."""
        self._abort_prepared(gid, prepared)
        return TwoPhaseCommitError(
            f"transaction {gid} aborted: shard(s) {stale} restarted "
            "between prepare and the commit decision, so their recovery "
            "resolved the branch against a decision-log snapshot that "
            "predates this decision (incarnation fence)",
            gid=gid,
        )

    def _abort_prepared(self, gid: str, prepared: list[int]) -> None:
        """Send abort to every prepared branch, best-effort per shard.

        One failing shard must not skip the rest: each remaining branch
        holds exclusive locks until aborted.  Presumed abort makes a
        swallowed failure safe -- that shard's restart recovery rolls
        the branch back -- but live traffic on it blocks until then, so
        we still try every shard.  Crash simulations propagate: the
        whole node is dying and recovery handles everything.  Supervised,
        a dead shard is reported (its restart rolls the branch back) and
        the abort fan-out continues.
        """
        for sid in prepared:
            try:
                self.shard_call(sid, ("decide", gid, False))
            except (SimulatedCrash, ShardCrashed):
                raise
            except Exception:
                pass

    def _deliver_decide(self, gid: str, sid: int, commit: bool):
        """One decide delivery with capped-exponential retry.

        Returns ``None`` on success or the final failure.  Retries only
        make sense for transient non-crash failures (a flaky transport
        wrapper, a momentarily saturated worker): a dead shard
        (:class:`ShardCrashed` unsupervised, converted to
        :class:`ShardUnavailableError` supervised) will not answer until
        its restart recovery runs, so hammering it is pointless -- the
        supervised path queues the delivery with the supervisor instead.
        """
        last: Exception | None = None
        for attempt in range(max(0, self.decide_retries) + 1):
            if attempt:
                time.sleep(
                    min(
                        self.decide_backoff_cap_s,
                        self.decide_backoff_base_s * (2 ** (attempt - 1)),
                    )
                )
            try:
                self.shard_call(sid, ("decide", gid, commit))
                return None
            except SimulatedCrash:
                raise
            except ShardCrashed:
                raise  # unsupervised process mode: the caller recovers
            except ShardUnavailableError as exc:
                return exc  # supervisor already owns this shard's repair
            except Exception as exc:
                last = exc
        return last

    def _commit_prepared(self, gid: str, prepared: list[int]) -> None:
        """Send commit to every prepared branch after the decision is
        durable.  A non-crash failure on one shard must not strand the
        later participants holding locks, so every shard is attempted;
        failures are collected and surfaced once -- the transaction IS
        committed (the decision log says so), the failed branches just
        wait for that shard's restart recovery to complete them.

        Supervised, an undelivered decision is *not* an error at all:
        it is queued with the supervisor, whose repair loop (or the
        shard's restart recovery against the decision log) completes the
        branch, and the caller sees a committed transaction -- the PR-9
        "committed but undelivered" terminal condition becomes a
        transient, self-healing one.
        """
        undelivered: list[tuple[int, Exception]] = []
        first = True
        for sid in prepared:
            failure = self._deliver_decide(gid, sid, True)
            if failure is not None:
                undelivered.append((sid, failure))
            if first:
                self.crashpoints.reach("twopc.after_first_commit")
                first = False
        if not undelivered:
            return
        if self.supervisor is not None:
            self.supervisor.queue_decision_delivery(
                gid, [sid for sid, _ in undelivered]
            )
            return
        detail = "; ".join(f"shard {sid}: {exc}" for sid, exc in undelivered)
        raise TwoPhaseCommitError(
            f"transaction {gid} is committed, but delivering the "
            f"decision failed on {detail}; restart recovery will "
            f"complete those branches from the decision log",
            gid=gid,
            committed=True,
            undelivered=tuple(sid for sid, _ in undelivered),
        )

    def _commit_two_phase(self, groups: dict[int, list]) -> None:
        """Presumed-abort 2PC over ``groups`` (shard id -> ops).

        Prepares carry a deadline under supervision
        (``prepare_timeout_s``): a participant that does not vote in
        time is treated exactly like a vote of *no* -- presumed abort
        rolls back the branches that did prepare, now or at the slow
        shard's restart.  That is what makes a hung worker a transient
        condition instead of a wedged coordinator.
        """
        gid = self._new_gid()
        prepared: list[int] = []
        tokens: dict[int, int] = {}
        failure: BaseException | None = None
        for sid in sorted(groups):
            tokens[sid] = self._prepare_token(sid)
            try:
                self.shard_call(
                    sid,
                    ("txn_prepare", gid, groups[sid]),
                    timeout=self.prepare_timeout_s or self.call_timeout_s,
                )
                prepared.append(sid)
            except SimulatedCrash:
                raise  # inproc crash simulation: whole process dies here
            except ShardCrashed:
                raise  # process mode: the worker is gone; recover
            except BaseException as exc:
                failure = exc
                break
        if failure is not None:
            # Presumed abort: nothing durable names this gid; roll back
            # the branches that did prepare and surface the vote-no cause.
            self._abort_prepared(gid, prepared)
            raise TwoPhaseCommitError(
                f"transaction {gid} aborted: {failure}"
            ) from failure
        self.crashpoints.reach("twopc.pre_decide")
        stale = self._fenced_decide(gid, prepared, tokens)
        if stale is not None:
            raise self._fence_abort(gid, prepared, stale)
        self.crashpoints.reach("twopc.after_decide")
        self._commit_prepared(gid, prepared)

    def commit_session(self, open_txns: dict[int, int]) -> None:
        """Commit a session's open per-shard transactions (serve front).

        ``open_txns`` maps shard id -> open transaction id.  One shard
        commits locally; several run the same presumed-abort 2PC as
        :meth:`_commit_two_phase`, but over already-open transactions.
        """
        self._require_open()
        if not open_txns:
            return
        if len(open_txns) == 1:
            ((sid, txn_id),) = open_txns.items()
            self.shard_call(sid, ("commit", txn_id))
            return
        gid = self._new_gid()
        prepared: list[int] = []
        tokens: dict[int, int] = {}
        failure: BaseException | None = None
        for sid in sorted(open_txns):
            tokens[sid] = self._prepare_token(sid)
            try:
                self.shard_call(
                    sid,
                    ("prepare", open_txns[sid], gid),
                    timeout=self.prepare_timeout_s or self.call_timeout_s,
                )
                prepared.append(sid)
            except (SimulatedCrash, ShardCrashed):
                raise
            except BaseException as exc:
                failure = exc
                break
        if failure is not None:
            self._abort_prepared(gid, prepared)
            for sid in sorted(open_txns):
                if sid not in prepared:
                    try:
                        self.shard_call(sid, ("abort", open_txns[sid]))
                    except (SimulatedCrash, ShardCrashed):
                        raise
                    except Exception:
                        pass
            raise TwoPhaseCommitError(
                f"transaction {gid} aborted: {failure}"
            ) from failure
        self.crashpoints.reach("twopc.pre_decide")
        stale = self._fenced_decide(gid, prepared, tokens)
        if stale is not None:
            raise self._fence_abort(gid, prepared, stale)
        self.crashpoints.reach("twopc.after_decide")
        self._commit_prepared(gid, prepared)

    # -------------------------------------------------- admin / queries

    def call_all(self, cmd: tuple) -> list:
        return [shard.call(cmd) for shard in self.shards]

    def checkpoint_all(self) -> list:
        return self.call_all(("checkpoint",))

    def audit_all(self) -> list:
        return self.call_all(("audit",))

    def content_digest(self) -> dict:
        """Order-independent logical digest, merged across shards."""
        merged: dict[str, int] = {}
        for digests in self.call_all(("content_digest",)):
            for table, digest in digests.items():
                merged[table] = merged.get(table, 0) ^ digest
        return merged

    def sum_field(self, table: str, field_name: str) -> int:
        return sum(self.call_all(("sum_field", table, field_name)))

    def row_count(self, table: str) -> int:
        return sum(self.call_all(("row_count", table)))

    def meters(self) -> list[dict]:
        return self.call_all(("meter",))

    def quarantined(self) -> dict[int, tuple]:
        return {
            sid: regions
            for sid, regions in enumerate(self.call_all(("quarantined",)))
        }

    def repair_all(self) -> int:
        return sum(self.call_all(("repair",)))

    def wild_write(self, table: str, key: int, offset: int, data: bytes) -> int:
        """Scribble on one record, bypassing the prescribed interface."""
        sid = self.partition.shard_for_key(table, key)
        return self.shards[sid].call(("wild_write", table, key, offset, data))

    # ---------------------------------------------------------- lifecycle

    def crash(self) -> None:
        """Simulate failure of the whole node: every shard dies."""
        for shard in self.shards:
            if isinstance(shard, LocalShard):
                try:
                    shard.crash()
                except Exception:
                    pass
            else:
                shard.terminate()
        self.decisions.close()
        self._closed = True

    def crash_shard(self, shard_id: int) -> None:
        """Kill one shard only; the rest keep serving."""
        shard = self.shards[shard_id]
        if isinstance(shard, LocalShard):
            shard.crash()
        else:
            shard.terminate()

    def close(self) -> None:
        if self._closed:
            return
        for shard in self.shards:
            try:
                shard.close()
            except Exception:
                pass
        self.decisions.close()
        self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise ShardError("sharded database is closed")


class ShardRouter:
    """One client session speaking the ``repro/serve`` protocol.

    Slot ids crossing the protocol boundary are shard-tagged
    (``global_slot = local_slot * n_shards + shard_id``) so ``read`` /
    ``update`` / ``delete`` by slot route without a lookup.  ``commit``
    commits locally when the transaction touched one shard and runs 2PC
    when it touched several.
    """

    def __init__(self, db: ShardedDatabase) -> None:
        self.db = db
        self._open_txns: dict[int, int] = {}
        self._in_txn = False

    # ------------------------------------------------------------- slots

    def _encode_slot(self, shard_id: int, slot: int) -> int:
        return slot * self.db.config.n_shards + shard_id

    def _decode_slot(self, global_slot: int) -> tuple[int, int]:
        n = self.db.config.n_shards
        return global_slot % n, global_slot // n

    # ---------------------------------------------------------- protocol

    def handle(self, request: Request) -> Response:
        try:
            value = self._dispatch(request)
            return Response(True, request.op, request.request_id, value)
        except (SimulatedCrash, ShardCrashed):
            raise
        except BaseException as exc:
            self._rollback()
            return Response(
                False,
                request.op,
                request.request_id,
                None,
                error=type(exc).__name__,
                detail=str(exc),
            )

    def _dispatch(self, request: Request):
        op = request.op
        if op == "begin":
            if self._in_txn:
                raise ShardError("transaction already open")
            self._in_txn = True
            self._open_txns = {}
            return 0
        if op == "commit":
            self._require_txn()
            txns, self._open_txns = self._open_txns, {}
            self._in_txn = False
            self.db.commit_session(txns)
            return 0
        if op == "abort":
            self._require_txn()
            self._rollback()
            return 0
        self._require_txn()
        if op == "insert":
            sid = self.db.partition.shard_for_row(request.table, request.values)
            slot = self._shard_op(sid, ("insert", request.table, request.values))
            return self._encode_slot(sid, slot)
        if op == "lookup":
            sid = self.db.partition.shard_for_key(request.table, request.key)
            slot = self._shard_op(sid, ("lookup", request.table, request.key))
            return None if slot is None else self._encode_slot(sid, slot)
        if op == "query":
            sid = self.db.partition.shard_for_key(request.table, request.key)
            return self._shard_op(sid, ("query", request.table, request.key))
        if op == "read":
            sid, slot = self._decode_slot(request.slot)
            return self._shard_op(sid, ("read_slot", request.table, slot))
        if op == "update":
            sid, slot = self._decode_slot(request.slot)
            self._shard_op(sid, ("update_slot", request.table, slot, request.values))
            return request.slot
        if op == "delete":
            sid, slot = self._decode_slot(request.slot)
            self._shard_op(sid, ("delete_slot", request.table, slot))
            return request.slot
        raise ShardError(f"unknown op {op!r}")

    def _shard_op(self, shard_id: int, op: tuple):
        txn_id = self._open_txns.get(shard_id)
        if txn_id is None:
            txn_id = self.db.shard_call(shard_id, ("begin",))
            self._open_txns[shard_id] = txn_id
            self._on_branch_open(shard_id, txn_id)
        return self.db.shard_call(shard_id, ("op", txn_id, op))

    def _on_branch_open(self, shard_id: int, txn_id: int) -> None:
        """Hook: a new per-shard branch opened (overridden by the serve
        layer to register the branch for deadlock detection)."""

    def _require_txn(self) -> None:
        if not self._in_txn:
            raise ShardError("no open transaction; send begin first")

    def _rollback(self) -> None:
        txns, self._open_txns = self._open_txns, {}
        self._in_txn = False
        for sid, txn_id in txns.items():
            try:
                self.db.shard_call(sid, ("abort", txn_id))
            except Exception:
                pass
