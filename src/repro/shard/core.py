"""One shard's command interpreter: a Database driven by picklable tuples.

The same interpreter backs both execution modes.  In-process mode calls
:meth:`ShardCore.execute` directly (deterministic, for tests and identity
properties); process mode runs it inside a ``multiprocessing`` worker with
commands arriving over a pipe (:mod:`repro.shard.worker`).  Commands are
plain tuples -- nothing that crosses the boundary holds a database object
or a closure, so every command pickles.

Transaction state is explicit: ``("begin",)`` returns a transaction id and
subsequent ``("op", txn_id, ...)`` commands name it, which lets the
serve-protocol router hold transactions open across requests.  The
``("txn", ops)`` form is the one-round-trip fast path for whole
transactions (what the throughput benchmark uses); ``("txn_prepare", gid,
ops)`` is its 2PC twin, ending in a prepare vote instead of a commit.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.codeword import fold_words
from repro.errors import ConfigError, ReproError, SimulatedCrash
from repro.faults.crashpoints import CrashPointRegistry
from repro.storage.database import Database, DBConfig
from repro.txn.transaction import TxnStatus


class ShardCore:
    """Interprets shard commands against one protected store."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._txns: dict[int, object] = {}
        self._prepared: dict[str, object] = {}

    # ------------------------------------------------------ construction

    @classmethod
    def create(
        cls,
        config: DBConfig,
        table_defs: list[tuple],
        crashpoints: CrashPointRegistry | None = None,
    ) -> "ShardCore":
        """Build and start a fresh shard database."""
        db = Database(config, crashpoints=crashpoints)
        for name, schema, capacity, key_field in table_defs:
            db.create_table(name, schema, capacity, key_field=key_field)
        db.start()
        return cls(db)

    @classmethod
    def recover(
        cls,
        config: DBConfig,
        crashpoints: CrashPointRegistry | None = None,
        in_doubt_resolver: Callable[[str], bool] | None = None,
    ) -> tuple["ShardCore", object]:
        """Recover a shard from its directory; returns ``(core, report)``.

        Prepared 2PC branches found on the shard's log are resolved
        against ``in_doubt_resolver`` (the router passes its decision
        log); recovery itself commits or rolls them back, so the core
        starts with no prepared transactions.
        """
        db, report = Database.recover(
            config, crashpoints=crashpoints, in_doubt_resolver=in_doubt_resolver
        )
        return cls(db), report

    # ---------------------------------------------------------- dispatch

    def execute(self, cmd: tuple):
        """Run one command tuple; returns a picklable result."""
        kind = cmd[0]
        handler = getattr(self, f"_cmd_{kind}", None)
        if handler is None:
            raise ConfigError(f"unknown shard command {kind!r}")
        return handler(*cmd[1:])

    # ------------------------------------------------- transaction forms

    def _cmd_begin(self) -> int:
        txn = self.db.begin()
        self._txns[txn.txn_id] = txn
        return txn.txn_id

    def _cmd_op(self, txn_id: int, op: tuple):
        txn = self._txn(txn_id)
        return self._apply(txn, op)

    def _cmd_commit(self, txn_id: int) -> int:
        txn = self._txns.pop(txn_id, None)
        if txn is None:
            raise ConfigError(f"no open transaction {txn_id}")
        self.db.commit(txn)
        return txn_id

    def _cmd_abort(self, txn_id: int) -> int:
        txn = self._txns.pop(txn_id, None)
        if txn is None:
            raise ConfigError(f"no open transaction {txn_id}")
        self.db.abort(txn)
        return txn_id

    def _cmd_prepare(self, txn_id: int, gid: str) -> str:
        txn = self._txns.pop(txn_id, None)
        if txn is None:
            raise ConfigError(f"no open transaction {txn_id}")
        try:
            self.db.prepare(txn, gid)
        except SimulatedCrash:
            raise
        except BaseException:
            # A failed prepare must not orphan the branch: once popped
            # from _txns it is reachable by neither ("abort", txn_id)
            # nor ("decide", gid, ...), and an ACTIVE txn left behind
            # holds its exclusive locks until restart.
            if txn.status is TxnStatus.ACTIVE:
                self.db.abort(txn)
            raise
        self._prepared[gid] = txn
        return "prepared"

    def _cmd_decide(self, gid: str, commit: bool) -> str:
        """Finish a prepared branch.  Unknown gids are reported, not an
        error: after a crash, restart recovery already resolved them."""
        txn = self._prepared.pop(gid, None)
        if txn is None:
            return "unknown"
        if commit:
            self.db.commit_prepared(txn)
            return "committed"
        self.db.abort_prepared(txn)
        return "aborted"

    def _cmd_txn(self, ops: list) -> list:
        """One whole transaction in one round trip."""
        txn = self.db.begin()
        try:
            results = [self._apply(txn, op) for op in ops]
        except SimulatedCrash:
            raise  # a crash writes nothing more; Database.crash follows
        except BaseException:
            self.db.abort(txn)
            raise
        self.db.commit(txn)
        return results

    def _cmd_txn_prepare(self, gid: str, ops: list) -> list:
        """A 2PC participant branch in one round trip: work, then vote."""
        txn = self.db.begin()
        try:
            results = [self._apply(txn, op) for op in ops]
            self.db.prepare(txn, gid)
        except SimulatedCrash:
            raise
        except BaseException:
            if txn.status is TxnStatus.ACTIVE:
                self.db.abort(txn)
            raise
        self._prepared[gid] = txn
        return results

    def _txn(self, txn_id: int):
        txn = self._txns.get(txn_id)
        if txn is None:
            raise ConfigError(f"no open transaction {txn_id}")
        return txn

    # ----------------------------------------------------- workload ops

    def _apply(self, txn, op: tuple):
        kind = op[0]
        if kind == "add":
            _, table_name, key, field_name, delta = op
            table = self.db.table(table_name)
            slot = table.lookup(txn, key)
            if slot is None:
                raise ReproError(f"{table_name} key {key} not found")
            table.update(txn, slot, {field_name: lambda cur: cur + delta})
            return None
        if kind == "insert":
            _, table_name, values = op
            return self.db.table(table_name).insert(txn, values)
        if kind == "query":
            _, table_name, key = op
            table = self.db.table(table_name)
            slot = table.lookup(txn, key)
            return None if slot is None else table.read(txn, slot)
        if kind == "update_key":
            _, table_name, key, values = op
            table = self.db.table(table_name)
            slot = table.lookup(txn, key)
            if slot is None:
                raise ReproError(f"{table_name} key {key} not found")
            table.update(txn, slot, values)
            return slot
        if kind == "read_slot":
            _, table_name, slot = op
            return self.db.table(table_name).read(txn, slot)
        if kind == "update_slot":
            _, table_name, slot, values = op
            self.db.table(table_name).update(txn, slot, values)
            return slot
        if kind == "delete_slot":
            _, table_name, slot = op
            self.db.table(table_name).delete(txn, slot)
            return slot
        if kind == "lookup":
            _, table_name, key = op
            return self.db.table(table_name).lookup(txn, key)
        if kind == "charge":
            self.db.meter.charge(op[1])
            return None
        raise ConfigError(f"unknown workload op {kind!r}")

    # -------------------------------------------------- admin / queries

    def _cmd_checkpoint(self) -> bool:
        return bool(self.db.checkpoint().certified)

    def _cmd_audit(self) -> tuple:
        """Full audit; returns ``(clean, corrupt_regions, byte_ranges)``.

        The byte ranges let a parent-side campaign score detection
        against injector ground truth without reaching into the shard.
        """
        report = self.db.audit()
        return (
            report.clean,
            tuple(report.corrupt_regions),
            tuple(report.corrupt_byte_ranges),
        )

    def _cmd_flush(self) -> None:
        self.db.manager.flush_commits()

    def _cmd_meter(self) -> dict:
        return self.db.meter.snapshot()

    def _cmd_clock(self) -> int:
        """The shard's virtual clock (ns) -- the Table 2 measurement
        protocol, per shard.  Shards tick independently, so the virtual
        elapsed time of a sharded run is the *max* across shards."""
        return self.db.clock.now_ns

    def _cmd_snapshot(self) -> dict:
        return self.db.memory.snapshot_segments()

    def _cmd_content_digest(self) -> dict:
        """Order-independent per-table digest of the live logical content.

        XOR of ``fold_words(record_bytes)`` over every allocated slot:
        equal across any sharding of the same rows (XOR is commutative),
        which is what the reshard-invariance property checks.
        """
        digests: dict[str, int] = {}
        txn = self.db.begin()
        try:
            for name, table in self.db.tables.items():
                acc = 0
                for slot in table.scan_slots(txn):
                    acc ^= fold_words(table.read_bytes(txn, slot))
                digests[name] = acc
        finally:
            self.db.commit(txn)
        return digests

    def _cmd_sum_field(self, table_name: str, field_name: str) -> int:
        total = 0
        txn = self.db.begin()
        try:
            table = self.db.table(table_name)
            for slot in table.scan_slots(txn):
                total += table.read(txn, slot)[field_name]
        finally:
            self.db.commit(txn)
        return total

    def _cmd_row_count(self, table_name: str) -> int:
        txn = self.db.begin()
        try:
            return self.db.table(table_name).row_count(txn)
        finally:
            self.db.commit(txn)

    def _cmd_quarantined(self) -> tuple:
        return tuple(self.db.quarantined_regions())

    def _cmd_repair(self) -> int:
        return self.db.repair_quarantined()

    def _cmd_wild_write(self, table_name: str, key: int, offset: int, data: bytes):
        """A wild write: scribble on a record through ``poke``, bypassing
        the prescribed interface -- the fault the codewords exist to catch."""
        txn = self.db.begin()
        table = self.db.table(table_name)
        slot = table.lookup(txn, key)
        self.db.commit(txn)
        if slot is None:
            raise ReproError(f"{table_name} key {key} not found")
        address = table.record_address(slot) + offset
        self.db.memory.poke(address, data)
        return address

    def _cmd_committed_count(self) -> int:
        return self.db.manager.committed_count

    def _cmd_status(self) -> str:
        return self.db.status()

    def _cmd_ping(self) -> str:
        return "pong"

    def _cmd_hang(self, seconds: float) -> str:
        """Fault injection: stall the shard's command loop.

        In process mode the worker sleeps on its single command thread,
        so the shard stops answering -- the deterministic stand-in for
        an infinite loop or a lost thread, which the supervisor must
        detect by heartbeat timeout rather than by process death."""
        time.sleep(seconds)
        return "woke"

    def _cmd_crash(self) -> None:
        self.db.crash()

    def _cmd_close(self) -> None:
        self.db.close()
