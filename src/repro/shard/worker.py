"""The per-core shard worker: a ShardCore behind a multiprocessing pipe.

One worker process owns one shard outright -- image, codeword table,
system log, checkpointer, scheduler threads -- so N shards fold codewords
and flush logs on N cores with no shared GIL.  The protocol over the pipe
is deliberately dumb: the parent sends command tuples
(:meth:`~repro.shard.core.ShardCore.execute` commands), the worker answers
``("ok", result)`` or ``("err", exc_class_name, message)``.  Errors are
reconstructed parent-side by :class:`~repro.shard.shard.ProcessShard`;
the pipe stays FIFO, so the parent may pipeline many commands before
reading any answer (how the throughput benchmark keeps every worker busy).

Startup performs creation *or recovery* inside the worker.  Recovery
inside the worker is the point of shard-parallel restart: the parent
spawns N workers with ``recover=True`` and the N redo/undo scans run
concurrently in separate processes; each worker reports its recovery
summary in its ready message.
"""

from __future__ import annotations

import time
import traceback

from repro.errors import SimulatedCrash
from repro.shard.core import ShardCore


def shard_worker_main(
    conn,
    config,
    table_defs,
    recover: bool,
    committed_gids: frozenset,
) -> None:
    """Entry point of one shard worker process."""
    try:
        if recover:
            wall_began = time.perf_counter()
            cpu_began = time.process_time()
            core, report = ShardCore.recover(
                config,
                in_doubt_resolver=lambda gid: gid in committed_gids,
            )
            summary = {
                "mode": report.mode,
                "redo_applied": report.redo_applied,
                "rolled_back": list(report.rolled_back),
                "resolved_committed": list(report.resolved_committed),
                "resolved_aborted": list(report.resolved_aborted),
                # Both clocks: on a machine with >= N cores they agree;
                # on fewer cores the OS timeslices the N workers and the
                # wall number smears, while per-worker CPU time still
                # measures each shard's true share of the replay work
                # (max across workers = the N-core critical path).
                "recovery_wall_s": time.perf_counter() - wall_began,
                "recovery_cpu_s": time.process_time() - cpu_began,
            }
        else:
            core = ShardCore.create(config, table_defs)
            summary = None
        conn.send(("ok", {"ready": True, "recovery": summary}))
    except BaseException as exc:  # startup failure: report, then exit
        conn.send(("err", type(exc).__name__, f"{exc}\n{traceback.format_exc()}"))
        conn.close()
        return

    running = True
    while running:
        try:
            cmd = conn.recv()
        except EOFError:
            break
        if cmd[0] == "exit":
            try:
                core.db.close()
            except Exception:
                pass
            conn.send(("ok", "bye"))
            break
        try:
            result = core.execute(cmd)
            conn.send(("ok", result))
        except SimulatedCrash as exc:
            # A simulated crash inside a worker kills the whole worker,
            # exactly like a real one: close the log handle and exit; the
            # parent recovers the shard in a fresh process.
            try:
                core.db.crash()
            except Exception:
                pass
            conn.send(("crash", exc.point, exc.hit))
            running = False
        except BaseException as exc:
            conn.send(("err", type(exc).__name__, str(exc)))
    conn.close()
