"""Shard handles: one synchronous, one process-backed with pipelining.

Both expose the same three calls -- ``call`` (one command, one answer),
``call_nowait``/``drain`` (pipelined) -- so the router and the benchmarks
are mode-blind.  :class:`LocalShard` runs commands inline (deterministic;
identity properties compare it byte-for-byte against the unsharded
database).  :class:`ProcessShard` sends them to a worker process; because
the pipe is FIFO, ``call_nowait`` may queue an arbitrary backlog and
``drain`` collects answers in order, which keeps every worker core busy
while the parent does nothing but pickle tuples.

Failure semantics (what the supervisor builds on):

* every handle serializes its calls through an internal ``mutex`` --
  concurrent serving sessions share one pipe, and a FIFO pipe cannot
  interleave request/response pairs;
* ``call`` takes an optional ``timeout``; a worker that does not answer
  in time is presumed *hung* and the handle is **poisoned** (a late
  reply would desynchronize the FIFO), raising
  :class:`~repro.errors.ShardTimeoutError` now and
  :class:`ShardCrashed` for every later call until the supervisor
  replaces the handle with a recovered one;
* a broken/EOF'd pipe (the worker died) raises :class:`ShardCrashed`
  instead of leaking raw OS errors;
* ``is_alive()`` / ``probe(timeout)`` are the heartbeat hooks: cheap
  liveness first (process poll, poison flag), then an optional ping
  round trip bounded by ``timeout``.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time

import repro.errors as errors_mod
from repro.errors import (
    ReproError,
    ShardError,
    ShardTimeoutError,
    SimulatedCrash,
)
from repro.shard.core import ShardCore
from repro.shard.worker import shard_worker_main


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ShardCrashed(ShardError):
    """The worker died (simulated crash, kill, or lost pipe); recover it."""

    def __init__(self, shard_id: int, point: str, hit: int) -> None:
        super().__init__(f"shard {shard_id} crashed at {point} (hit {hit})")
        self.shard_id = shard_id
        self.point = point
        self.hit = hit


class LocalShard:
    """In-process shard: commands run inline on the caller's thread."""

    def __init__(self, shard_id: int, core: ShardCore) -> None:
        self.shard_id = shard_id
        self.core = core
        self._pending: list = []
        self._crashed = False
        self.mutex = threading.RLock()

    def call(self, cmd: tuple, timeout: float | None = None):
        # Inline execution cannot hang on a pipe, so ``timeout`` is
        # accepted for interface parity and ignored.
        with self.mutex:
            self._require_live()
            return self.core.execute(cmd)

    def call_nowait(self, cmd: tuple) -> None:
        # Inline execution keeps deterministic ordering: the command runs
        # now; only the answer is deferred to drain().
        with self.mutex:
            self._require_live()
            self._pending.append(self.core.execute(cmd))

    def drain(self, timeout: float | None = None) -> list:
        with self.mutex:
            results, self._pending = self._pending, []
            return results

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _require_live(self) -> None:
        if self._crashed:
            raise ShardCrashed(self.shard_id, "crashed", 0)

    def is_alive(self) -> bool:
        return not self._crashed

    def probe(self, timeout: float | None = None) -> bool:
        """Heartbeat: inline shards are alive unless crashed."""
        return not self._crashed

    def close(self) -> None:
        if not self._crashed:
            self.core.db.close()

    def crash(self) -> None:
        """Kill this shard only: later calls raise :class:`ShardCrashed`
        (the deterministic twin of a dead worker process)."""
        self._crashed = True
        self.core.db.crash()

    def terminate(self) -> None:
        """Interface parity with :class:`ProcessShard` (hard kill)."""
        if not self._crashed:
            self.crash()


class ProcessShard:
    """A shard behind a worker process and a FIFO pipe."""

    def __init__(
        self,
        shard_id: int,
        config,
        table_defs,
        recover: bool = False,
        committed_gids: frozenset = frozenset(),
    ) -> None:
        self.shard_id = shard_id
        ctx = _mp_context()
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, config, table_defs, recover, frozenset(committed_gids)),
            daemon=True,
            name=f"shard-{shard_id}",
        )
        self._proc.start()
        child_conn.close()
        self._outstanding = 0
        #: Replies drained early by an intervening ``call`` (the pipe is
        #: FIFO, so a synchronous call must consume the pipelined
        #: backlog's answers first); handed out by the next ``drain``.
        self._parked: list = []
        self._ready = None  # set by wait_ready
        self._poisoned = False
        #: When a probe found a pipelined backlog with no reply ready,
        #: the monotonic time it first saw that; a backlog that makes no
        #: progress for longer than the probe timeout is a hung worker.
        self._stall_since: float | None = None
        self.mutex = threading.RLock()

    def wait_ready(self, timeout: float | None = None) -> dict:
        """Block until the worker finishes creation/recovery."""
        if self._ready is None:
            self._ready = self._decode(self._recv(timeout))
        return self._ready

    def call(self, cmd: tuple, timeout: float | None = None):
        with self.mutex:
            self.wait_ready()
            self._require_usable()
            if self._outstanding:
                # FIFO pipe: the backlog's answers arrive before ours
                # would.  Consume them now (parked for the next drain)
                # or this call would read somebody else's reply.
                self._drain_backlog(timeout)
            try:
                self._conn.send(cmd)
            except (BrokenPipeError, EOFError, OSError):
                self._mark_dead()
            return self._decode(self._recv(timeout))

    def call_nowait(self, cmd: tuple) -> None:
        with self.mutex:
            self.wait_ready()
            self._require_usable()
            try:
                self._conn.send(cmd)
            except (BrokenPipeError, EOFError, OSError):
                self._mark_dead()
            self._outstanding += 1

    def drain(self, timeout: float | None = None) -> list:
        with self.mutex:
            self._drain_backlog(timeout)
            results, self._parked = self._parked, []
            return results

    def _drain_backlog(self, timeout: float | None) -> None:
        while self._outstanding:
            self._parked.append(self._decode(self._recv(timeout)))
            self._outstanding -= 1
        self._stall_since = None

    @property
    def pending(self) -> int:
        return self._outstanding

    # --------------------------------------------------------- liveness

    def is_alive(self) -> bool:
        return self._proc.is_alive() and not self._poisoned

    def probe(self, timeout: float | None = None) -> bool:
        """Heartbeat: cheap liveness, then a bounded ping round trip.

        A shard busy with another caller's command (mutex held) is
        *alive* -- it is making progress, not hanging -- so the probe
        never blocks behind in-flight work.  A pipelined backlog cannot
        be pinged (the FIFO would desync), so it is watched for
        *progress* instead: available replies are consumed (parked for
        the next ``drain``); a backlog that produces nothing across
        probes for longer than ``timeout`` is a hung worker, poisoned
        and reported exactly like a call timeout.
        """
        if not self.is_alive():
            return False
        if timeout is None:
            return True
        if not self.mutex.acquire(blocking=False):
            return True  # busy serving someone: alive by definition
        try:
            if self._outstanding:
                return self._probe_backlog(timeout)
            self._stall_since = None
            return self.call(("ping",), timeout=timeout) == "pong"
        except (ShardError, ReproError):
            return False
        finally:
            self.mutex.release()

    def _probe_backlog(self, timeout: float) -> bool:
        """Progress check over an in-flight pipelined backlog.

        Note the stall window is the *probe* timeout: a single command
        that legitimately runs longer than the heartbeat deadline while
        pipelined will be convicted as hung.  That is the supervised
        contract -- the same command issued synchronously under
        ``call_timeout_s`` gets the longer call deadline instead.
        """
        progressed = False
        while self._outstanding:
            try:
                ready = self._conn.poll(0)
            except (BrokenPipeError, EOFError, OSError):
                self._mark_dead()
            if not ready:
                break
            self._parked.append(self._decode(self._recv(None)))
            self._outstanding -= 1
            progressed = True
        if progressed or not self._outstanding:
            self._stall_since = None
            return True
        now = time.monotonic()
        if self._stall_since is None:
            self._stall_since = now
            return True
        if now - self._stall_since <= timeout:
            return True
        # No reply for a full heartbeat window: presumed hung.  Poison
        # the pipe (a late reply would desynchronize the FIFO) so the
        # supervisor replaces the worker.
        self._stall_since = None
        self._poisoned = True
        self._outstanding = 0
        return False

    # ---------------------------------------------------------- innards

    def _require_usable(self) -> None:
        if self._poisoned:
            raise ShardCrashed(self.shard_id, "worker-lost", 0)

    def _mark_dead(self):
        self._poisoned = True
        self._outstanding = 0
        raise ShardCrashed(self.shard_id, "worker-death", 0)

    def _recv(self, timeout: float | None = None):
        try:
            if timeout is not None and not self._conn.poll(timeout):
                # A reply may still arrive later; consuming it would be
                # paired with the WRONG request.  Poison the handle: the
                # supervisor kills and recovers the worker.
                self._poisoned = True
                self._outstanding = 0
                raise ShardTimeoutError(self.shard_id, timeout)
            return self._conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            self._mark_dead()

    def _decode(self, reply):
        tag = reply[0]
        if tag == "ok":
            return reply[1]
        if tag == "crash":
            _tag, point, hit = reply
            self._outstanding = 0
            self._poisoned = True
            self._proc.join(timeout=10)
            raise ShardCrashed(self.shard_id, point, hit)
        _tag, exc_name, message = reply
        exc_class = getattr(errors_mod, exc_name, None)
        if exc_class is None or not isinstance(exc_class, type):
            exc_class = ReproError
        if exc_class is SimulatedCrash:  # pragma: no cover - crash uses "crash"
            exc_class = ReproError
        raise exc_class(f"[shard {self.shard_id}] {message}")

    def close(self) -> None:
        if self._proc.is_alive() and not self._poisoned:
            try:
                self.wait_ready()
                self._conn.send(("exit",))
                self._conn.recv()
            except (BrokenPipeError, EOFError, OSError, ShardError):
                pass
        self._proc.join(timeout=10)
        self._conn.close()

    def terminate(self) -> None:
        """Hard-kill the worker (crash simulation in process mode)."""
        self._poisoned = True
        if self._proc.is_alive():
            self._proc.terminate()
        self._proc.join(timeout=10)
        self._conn.close()
