"""Shard handles: one synchronous, one process-backed with pipelining.

Both expose the same three calls -- ``call`` (one command, one answer),
``call_nowait``/``drain`` (pipelined) -- so the router and the benchmarks
are mode-blind.  :class:`LocalShard` runs commands inline (deterministic;
identity properties compare it byte-for-byte against the unsharded
database).  :class:`ProcessShard` sends them to a worker process; because
the pipe is FIFO, ``call_nowait`` may queue an arbitrary backlog and
``drain`` collects answers in order, which keeps every worker core busy
while the parent does nothing but pickle tuples.
"""

from __future__ import annotations

import multiprocessing as mp

import repro.errors as errors_mod
from repro.errors import ReproError, ShardError, SimulatedCrash
from repro.shard.core import ShardCore
from repro.shard.worker import shard_worker_main


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ShardCrashed(ShardError):
    """The worker hit a simulated crash and exited; recover the shard."""

    def __init__(self, shard_id: int, point: str, hit: int) -> None:
        super().__init__(f"shard {shard_id} crashed at {point} (hit {hit})")
        self.shard_id = shard_id
        self.point = point
        self.hit = hit


class LocalShard:
    """In-process shard: commands run inline on the caller's thread."""

    def __init__(self, shard_id: int, core: ShardCore) -> None:
        self.shard_id = shard_id
        self.core = core
        self._pending: list = []

    def call(self, cmd: tuple):
        return self.core.execute(cmd)

    def call_nowait(self, cmd: tuple) -> None:
        # Inline execution keeps deterministic ordering: the command runs
        # now; only the answer is deferred to drain().
        self._pending.append(self.core.execute(cmd))

    def drain(self) -> list:
        results, self._pending = self._pending, []
        return results

    @property
    def pending(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        self.core.db.close()

    def crash(self) -> None:
        self.core.db.crash()


class ProcessShard:
    """A shard behind a worker process and a FIFO pipe."""

    def __init__(
        self,
        shard_id: int,
        config,
        table_defs,
        recover: bool = False,
        committed_gids: frozenset = frozenset(),
    ) -> None:
        self.shard_id = shard_id
        ctx = _mp_context()
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, config, table_defs, recover, frozenset(committed_gids)),
            daemon=True,
            name=f"shard-{shard_id}",
        )
        self._proc.start()
        child_conn.close()
        self._outstanding = 0
        self._ready = None  # set by wait_ready

    def wait_ready(self) -> dict:
        """Block until the worker finishes creation/recovery."""
        if self._ready is None:
            self._ready = self._decode(self._conn.recv())
        return self._ready

    def call(self, cmd: tuple):
        self.wait_ready()
        self._conn.send(cmd)
        return self._decode(self._conn.recv())

    def call_nowait(self, cmd: tuple) -> None:
        self.wait_ready()
        self._conn.send(cmd)
        self._outstanding += 1

    def drain(self) -> list:
        results = []
        while self._outstanding:
            results.append(self._decode(self._conn.recv()))
            self._outstanding -= 1
        return results

    @property
    def pending(self) -> int:
        return self._outstanding

    def _decode(self, reply):
        tag = reply[0]
        if tag == "ok":
            return reply[1]
        if tag == "crash":
            _tag, point, hit = reply
            self._outstanding = 0
            self._proc.join(timeout=10)
            raise ShardCrashed(self.shard_id, point, hit)
        _tag, exc_name, message = reply
        exc_class = getattr(errors_mod, exc_name, None)
        if exc_class is None or not isinstance(exc_class, type):
            exc_class = ReproError
        if exc_class is SimulatedCrash:  # pragma: no cover - crash uses "crash"
            exc_class = ReproError
        raise exc_class(f"[shard {self.shard_id}] {message}")

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self.wait_ready()
                self._conn.send(("exit",))
                self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._proc.join(timeout=10)
        self._conn.close()

    def terminate(self) -> None:
        """Hard-kill the worker (crash simulation in process mode)."""
        if self._proc.is_alive():
            self._proc.terminate()
        self._proc.join(timeout=10)
        self._conn.close()
