"""Self-healing shards: the supervisor that turns detection into repair.

The sharded engine through PR 9 *detects* damage -- codeword audits catch
wild writes, poisoned pipes catch dead and hung workers, the decision log
catches half-delivered 2PC outcomes -- but the operator was the recovery
mechanism: a :class:`~repro.shard.shard.ShardCrashed` or a "committed but
undelivered" :class:`~repro.errors.TwoPhaseCommitError` surfaced to the
caller and stayed there.  :class:`ShardSupervisor` closes the loop:

* **Crash/hang detection.**  Every tick heartbeats the serving shards
  (:meth:`~repro.shard.shard.ProcessShard.probe`: process poll, poison
  flag, then a bounded ping round trip).  Routed calls report crashes
  inline through :meth:`report_crash`, so detection does not wait for
  the next heartbeat.  A hung worker is detected by call/ping timeout;
  its pipe is poisoned (a late reply would desynchronize the FIFO) and
  it is restarted exactly like a dead one.
* **Automatic restart + certified recovery.**  A crashed shard is
  terminated, recovered through the same shard-parallel restart path the
  router uses (fresh worker with ``recover=True`` in process mode,
  :meth:`ShardCore.recover` inproc), resolving in-doubt 2PC branches
  against a fresh snapshot of the decision log.  Before the shard
  rejoins, its recovery is *certified* by a full codeword audit (with a
  quarantine-repair retry when the shard is configured for it); an
  uncertified shard never serves.  Surviving shards serve throughout --
  recovery touches only the dead shard's handle.
* **In-doubt decision repair.**  A commit decision that could not be
  delivered (the participant died between the coordinator's fsync and
  the decide fan-out) is queued here by the router; the repair loop
  replays it with capped-exponential backoff until the participant
  answers ``committed``/``unknown``, and a certified restart drops the
  queue entry outright -- restart recovery already resolved the branch
  against the decision log.  The caller saw a *committed* transaction
  the whole time.
* **Degraded-mode serving.**  While a shard is down, every routed call
  to it fails fast with a retryable
  :class:`~repro.errors.ShardUnavailableError` (:meth:`ensure_serving`)
  instead of blocking on a dead pipe; the serve layer forwards the
  retryable bit to remote clients.  A shard that exhausts
  ``max_restarts`` consecutive failed restarts, or cannot certify, is
  parked ``DOWN`` -- contained, not crashing the node.

The supervisor runs either *manually* (call :meth:`tick` from a test or
a driver loop; fully deterministic) or *automatically*: :meth:`start`
rides the existing :class:`~repro.runtime.scheduler.Scheduler` machinery
-- a threaded scheduler whose ``"interval"`` tick drives supervision in
the background, the same task plumbing that drives group-commit
deadlines and background sweeps.

:class:`WaitForGraph` is the cross-shard deadlock half of the story.
Locks in this system *fail fast* (a conflict raises
:class:`~repro.errors.LockError` immediately; nobody blocks inside a
shard), so classic lock-queue cycles cannot form -- but *retry* cycles
can: session A holds shard 0's key and retries for shard 1's, session B
holds shard 1's and retries for shard 0's, and both retry forever.  The
serve layer records each conflict as a wait-for edge here; a cycle
convicts the **youngest** member (largest transaction sequence number),
which is aborted with a retryable :class:`~repro.errors.DeadlockError`
while the survivors proceed.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field as dc_field

from repro.errors import ReproError, ShardError, ShardUnavailableError
from repro.runtime.scheduler import THREADED, Scheduler
from repro.shard.core import ShardCore
from repro.shard.router import (
    DECISION_LOG_FILE,
    DecisionLog,
    ShardedDatabase,
)
from repro.shard.shard import LocalShard, ProcessShard

#: Shard lifecycle states the supervisor tracks.
SERVING = "serving"
RECOVERING = "recovering"
DOWN = "down"


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of one supervisor.  The defaults suit process-mode shards
    on a loaded machine; tests shrink the timeouts to milliseconds."""

    #: Ping deadline of one heartbeat probe.  A worker that cannot
    #: answer a ping in this long is presumed hung and restarted.
    heartbeat_timeout_s: float = 1.0
    #: Default deadline applied to every routed shard call.
    call_timeout_s: float = 10.0
    #: Deadline of one 2PC prepare; a late vote is a vote of no
    #: (presumed abort).  ``None`` falls back to ``call_timeout_s``.
    prepare_timeout_s: float | None = 2.0
    #: Inline retries of one decide delivery before the supervisor's
    #: repair queue takes over.
    decide_retries: int = 2
    decide_backoff_base_s: float = 0.01
    decide_backoff_cap_s: float = 0.25
    #: Deadline for a restarted worker to finish recovery.
    restart_timeout_s: float = 60.0
    #: Consecutive failed restart attempts before the shard is parked
    #: ``DOWN`` (a crash loop must not become a restart storm).
    max_restarts: int = 5
    #: Backoff between repair-queue delivery attempts per decision.
    repair_backoff_base_s: float = 0.01
    repair_backoff_cap_s: float = 0.5
    #: Period of the automatic supervision tick (:meth:`start`).
    tick_interval_s: float = 0.05


@dataclass
class _ShardState:
    state: str = SERVING
    #: Consecutive failed restart attempts (reset on certified rejoin).
    failed_restarts: int = 0
    #: Closed unavailability windows ``(down_at, up_at)`` plus the
    #: currently open one (``open_since`` is not None while not serving).
    windows: list = dc_field(default_factory=list)
    open_since: float | None = None
    restarts: int = 0


@dataclass
class _PendingDecision:
    gid: str
    shards: set
    attempts: int = 0
    next_try_at: float = 0.0


class ShardSupervisor:
    """Heartbeats, restarts, and repairs the shards of one router."""

    def __init__(
        self, db: ShardedDatabase, config: SupervisorConfig | None = None
    ) -> None:
        self.db = db
        self.config = config or SupervisorConfig()
        self._states: dict[int, _ShardState] = {
            sid: _ShardState() for sid in range(len(db.shards))
        }
        self._pending: dict[str, _PendingDecision] = {}
        self._lock = threading.RLock()
        self._tick_lock = threading.Lock()
        self._scheduler: Scheduler | None = None
        self.events: list[dict] = []
        self.decisions_repaired = 0
        self.heartbeat_failures = 0
        self._attached = False

    # ------------------------------------------------------- attachment

    def attach(self) -> "ShardSupervisor":
        """Wire supervision into the router: deadlines on every routed
        call, fail-fast on non-serving shards, crash reporting, and the
        pending-delivery path for undelivered commit decisions."""
        config = self.config
        self.db.supervisor = self
        self.db.call_timeout_s = config.call_timeout_s
        self.db.prepare_timeout_s = config.prepare_timeout_s
        self.db.decide_retries = config.decide_retries
        self.db.decide_backoff_base_s = config.decide_backoff_base_s
        self.db.decide_backoff_cap_s = config.decide_backoff_cap_s
        self._attached = True
        return self

    def detach(self) -> None:
        """Restore the pre-supervision router contract."""
        self.stop()
        self.db.supervisor = None
        self.db.call_timeout_s = None
        self.db.prepare_timeout_s = None
        self.db.decide_retries = 0
        self._attached = False

    def start(self) -> "ShardSupervisor":
        """Run supervision automatically on a threaded scheduler tick.

        The supervisor owns a tiny :class:`Scheduler` of its own (the
        router has no single scheduler -- each shard database runs one
        *inside* its worker) and registers :meth:`tick` as an
        ``"interval"`` task, the same machinery that drives group-commit
        deadlines and background sweeps elsewhere.
        """
        if not self._attached:
            self.attach()
        if self._scheduler is None:
            self._scheduler = Scheduler(
                THREADED, tick_interval_s=self.config.tick_interval_s
            )
            self._scheduler.register_tick(
                "supervise", ("interval",), self._scheduled_tick
            )
        return self

    def stop(self) -> None:
        scheduler, self._scheduler = self._scheduler, None
        if scheduler is not None:
            scheduler.shutdown()

    def _scheduled_tick(self, _event: str) -> None:
        try:
            self.tick()
        except Exception as exc:  # pragma: no cover - ticker must survive
            self._event("tick_error", None, str(exc))

    # ------------------------------------------------------ fast checks

    def state_of(self, shard_id: int) -> str:
        return self._states[shard_id].state

    def ensure_serving(self, shard_id: int) -> None:
        """Fail fast when the shard cannot take this call right now.

        This is the degraded-mode contract: a request routed to a
        recovering (or parked) shard gets an immediately-retryable typed
        error instead of blocking on a worker pipe that nobody is
        reading -- surviving shards keep serving, and the caller's
        retry lands after the supervisor rejoins the shard.
        """
        state = self._states[shard_id].state
        if state != SERVING:
            raise ShardUnavailableError(
                shard_id,
                state,
                detail="the supervisor is restarting it"
                if state == RECOVERING
                else "restart/certification failed; operator attention needed",
            )

    def report_crash(self, shard_id: int, handle, reason: str = "") -> None:
        """A routed call found the shard dead or hung; mark it for
        restart.  Idempotent and stale-proof: a report against a handle
        the supervisor already replaced is ignored (the crash belongs
        to the shard's previous life)."""
        with self._lock:
            if self.db.shards[shard_id] is not handle:
                return
            entry = self._states[shard_id]
            if entry.state != SERVING:
                return
            entry.state = RECOVERING
            entry.open_since = time.monotonic()
            self._event("crash_detected", shard_id, reason)

    def prepare_token(self, shard_id: int) -> int:
        """Incarnation token the router captures right before a 2PC
        prepare: the shard's restart count while it is serving, or a
        sentinel that can never match when it is not (the prepare is
        doomed anyway -- :meth:`ensure_serving` fails it fast)."""
        with self._lock:
            entry = self._states[shard_id]
            return entry.restarts if entry.state == SERVING else -1

    def can_decide(self, shard_id: int, token: int) -> bool:
        """The commit-decision fence: True iff the shard still serves in
        the same incarnation the prepare ran in.  A shard that crashed,
        is mid-recovery, or rejoined as a later incarnation may have
        resolved the prepared branch against a decision-log snapshot
        that predates the decision, so the coordinator must presume
        abort instead of committing."""
        if token < 0:
            return False
        with self._lock:
            entry = self._states[shard_id]
            return entry.state == SERVING and entry.restarts == token

    def queue_decision_delivery(self, gid: str, shards) -> None:
        """A durable commit decision could not reach these participants;
        remember it until delivery or certified restart resolves it."""
        with self._lock:
            entry = self._pending.get(gid)
            if entry is None:
                entry = self._pending[gid] = _PendingDecision(gid, set())
            entry.shards.update(shards)
            self._event(
                "decision_queued", None, f"{gid} -> shards {sorted(entry.shards)}"
            )

    @property
    def pending_decisions(self) -> dict[str, tuple]:
        with self._lock:
            return {gid: tuple(sorted(p.shards)) for gid, p in self._pending.items()}

    # ------------------------------------------------------------- tick

    def tick(self) -> dict:
        """One supervision pass: heartbeats, restarts, decision repair.

        Safe to call from a test loop or the scheduler ticker; a second
        concurrent tick is skipped rather than queued (supervision is
        idempotent, the next tick picks up whatever this one missed).
        """
        if not self._tick_lock.acquire(blocking=False):
            return {"skipped": True}
        try:
            self._heartbeat()
            restarted = self._restart_pass()
            delivered = self._repair_decisions()
            return {
                "skipped": False,
                "restarted": restarted,
                "decisions_delivered": delivered,
            }
        finally:
            self._tick_lock.release()

    def _heartbeat(self) -> None:
        for sid, entry in self._states.items():
            if entry.state != SERVING:
                continue
            handle = self.db.shards[sid]
            try:
                alive = handle.probe(timeout=self.config.heartbeat_timeout_s)
            except ReproError:
                alive = False
            if not alive:
                self.heartbeat_failures += 1
                self.report_crash(sid, handle, reason="heartbeat failed")

    def _restart_pass(self) -> int:
        restarted = 0
        for sid, entry in self._states.items():
            if entry.state == RECOVERING and self._try_restart(sid):
                restarted += 1
        return restarted

    def _try_restart(self, shard_id: int) -> bool:
        entry = self._states[shard_id]
        if entry.failed_restarts >= self.config.max_restarts:
            entry.state = DOWN
            self._event(
                "shard_down",
                shard_id,
                f"{entry.failed_restarts} consecutive restart failures",
            )
            return False
        self._event("restart_attempt", shard_id, "")
        old = self.db.shards[shard_id]
        try:
            old.terminate()
        except Exception:
            pass
        new_handle = None
        try:
            new_handle, snapshot = self._recover_handle(shard_id)
            if not self._certify(new_handle):
                raise ShardError(
                    f"shard {shard_id} recovered but failed audit certification"
                )
        except Exception as exc:
            entry.failed_restarts += 1
            self._event("restart_failed", shard_id, str(exc))
            if new_handle is not None:
                try:
                    new_handle.terminate()
                except Exception:
                    pass
            return False
        with self._lock:
            self.db.shards[shard_id] = new_handle
            entry.state = SERVING
            entry.failed_restarts = 0
            entry.restarts += 1
            if entry.open_since is not None:
                entry.windows.append((entry.open_since, time.monotonic()))
                entry.open_since = None
            # Restart recovery resolved every in-doubt branch against
            # this restart's decision-log snapshot, so a pending
            # delivery whose gid the snapshot contains is already
            # satisfied on this shard.  A gid the snapshot does NOT
            # contain was fsync'd after the snapshot was read (the
            # incarnation fence guarantees no such decision names a
            # branch this recovery touched); it stays queued for the
            # repair loop to deliver to the new incarnation.
            for gid in list(self._pending):
                if gid not in snapshot:
                    continue
                pending = self._pending[gid]
                pending.shards.discard(shard_id)
                if not pending.shards:
                    del self._pending[gid]
                    self.decisions_repaired += 1
                    self._event(
                        "decision_delivered", shard_id, f"{gid} (via restart recovery)"
                    )
        self._event("rejoined", shard_id, f"restart #{entry.restarts}")
        return True

    def _recover_handle(self, shard_id: int):
        """Recover one shard through the same path the parallel-restart
        benchmark uses, resolving in-doubt branches against a fresh
        decision-log snapshot.  Returns ``(handle, snapshot)``.

        The snapshot read is fenced against live coordinators
        (:meth:`~repro.shard.router.ShardedDatabase._fenced_decide`):
        taken under ``decision_lock``, it either precedes a decision's
        incarnation-fence check -- which then sees this shard
        RECOVERING and withholds the decision -- or follows the
        fsync'd append and so contains the gid.  Either way this
        recovery can never presume-abort a branch whose commit the
        coordinator acks.
        """
        config = self.db.config
        with self.db.decision_lock:
            committed = DecisionLog.load_committed(
                os.path.join(config.dir, DECISION_LOG_FILE)
            )
        if config.mode == "process":
            handle = ProcessShard(
                shard_id,
                config.db_config(shard_id),
                [],
                recover=True,
                committed_gids=committed,
            )
            handle.wait_ready(timeout=self.config.restart_timeout_s)
            return handle, committed
        core, _report = ShardCore.recover(
            config.db_config(shard_id),
            in_doubt_resolver=lambda gid: gid in committed,
        )
        return LocalShard(shard_id, core), committed

    def _certify(self, handle) -> bool:
        """Certified recovery: a full codeword audit must pass before
        the shard rejoins; quarantine-configured shards get one
        repair-and-re-audit chance (persistent corruption that survived
        the restart replay)."""
        clean, _regions, _ranges = handle.call(
            ("audit",), timeout=self.config.restart_timeout_s
        )
        if clean:
            return True
        try:
            handle.call(("repair",), timeout=self.config.restart_timeout_s)
        except ReproError:
            return False
        clean, _regions, _ranges = handle.call(
            ("audit",), timeout=self.config.restart_timeout_s
        )
        return bool(clean)

    def _repair_decisions(self) -> int:
        """Replay undelivered commit decisions to serving participants.

        Per-decision capped-exponential backoff; a participant that died
        again is reported (its restart will resolve the branch) and the
        entry stays queued.  ``committed``/``unknown`` both count as
        delivered -- ``unknown`` means the shard's own recovery already
        finished the branch.
        """
        delivered = 0
        now = time.monotonic()
        with self._lock:
            pending = [p for p in self._pending.values() if p.next_try_at <= now]
        for item in pending:
            for sid in sorted(item.shards):
                if self._states[sid].state != SERVING:
                    continue
                handle = self.db.shards[sid]
                try:
                    handle.call(
                        ("decide", item.gid, True),
                        timeout=self.config.call_timeout_s,
                    )
                except ReproError as exc:
                    self.report_crash(sid, handle, reason=str(exc))
                    continue
                except Exception as exc:  # contain: retry after backoff
                    self._event(
                        "decision_delivery_failed", sid, f"{item.gid}: {exc}"
                    )
                    continue
                with self._lock:
                    item.shards.discard(sid)
                self._event("decision_delivered", sid, item.gid)
            with self._lock:
                if not item.shards:
                    self._pending.pop(item.gid, None)
                    self.decisions_repaired += 1
                    delivered += 1
                else:
                    item.attempts += 1
                    item.next_try_at = now + min(
                        self.config.repair_backoff_cap_s,
                        self.config.repair_backoff_base_s * (2 ** item.attempts),
                    )
        return delivered

    # ------------------------------------------------------------ status

    def heal(self, timeout_s: float = 60.0, tick_sleep_s: float = 0.01) -> bool:
        """Tick until every shard serves and no decision is pending (or
        the deadline passes).  The chaos campaign's settling primitive."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            self.tick()
            states = {entry.state for entry in self._states.values()}
            if states == {SERVING} and not self._pending:
                return True
            if DOWN in states:
                return False
            time.sleep(tick_sleep_s)
        return False

    def unavailability_windows(self, shard_id: int) -> list[tuple[float, float]]:
        entry = self._states[shard_id]
        windows = list(entry.windows)
        if entry.open_since is not None:
            windows.append((entry.open_since, time.monotonic()))
        return windows

    def summary(self) -> dict:
        """Machine-readable supervision outcome (the chaos bench JSON)."""
        with self._lock:
            per_shard = {}
            for sid, entry in self._states.items():
                windows = self.unavailability_windows(sid)
                per_shard[sid] = {
                    "state": entry.state,
                    "restarts": entry.restarts,
                    "unavailability_windows": len(windows),
                    "unavailable_s": round(
                        sum(end - start for start, end in windows), 4
                    ),
                    "max_window_s": round(
                        max((end - start for start, end in windows), default=0.0), 4
                    ),
                }
            return {
                "shards": per_shard,
                "restarts": sum(e.restarts for e in self._states.values()),
                "heartbeat_failures": self.heartbeat_failures,
                "decisions_repaired": self.decisions_repaired,
                "pending_decisions": len(self._pending),
                "events": len(self.events),
            }

    def _event(self, kind: str, shard_id: int | None, detail: str) -> None:
        self.events.append(
            {
                "t": time.monotonic(),
                "kind": kind,
                "shard": shard_id,
                "detail": detail,
            }
        )


class WaitForGraph:
    """Cross-shard wait-for edges with cycle detection.

    Nodes are serve-layer session ids.  Edges mean "waiter's next retry
    needs a lock that holder's open branch has" -- *retry intent*, since
    locks here fail fast and no thread ever blocks inside a shard.  The
    serve layer adds an edge per conflict, clears a session's outgoing
    edges when it makes progress, and clears edges onto a session when
    its transaction ends.  :meth:`cycle_from` reports a cycle through
    the given node, whose youngest member the caller aborts.
    """

    def __init__(self) -> None:
        self._waits: dict[int, set[int]] = {}

    def add(self, waiter: int, holder: int) -> None:
        if waiter == holder:
            return
        self._waits.setdefault(waiter, set()).add(holder)

    def clear_waiter(self, waiter: int) -> None:
        self._waits.pop(waiter, None)

    def clear_holder(self, holder: int) -> None:
        for holders in self._waits.values():
            holders.discard(holder)
        self._waits = {w: h for w, h in self._waits.items() if h}

    def cycle_from(self, start: int) -> tuple[int, ...] | None:
        """DFS from ``start``; returns the first cycle through it."""
        path: list[int] = []
        on_path: set[int] = set()
        visited: set[int] = set()

        def visit(node: int) -> tuple[int, ...] | None:
            path.append(node)
            on_path.add(node)
            for nxt in self._waits.get(node, ()):
                if nxt == start:
                    return tuple(path)
                if nxt in on_path or nxt in visited:
                    continue
                found = visit(nxt)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(node)
            visited.add(node)
            return None

        return visit(start)

    def edges(self) -> dict[int, tuple[int, ...]]:
        return {w: tuple(sorted(h)) for w, h in self._waits.items() if h}


__all__ = [
    "DOWN",
    "RECOVERING",
    "SERVING",
    "ShardSupervisor",
    "SupervisorConfig",
    "WaitForGraph",
]
