"""Branch-hash partitioning over the TPC-B schema.

TPC-B has a natural partition key: every table row belongs to exactly one
branch (accounts and tellers carry ``branch_id = key % branches`` by
workload construction, history rows name their ``bid`` outright), so
``shard = branch % n_shards`` places each branch's whole working set --
account, teller, branch and history records -- on one shard.  The
single-branch TPC-B operation then never crosses a shard boundary; only
explicit inter-branch transfers do.

The spec is schema-driven rather than hard-coded so non-TPC-B tables can
ride the same router: a table's key either *is* the branch id, maps to a
branch by modulus, or the branch is named by a row field (the insert-only
history case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


def shard_capacity(total: int, n_shards: int, slack: float = 0.25) -> int:
    """Per-shard table capacity for ``total`` rows over ``n_shards``.

    ``n_shards == 1`` returns ``total`` exactly, so a one-shard database
    is laid out byte-identically to the unsharded reference (the identity
    property in ``tests/test_shard_invariance.py`` depends on this).  With
    more shards, each gets an even split plus slack for modulus skew.
    """
    if n_shards <= 1:
        return total
    even = -(-total // n_shards)  # ceil
    return max(1, even + int(even * slack) + 1)


@dataclass(frozen=True)
class PartitionSpec:
    """Maps table keys and rows to branches, and branches to shards."""

    branches: int
    n_shards: int
    #: tables whose key maps to a branch by ``key % branches``
    key_mod_tables: frozenset = frozenset({"account", "teller"})
    #: tables whose key *is* the branch id
    branch_key_tables: frozenset = frozenset({"branch"})
    #: insert-routed tables: branch comes from this row field
    row_field: dict = field(default_factory=lambda: {"history": "bid"})

    def __post_init__(self) -> None:
        if self.branches < 1:
            raise ConfigError(f"branches must be >= 1: {self.branches}")
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1: {self.n_shards}")

    # ------------------------------------------------------------ mapping

    def branch_for_key(self, table: str, key: int) -> int:
        if table in self.branch_key_tables:
            return key % self.branches
        if table in self.key_mod_tables:
            return key % self.branches
        raise ConfigError(
            f"table {table!r} is not key-routable; route by row instead"
        )

    def branch_for_row(self, table: str, values: dict) -> int:
        field_name = self.row_field.get(table)
        if field_name is not None:
            return int(values[field_name]) % self.branches
        key_field = None
        if table in self.branch_key_tables:
            key_field = "bid" if "bid" in values else None
        if key_field is not None:
            return int(values[key_field]) % self.branches
        # Fall back to any key the spec can route.
        for name in ("bid", "tid", "aid", "id", "key"):
            if name in values:
                return self.branch_for_key_like(table, int(values[name]))
        raise ConfigError(f"cannot derive a branch for {table!r} row {values!r}")

    def branch_for_key_like(self, table: str, key: int) -> int:
        if table in self.branch_key_tables:
            return key % self.branches
        return key % self.branches

    def shard_of(self, branch: int) -> int:
        return branch % self.n_shards

    def shard_for_key(self, table: str, key: int) -> int:
        return self.shard_of(self.branch_for_key(table, key))

    def shard_for_row(self, table: str, values: dict) -> int:
        return self.shard_of(self.branch_for_row(table, values))

    def resharded(self, n_shards: int) -> "PartitionSpec":
        """The same branch mapping over a different shard count."""
        return PartitionSpec(
            branches=self.branches,
            n_shards=n_shards,
            key_mod_tables=self.key_mod_tables,
            branch_key_tables=self.branch_key_tables,
            row_field=dict(self.row_field),
        )
