"""Operational status report for a running database.

``status_report(db)`` assembles one structured snapshot -- scheme,
protection level, space overhead, virtual-time event breakdown, audit and
checkpoint state, transaction counters -- and ``render_status(db)`` turns
it into the text an operator would read.  Everything here is read-only
and costs nothing on the virtual clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bench.reporting import render_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database


def status_report(db: "Database") -> dict:
    """A structured snapshot of the database's protection and activity."""
    scheme = db.scheme
    table = scheme.codeword_table
    tables = {
        name: {
            "capacity": t.capacity,
            "record_size": t.schema.record_size,
            "index": type(t.index).__name__ if t.index is not None else None,
        }
        for name, t in db.tables.items()
    }
    report = {
        "scheme": {
            "name": scheme.name,
            "members": [member.name for member in db.pipeline.members],
            "direct_protection": scheme.direct_protection,
            "indirect_protection": scheme.indirect_protection,
            "region_size": getattr(scheme, "region_size", None),
            "region_count": table.region_count if table is not None else 0,
            "space_overhead_pct": round(scheme.space_overhead * 100, 3),
        },
        "memory": {
            "size_bytes": db.memory.size,
            "page_size": db.memory.page_size,
            "pages": db.memory.page_count,
            "segments": len(db.memory.segments),
            "dirty_pages_pending_A": len(db.memory.dirty_pages.pending_for("A")),
            "dirty_pages_pending_B": len(db.memory.dirty_pages.pending_for("B")),
        },
        "transactions": {
            "committed": db.manager.committed_count,
            "aborted": db.manager.aborted_count,
            "active": len(db.manager.att),
        },
        "log": {
            "next_lsn": db.system_log.next_lsn,
            "stable_through_lsn": db.system_log.end_of_stable_lsn,
            "tail_records": len(db.system_log.tail),
        },
        "audits": {
            "runs": db.auditor.audits_run,
            "failures": db.auditor.failures,
            "audit_sn": db.auditor.last_clean_audit_lsn,
        },
        "checkpoints": {
            "taken": db.checkpointer.checkpoints_taken,
            "anchor": db.checkpointer.read_anchor(),
        },
        "virtual_time_s": round(db.clock.now_seconds, 6),
        "events": {
            event: {"count": count, "total_ns": ns}
            for event, (count, ns) in db.meter.snapshot().items()
        },
        "tables": tables,
        "access": dict(db.stats),
    }
    return report


def render_status(db: "Database", top_events: int = 10) -> str:
    """Human-readable status text."""
    report = status_report(db)
    scheme = report["scheme"]
    lines = [
        f"scheme: {scheme['name']}  "
        f"(direct: {scheme['direct_protection']}, "
        f"indirect: {scheme['indirect_protection']}, "
        f"space overhead: {scheme['space_overhead_pct']}%)",
        f"memory: {report['memory']['size_bytes']:,} bytes in "
        f"{report['memory']['segments']} segments / "
        f"{report['memory']['pages']} pages",
        f"transactions: {report['transactions']['committed']} committed, "
        f"{report['transactions']['aborted']} aborted, "
        f"{report['transactions']['active']} active",
        f"log: lsn {report['log']['next_lsn']} "
        f"(stable through {report['log']['stable_through_lsn']}, "
        f"{report['log']['tail_records']} in tail)",
        f"audits: {report['audits']['runs']} run, "
        f"{report['audits']['failures']} failed, "
        f"Audit_SN = {report['audits']['audit_sn']}",
        f"checkpoints: {report['checkpoints']['taken']} taken, "
        f"anchor = {report['checkpoints']['anchor']}",
        f"virtual time: {report['virtual_time_s']} s",
    ]
    events = sorted(
        report["events"].items(), key=lambda kv: -kv[1]["total_ns"]
    )[:top_events]
    if events:
        rows = [
            [event, f"{data['count']:,}", f"{data['total_ns'] / 1e6:,.2f} ms"]
            for event, data in events
        ]
        lines.append("")
        lines.append(
            render_table(
                ["event", "count", "virtual time"], rows, title="top cost events"
            )
        )
    return "\n".join(lines)
