"""An in-image B+tree: the ordered counterpart of the hash index.

Dali's native ordered index is the T-tree [9]; this reproduction uses a
B+tree with the same protection properties (a fixed-size-node ordered
index living inside the protected image), which is what matters for the
paper: every node read and write goes through the prescribed interface,
so index traversals generate read-log records, node updates maintain
codewords, physical redo recovers the structure with no special code,
and a wild write into a node is detected like any other corruption.

Layout (little-endian), one segment per index:

* header (16 bytes): ``u32 node_capacity | u32 free_head | u32 never_used
  | u32 root`` -- ``free_head``/``root`` are node ids + 1 (0 = none);
  ``never_used`` lazily initializes the free list like the hash index.
* node pool: 256-byte nodes::

      u8 kind (0 leaf, 1 internal) | u8 count | u16 pad | u32 link
      i64 keys[14]
      leaf:     u32 values[14]   (link = next-leaf id + 1)
      internal: u32 children[15] (link unused)

Deletion removes entries without rebalancing (nodes may underflow; an
empty leaf stays chained and is skipped by scans).  This matches common
main-memory practice -- deletes are rare in the paper's workloads -- and
keeps rollback simple; it is documented behaviour, not an accident.
"""

from __future__ import annotations

import bisect
import struct
from typing import Iterator

from repro.errors import ConfigError, OutOfSpaceError
from repro.mem.allocator import MemoryAccessor

NODE_SIZE = 256
LEAF_KEYS = 14
INTERNAL_KEYS = 14

_HEADER = struct.Struct("<IIII")
_NODE_HEAD = struct.Struct("<BBHI")  # kind, count, pad, link
_KEYS = struct.Struct(f"<{LEAF_KEYS}q")
_VALUES = struct.Struct(f"<{LEAF_KEYS}I")
_CHILDREN = struct.Struct(f"<{INTERNAL_KEYS + 1}I")

LEAF = 0
INTERNAL = 1


class _Node:
    """Decoded image of one node; re-encoded on write-back."""

    __slots__ = ("kind", "count", "link", "keys", "values", "children")

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.count = 0
        self.link = 0  # next-leaf id + 1 (leaves only)
        self.keys: list[int] = []
        self.values: list[int] = []   # leaves
        self.children: list[int] = []  # internals: count + 1 node ids

    @classmethod
    def decode(cls, image: bytes) -> "_Node":
        kind, count, _pad, link = _NODE_HEAD.unpack_from(image, 0)
        node = cls(kind)
        node.count = count
        node.link = link
        keys = _KEYS.unpack_from(image, _NODE_HEAD.size)
        node.keys = list(keys[:count])
        body = _NODE_HEAD.size + _KEYS.size
        if kind == LEAF:
            values = _VALUES.unpack_from(image, body)
            node.values = list(values[:count])
        else:
            children = _CHILDREN.unpack_from(image, body)
            node.children = list(children[: count + 1])
        return node

    def encode(self) -> bytes:
        keys = self.keys + [0] * (LEAF_KEYS - len(self.keys))
        head = _NODE_HEAD.pack(self.kind, self.count, 0, self.link)
        if self.kind == LEAF:
            values = self.values + [0] * (LEAF_KEYS - len(self.values))
            body = _KEYS.pack(*keys) + _VALUES.pack(*values)
        else:
            children = self.children + [0] * (
                INTERNAL_KEYS + 1 - len(self.children)
            )
            body = _KEYS.pack(*keys) + _CHILDREN.pack(*children)
        blob = head + body
        return blob + b"\x00" * (NODE_SIZE - len(blob))


class BTreeIndex:
    """Fixed-capacity in-image B+tree mapping ``int64 key -> u32 slot``."""

    HEADER_SIZE = _HEADER.size

    def __init__(self, base: int, node_capacity: int) -> None:
        if node_capacity <= 0:
            raise ConfigError("node_capacity must be positive")
        self.base = base
        self.node_capacity = node_capacity
        self.pool_base = base + self.HEADER_SIZE

    @staticmethod
    def size_for(node_capacity: int) -> int:
        return BTreeIndex.HEADER_SIZE + node_capacity * NODE_SIZE

    @staticmethod
    def nodes_for_entries(entry_capacity: int) -> int:
        """A safe node budget for ``entry_capacity`` keys.

        Worst case leaves are half full (7 keys); internals likewise.
        ``entries/7 * (1 + 1/7 + 1/49 + ...) < entries/6``, plus slack.
        """
        return max(16, entry_capacity // 6 + 8)

    @property
    def size(self) -> int:
        return self.size_for(self.node_capacity)

    def format(self, ctx: MemoryAccessor) -> None:
        ctx.update(self.base, _HEADER.pack(self.node_capacity, 0, 0, 0))

    # ----------------------------------------------------------- node io

    def _node_address(self, node_id: int) -> int:
        return self.pool_base + node_id * NODE_SIZE

    def _read_node(self, ctx: MemoryAccessor, node_id: int) -> _Node:
        return _Node.decode(ctx.read(self._node_address(node_id), NODE_SIZE))

    def _write_node(self, ctx: MemoryAccessor, node_id: int, node: _Node) -> None:
        ctx.update(self._node_address(node_id), node.encode())

    def _read_header(self, ctx: MemoryAccessor) -> tuple[int, int, int, int]:
        return _HEADER.unpack(ctx.read(self.base, self.HEADER_SIZE))

    def _write_header(
        self, ctx: MemoryAccessor, free_head: int, never_used: int, root: int
    ) -> None:
        ctx.update(
            self.base,
            _HEADER.pack(self.node_capacity, free_head, never_used, root),
        )

    def _allocate_node(self, ctx: MemoryAccessor) -> int:
        capacity, free_head, never_used, root = self._read_header(ctx)
        if free_head:
            node_id = free_head - 1
            node = self._read_node(ctx, node_id)
            self._write_header(ctx, node.link, never_used, root)
            return node_id
        if never_used < capacity:
            self._write_header(ctx, free_head, never_used + 1, root)
            return never_used
        raise OutOfSpaceError(f"B+tree at {self.base:#x} is out of nodes")

    # Nodes are never recycled: deletion does not merge (see module
    # docstring), so the free list head stays 0; the header field exists
    # so a rebalancing implementation can be slotted in format-compatibly.

    # --------------------------------------------------------- operations

    def lookup(self, ctx: MemoryAccessor, key: int) -> int | None:
        _cap, _free, _used, root = self._read_header(ctx)
        if not root:
            return None
        node_id = root - 1
        node = self._read_node(ctx, node_id)
        while node.kind == INTERNAL:
            node_id = node.children[bisect.bisect_right(node.keys, key)]
            node = self._read_node(ctx, node_id)
        i = bisect.bisect_left(node.keys, key)
        if i < node.count and node.keys[i] == key:
            return node.values[i]
        return None

    def insert(self, ctx: MemoryAccessor, key: int, value: int) -> None:
        """Insert a unique key; duplicates are rejected."""
        _cap, _free, _used, root = self._read_header(ctx)
        if not root:
            leaf_id = self._allocate_node(ctx)
            leaf = _Node(LEAF)
            leaf.keys, leaf.values, leaf.count = [key], [value], 1
            self._write_node(ctx, leaf_id, leaf)
            cap, free, used, _r = self._read_header(ctx)
            self._write_header(ctx, free, used, leaf_id + 1)
            return
        # Descend, remembering the path for splits.
        path: list[tuple[int, _Node, int]] = []  # (node_id, node, child index)
        node_id = root - 1
        node = self._read_node(ctx, node_id)
        while node.kind == INTERNAL:
            child_index = bisect.bisect_right(node.keys, key)
            path.append((node_id, node, child_index))
            node_id = node.children[child_index]
            node = self._read_node(ctx, node_id)
        i = bisect.bisect_left(node.keys, key)
        if i < node.count and node.keys[i] == key:
            raise ConfigError(f"duplicate key {key} in B+tree")
        node.keys.insert(i, key)
        node.values.insert(i, value)
        node.count += 1
        if node.count <= LEAF_KEYS:
            self._write_node(ctx, node_id, node)
            return
        # Split the leaf and push the separator up the remembered path.
        separator, new_id = self._split_leaf(ctx, node_id, node)
        self._insert_into_parents(ctx, path, separator, new_id)

    def _split_leaf(
        self, ctx: MemoryAccessor, node_id: int, node: _Node
    ) -> tuple[int, int]:
        half = node.count // 2
        right = _Node(LEAF)
        right.keys = node.keys[half:]
        right.values = node.values[half:]
        right.count = len(right.keys)
        right.link = node.link
        right_id = self._allocate_node(ctx)
        node.keys = node.keys[:half]
        node.values = node.values[:half]
        node.count = half
        node.link = right_id + 1
        self._write_node(ctx, right_id, right)
        self._write_node(ctx, node_id, node)
        return right.keys[0], right_id

    def _insert_into_parents(
        self,
        ctx: MemoryAccessor,
        path: list[tuple[int, _Node, int]],
        separator: int,
        new_child: int,
    ) -> None:
        while path:
            parent_id, parent, child_index = path.pop()
            parent.keys.insert(child_index, separator)
            parent.children.insert(child_index + 1, new_child)
            parent.count += 1
            if parent.count <= INTERNAL_KEYS:
                self._write_node(ctx, parent_id, parent)
                return
            half = parent.count // 2
            separator = parent.keys[half]
            right = _Node(INTERNAL)
            right.keys = parent.keys[half + 1 :]
            right.children = parent.children[half + 1 :]
            right.count = len(right.keys)
            right_id = self._allocate_node(ctx)
            parent.keys = parent.keys[:half]
            parent.children = parent.children[: half + 1]
            parent.count = half
            self._write_node(ctx, right_id, right)
            self._write_node(ctx, parent_id, parent)
            new_child = right_id
        # Split reached the root: grow the tree by one level.
        cap, free, used, root = self._read_header(ctx)
        new_root = _Node(INTERNAL)
        new_root.keys = [separator]
        new_root.children = [root - 1, new_child]
        new_root.count = 1
        root_id = self._allocate_node(ctx)
        self._write_node(ctx, root_id, new_root)
        cap, free, used, _r = self._read_header(ctx)
        self._write_header(ctx, free, used, root_id + 1)

    def delete(self, ctx: MemoryAccessor, key: int) -> bool:
        """Remove a key; returns False if absent.  No rebalancing."""
        _cap, _free, _used, root = self._read_header(ctx)
        if not root:
            return False
        node_id = root - 1
        node = self._read_node(ctx, node_id)
        while node.kind == INTERNAL:
            node_id = node.children[bisect.bisect_right(node.keys, key)]
            node = self._read_node(ctx, node_id)
        i = bisect.bisect_left(node.keys, key)
        if i >= node.count or node.keys[i] != key:
            return False
        del node.keys[i]
        del node.values[i]
        node.count -= 1
        self._write_node(ctx, node_id, node)
        return True

    def range(
        self, ctx: MemoryAccessor, lo: int, hi: int
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(key, value)`` for ``lo <= key <= hi`` in key order."""
        if lo > hi:
            return
        _cap, _free, _used, root = self._read_header(ctx)
        if not root:
            return
        node_id = root - 1
        node = self._read_node(ctx, node_id)
        while node.kind == INTERNAL:
            node_id = node.children[bisect.bisect_right(node.keys, lo)]
            node = self._read_node(ctx, node_id)
        while True:
            start = bisect.bisect_left(node.keys, lo)
            for i in range(start, node.count):
                if node.keys[i] > hi:
                    return
                yield node.keys[i], node.values[i]
            if not node.link:
                return
            node = self._read_node(ctx, node.link - 1)

    def iter_all(self, ctx: MemoryAccessor) -> Iterator[tuple[int, int]]:
        return self.range(ctx, -(2**63), 2**63 - 1)

    def depth(self, ctx: MemoryAccessor) -> int:
        """Tree height (0 = empty); a structural test helper."""
        _cap, _free, _used, root = self._read_header(ctx)
        if not root:
            return 0
        levels = 1
        node = self._read_node(ctx, root - 1)
        while node.kind == INTERNAL:
            levels += 1
            node = self._read_node(ctx, node.children[0])
        return levels
