"""An in-image chained hash index.

The index lives inside the protected database image and is maintained
exclusively through the prescribed read/update interface.  That gives it
the same guarantees as tuple data with zero special-case code:

* physical redo at restart recovers its pages like any others;
* codeword maintenance covers its updates, so a wild write into the index
  is detected by the same audits;
* its reads generate read-log records, so corruption read *through the
  index* is traced by delete-transaction recovery.

Layout (all little-endian):

* header: ``u32 bucket_count | u32 entry_capacity | u32 free_head |
  u32 never_used`` -- ``free_head`` is an entry id + 1 (0 = empty list);
  ``never_used`` supports lazy free-list initialization so formatting the
  index writes 16 bytes, not ``capacity x 16``.
* directory: ``bucket_count`` x u32 (head entry id + 1, 0 = empty bucket);
* entry pool: ``entry_capacity`` entries of ``i64 key | u32 slot |
  u32 next``.
"""

from __future__ import annotations

import struct

from repro.errors import ConfigError, OutOfSpaceError
from repro.mem.allocator import MemoryAccessor

_HEADER = struct.Struct("<IIII")
_ENTRY = struct.Struct("<qII")

ENTRY_SIZE = _ENTRY.size  # 16 bytes


def _mix(key: int) -> int:
    """Deterministic integer hash (stable across processes)."""
    key &= 0xFFFFFFFFFFFFFFFF
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    key = (key ^ (key >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return key ^ (key >> 31)


class HashIndex:
    """Fixed-capacity chained hash index over ``int -> slot`` mappings."""

    HEADER_SIZE = _HEADER.size

    def __init__(self, base: int, bucket_count: int, entry_capacity: int) -> None:
        if bucket_count <= 0 or entry_capacity <= 0:
            raise ConfigError("bucket_count and entry_capacity must be positive")
        self.base = base
        self.bucket_count = bucket_count
        self.entry_capacity = entry_capacity
        self.directory_base = base + self.HEADER_SIZE
        self.pool_base = self.directory_base + 4 * bucket_count

    @staticmethod
    def size_for(bucket_count: int, entry_capacity: int) -> int:
        return HashIndex.HEADER_SIZE + 4 * bucket_count + ENTRY_SIZE * entry_capacity

    @property
    def size(self) -> int:
        return self.size_for(self.bucket_count, self.entry_capacity)

    def format(self, ctx: MemoryAccessor) -> None:
        ctx.update(
            self.base, _HEADER.pack(self.bucket_count, self.entry_capacity, 0, 0)
        )

    # --------------------------------------------------------- geometry

    def _bucket_address(self, key: int) -> int:
        return self.directory_base + 4 * (_mix(key) % self.bucket_count)

    def _entry_address(self, entry_id: int) -> int:
        return self.pool_base + ENTRY_SIZE * entry_id

    # ------------------------------------------------------- operations

    def insert(self, ctx: MemoryAccessor, key: int, slot: int) -> None:
        entry_id = self._allocate_entry(ctx)
        bucket_address = self._bucket_address(key)
        head = struct.unpack("<I", ctx.read(bucket_address, 4))[0]
        ctx.update(self._entry_address(entry_id), _ENTRY.pack(key, slot, head))
        ctx.update(bucket_address, struct.pack("<I", entry_id + 1))

    def lookup(self, ctx: MemoryAccessor, key: int) -> int | None:
        """Return the slot mapped to ``key``, or None."""
        bucket_address = self._bucket_address(key)
        head = struct.unpack("<I", ctx.read(bucket_address, 4))[0]
        while head:
            entry_id = head - 1
            entry_key, slot, nxt = _ENTRY.unpack(
                ctx.read(self._entry_address(entry_id), ENTRY_SIZE)
            )
            if entry_key == key:
                return slot
            head = nxt
        return None

    def delete(self, ctx: MemoryAccessor, key: int) -> bool:
        """Unlink the first entry for ``key``; returns False if absent."""
        bucket_address = self._bucket_address(key)
        prev_address = bucket_address
        head = struct.unpack("<I", ctx.read(bucket_address, 4))[0]
        while head:
            entry_id = head - 1
            entry_address = self._entry_address(entry_id)
            entry_key, _slot, nxt = _ENTRY.unpack(ctx.read(entry_address, ENTRY_SIZE))
            if entry_key == key:
                ctx.update(prev_address, struct.pack("<I", nxt))
                self._free_entry(ctx, entry_id)
                return True
            prev_address = entry_address + 12  # the 'next' field of this entry
            head = nxt
        return False

    # -------------------------------------------------- entry free list

    def _allocate_entry(self, ctx: MemoryAccessor) -> int:
        buckets, capacity, free_head, never_used = _HEADER.unpack(
            ctx.read(self.base, self.HEADER_SIZE)
        )
        if free_head:
            entry_id = free_head - 1
            nxt = struct.unpack(
                "<I", ctx.read(self._entry_address(entry_id) + 12, 4)
            )[0]
            ctx.update(self.base, _HEADER.pack(buckets, capacity, nxt, never_used))
            return entry_id
        if never_used < capacity:
            ctx.update(
                self.base, _HEADER.pack(buckets, capacity, free_head, never_used + 1)
            )
            return never_used
        raise OutOfSpaceError(
            f"hash index at {self.base:#x} is full ({capacity} entries)"
        )

    def _free_entry(self, ctx: MemoryAccessor, entry_id: int) -> None:
        buckets, capacity, free_head, never_used = _HEADER.unpack(
            ctx.read(self.base, self.HEADER_SIZE)
        )
        ctx.update(self._entry_address(entry_id) + 12, struct.pack("<I", free_head))
        ctx.update(self.base, _HEADER.pack(buckets, capacity, entry_id + 1, never_used))
