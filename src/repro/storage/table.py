"""Tables: fixed-size records, slot allocation, optional hash index.

Every table method is a multi-level *operation* (Section 2.1): it begins
an operation, performs its physical updates through the prescribed
interface, and commits the operation with a logical undo description that
the recovery machinery can execute to compensate it.  Table methods are
therefore exactly the level-1 operations of the paper's model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError, TransactionError
from repro.mem.allocator import SlotAllocator
from repro.storage.index import HashIndex
from repro.storage.schema import FieldType, Schema
from repro.txn.locks import LockMode
from repro.txn.transaction import Transaction
from repro.wal.records import LogicalUndo

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database


class TxnAccessor:
    """Adapts a transaction to the allocator/index accessor protocol."""

    __slots__ = ("db", "txn")

    def __init__(self, db: "Database", txn: Transaction) -> None:
        self.db = db
        self.txn = txn

    def read(self, address: int, length: int) -> bytes:
        return self.db.manager.read(self.txn, address, length)

    def update(self, address: int, new_bytes: bytes) -> None:
        self.db.manager.update(self.txn, address, new_bytes)


class Table:
    """A fixed-capacity table of fixed-size records."""

    def __init__(
        self,
        db: "Database",
        name: str,
        schema: Schema,
        capacity: int,
        key_field: str | None,
        allocator: SlotAllocator,
        index: HashIndex | None,
    ) -> None:
        if key_field is not None:
            field = schema.field(key_field)
            if field.type not in (FieldType.INT64, FieldType.UINT32):
                raise ConfigError(
                    f"key field {key_field!r} must be an integer type"
                )
        self.db = db
        self.name = name
        self.schema = schema
        self.capacity = capacity
        self.key_field = key_field
        self.allocator = allocator
        self.index = index

    # ----------------------------------------------------------- helpers

    def _ctx(self, txn: Transaction) -> TxnAccessor:
        return TxnAccessor(self.db, txn)

    def record_address(self, slot: int) -> int:
        return self.allocator.slot_address(slot)

    def _record_key(self, slot: int) -> str:
        return f"{self.name}:{slot}"

    def _key_of(self, record: bytes) -> int:
        offset, size = self.schema.field_range(self.key_field)
        return self.schema.decode_field(self.key_field, record[offset : offset + size])

    # -------------------------------------------------------- operations

    def insert(self, txn: Transaction, values: dict) -> int:
        """Insert a record; returns its slot id."""
        mgr = self.db.manager
        record = self.schema.encode(values)
        mgr.begin_operation(txn, f"{self.name}:insert")
        try:
            ctx = self._ctx(txn)
            mgr.lock(txn, f"{self.name}:allocator", LockMode.EXCLUSIVE, duration="op")
            slot = self.allocator.allocate(ctx)
            op = txn.current_op
            op.object_key = self._record_key(slot)
            mgr.lock(txn, op.object_key, LockMode.EXCLUSIVE)
            mgr.update(txn, self.record_address(slot), record)
            self.db.meter.charge("record_write")
            if self.index is not None:
                self.db.meter.charge("index_update")
                self.index.insert(ctx, self._key_of(record), slot)
            self.db.note_write(txn, self.name, slot, record)
            mgr.commit_operation(txn, LogicalUndo("undo_insert", (self.name, slot)))
            return slot
        except Exception:
            mgr.abort_operation(txn)
            raise

    def insert_at(self, txn: Transaction, slot: int, record: bytes) -> None:
        """Re-insert a record at a specific slot (logical undo of delete)."""
        mgr = self.db.manager
        mgr.begin_operation(txn, self._record_key(slot))
        try:
            ctx = self._ctx(txn)
            mgr.lock(txn, f"{self.name}:allocator", LockMode.EXCLUSIVE, duration="op")
            mgr.lock(txn, self._record_key(slot), LockMode.EXCLUSIVE)
            self.allocator.allocate_at(ctx, slot)
            mgr.update(txn, self.record_address(slot), record)
            self.db.meter.charge("record_write")
            if self.index is not None:
                self.db.meter.charge("index_update")
                self.index.insert(ctx, self._key_of(record), slot)
            self.db.note_write(txn, self.name, slot, record)
            mgr.commit_operation(txn, LogicalUndo("undo_insert", (self.name, slot)))
        except Exception:
            mgr.abort_operation(txn)
            raise

    def read(self, txn: Transaction, slot: int) -> dict:
        """Read a record by slot id."""
        return self.schema.decode(self.read_bytes(txn, slot))

    def read_bytes(self, txn: Transaction, slot: int) -> bytes:
        mgr = self.db.manager
        mgr.lock(txn, self._record_key(slot), LockMode.SHARED)
        ctx = self._ctx(txn)
        if not self.allocator.is_allocated(ctx, slot):
            raise ConfigError(f"{self.name} slot {slot} is not allocated")
        self.db.meter.charge("record_read")
        record = mgr.read(txn, self.record_address(slot), self.schema.record_size)
        self.db.note_read(txn, self.name, slot, record)
        return record

    def update(self, txn: Transaction, slot: int, values: dict) -> None:
        """Update the given fields of a record in place.

        A value may be a callable, in which case it receives the field's
        current value and returns the new one -- the idiomatic
        read-modify-write (``balance += delta``) with a single prescribed
        read of the record.

        A multi-field update opens *one* multi-region update window over
        all the target field ranges (``begin_updates``), so the storage
        layer gets the batched undo capture and the single vectorized
        codeword fold without callers configuring ``update_batch`` --
        meter-identical, event for event, to the scalar window-per-field
        path (``_update_scalar``, kept as the identity-test reference).
        Under ``update_batch > 1`` the scalar path is used instead: its
        per-field ``mgr.update`` calls feed the manager's coalescing
        window, which may batch *across* record updates -- strictly more
        coalescing than one window per record.
        """
        if not values:
            raise TransactionError("update with no fields")
        mgr = self.db.manager
        if len(values) > 1 and mgr.update_batch == 1:
            self._update_batched(txn, slot, values)
            return
        self._update_scalar(txn, slot, values)

    def _update_scalar(self, txn: Transaction, slot: int, values: dict) -> None:
        """Window-per-field reference path (and the coalescing feeder)."""
        mgr = self.db.manager
        mgr.begin_operation(txn, self._record_key(slot))
        try:
            ctx = self._ctx(txn)
            mgr.lock(txn, self._record_key(slot), LockMode.EXCLUSIVE)
            if not self.allocator.is_allocated(ctx, slot):
                raise ConfigError(f"{self.name} slot {slot} is not allocated")
            base = self.record_address(slot)
            self.db.meter.charge("record_read")
            old_record = mgr.read(txn, base, self.schema.record_size)
            self.db.note_read(txn, self.name, slot, old_record)
            undo_args: list = [self.name, slot]
            new_record = bytearray(old_record)
            for name in sorted(values, key=self.schema.offset_of):
                offset, size = self.schema.field_range(name)
                value = values[name]
                if callable(value):
                    current = self.schema.decode_field(
                        name, old_record[offset : offset + size]
                    )
                    value = value(current)
                encoded = self.schema.encode_field(name, value)
                undo_args.extend([offset, old_record[offset : offset + size]])
                mgr.update(txn, base + offset, encoded)
                new_record[offset : offset + size] = encoded
            self.db.meter.charge("record_write")
            self.db.note_write(txn, self.name, slot, bytes(new_record))
            mgr.commit_operation(
                txn, LogicalUndo("undo_update", tuple(undo_args))
            )
        except Exception:
            mgr.abort_operation(txn)
            raise

    def _update_batched(self, txn: Transaction, slot: int, values: dict) -> None:
        """One ``begin_updates`` window over every updated field range."""
        mgr = self.db.manager
        mgr.begin_operation(txn, self._record_key(slot))
        try:
            ctx = self._ctx(txn)
            mgr.lock(txn, self._record_key(slot), LockMode.EXCLUSIVE)
            if not self.allocator.is_allocated(ctx, slot):
                raise ConfigError(f"{self.name} slot {slot} is not allocated")
            base = self.record_address(slot)
            self.db.meter.charge("record_read")
            old_record = mgr.read(txn, base, self.schema.record_size)
            self.db.note_read(txn, self.name, slot, old_record)
            names = sorted(values, key=self.schema.offset_of)
            ranges = [self.schema.field_range(name) for name in names]
            # Field ranges are disjoint by schema construction, so they
            # satisfy the batch window's pairwise-disjoint requirement.
            mgr.begin_updates(
                txn, [(base + offset, size) for offset, size in ranges]
            )
            undo_args: list = [self.name, slot]
            new_record = bytearray(old_record)
            for name, (offset, size) in zip(names, ranges):
                value = values[name]
                if callable(value):
                    current = self.schema.decode_field(
                        name, old_record[offset : offset + size]
                    )
                    value = value(current)
                encoded = self.schema.encode_field(name, value)
                undo_args.extend([offset, old_record[offset : offset + size]])
                mgr.write(txn, base + offset, encoded)
                new_record[offset : offset + size] = encoded
            mgr.end_update(txn)
            self.db.meter.charge("record_write")
            self.db.note_write(txn, self.name, slot, bytes(new_record))
            mgr.commit_operation(
                txn, LogicalUndo("undo_update", tuple(undo_args))
            )
        except Exception:
            mgr.abort_operation(txn)
            raise

    def write_fields(self, txn: Transaction, slot: int, pairs: list[tuple[int, bytes]]) -> None:
        """Write raw ``(offset, bytes)`` pairs back (logical undo of update)."""
        mgr = self.db.manager
        mgr.begin_operation(txn, self._record_key(slot))
        try:
            mgr.lock(txn, self._record_key(slot), LockMode.EXCLUSIVE)
            base = self.record_address(slot)
            undo_args: list = [self.name, slot]
            for offset, data in pairs:
                self.db.meter.charge("record_read")
                current = mgr.read(txn, base + offset, len(data))
                undo_args.extend([offset, current])
                mgr.update(txn, base + offset, data)
            self.db.meter.charge("record_write")
            record = self.db.memory.read(base, self.schema.record_size)
            self.db.note_write(txn, self.name, slot, record)
            mgr.commit_operation(txn, LogicalUndo("undo_update", tuple(undo_args)))
        except Exception:
            mgr.abort_operation(txn)
            raise

    def delete(self, txn: Transaction, slot: int) -> None:
        """Delete a record; its slot returns to the allocator."""
        mgr = self.db.manager
        mgr.begin_operation(txn, self._record_key(slot))
        try:
            ctx = self._ctx(txn)
            mgr.lock(txn, self._record_key(slot), LockMode.EXCLUSIVE)
            mgr.lock(txn, f"{self.name}:allocator", LockMode.EXCLUSIVE, duration="op")
            self.db.meter.charge("record_read")
            old_record = mgr.read(txn, self.record_address(slot), self.schema.record_size)
            self.db.note_read(txn, self.name, slot, old_record)
            if self.index is not None:
                self.db.meter.charge("index_update")
                self.index.delete(ctx, self._key_of(old_record))
            self.allocator.free(ctx, slot)
            self.db.note_write(txn, self.name, slot, None)
            mgr.commit_operation(
                txn, LogicalUndo("undo_delete", (self.name, slot, old_record))
            )
        except Exception:
            mgr.abort_operation(txn)
            raise

    def lookup(self, txn: Transaction, key: int) -> int | None:
        """Find a slot by primary key through the in-image hash index."""
        if self.index is None:
            raise ConfigError(f"table {self.name!r} has no index")
        self.db.meter.charge("index_probe")
        return self.index.lookup(self._ctx(txn), key)

    def range(self, txn: Transaction, lo: int, hi: int):
        """Yield ``(key, row_dict)`` for ``lo <= key <= hi`` in key order.

        Requires a B+tree primary index (``index_type="btree"``).  Every
        node traversal and record read goes through the prescribed
        interface, so range scans are protected and traced like any other
        access.
        """
        from repro.storage.btree import BTreeIndex

        if not isinstance(self.index, BTreeIndex):
            raise ConfigError(
                f"table {self.name!r} needs index_type='btree' for range scans"
            )
        ctx = self._ctx(txn)
        for key, slot in self.index.range(ctx, lo, hi):
            yield key, self.read(txn, slot)

    def scan_slots(self, txn: Transaction):
        """Yield allocated slot ids."""
        return self.allocator.iter_allocated(self._ctx(txn))

    def row_count(self, txn: Transaction) -> int:
        return self.allocator.allocated_count(self._ctx(txn))
