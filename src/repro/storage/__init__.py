"""Relational layer: schemas, tables, in-image hash indexes, the Database facade."""

from repro.storage.schema import Field, FieldType, Schema
from repro.storage.index import HashIndex
from repro.storage.table import Table
from repro.storage.database import Database, DBConfig

__all__ = ["Field", "FieldType", "Schema", "HashIndex", "Table", "Database", "DBConfig"]
