"""Fixed-size record schemas.

Dali lays records out as fixed-size slots ("the efficient layout of
fixed-size records", Section 2); the TPC-B tables of the performance study
all use 100-byte records.  A :class:`Schema` maps field names to offsets
inside the slot so a balance update touches only the eight bytes of the
balance field -- update granularity matters for codeword maintenance cost.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigError


class FieldType(Enum):
    INT64 = "int64"
    UINT32 = "uint32"
    FLOAT64 = "float64"
    CHAR = "char"  # fixed-length byte string, NUL padded

    @property
    def struct_code(self) -> str:
        return {"int64": "q", "uint32": "I", "float64": "d"}[self.value]


@dataclass(frozen=True)
class Field:
    """One fixed-size field; ``size`` is required (and only valid) for CHAR."""

    name: str
    type: FieldType
    size: int = 0

    def __post_init__(self) -> None:
        if self.type is FieldType.CHAR:
            if self.size <= 0:
                raise ConfigError(f"CHAR field {self.name!r} needs a positive size")
        elif self.size:
            raise ConfigError(f"size is only valid for CHAR fields: {self.name!r}")

    @property
    def byte_size(self) -> int:
        if self.type is FieldType.CHAR:
            return self.size
        return struct.calcsize("<" + self.type.struct_code)


class Schema:
    """An ordered set of fields with computed offsets."""

    def __init__(self, fields: list[Field]) -> None:
        if not fields:
            raise ConfigError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate field names in schema: {names}")
        self.fields = tuple(fields)
        self._offsets: dict[str, int] = {}
        self._by_name: dict[str, Field] = {}
        offset = 0
        for f in fields:
            self._offsets[f.name] = offset
            self._by_name[f.name] = f
            offset += f.byte_size
        self.record_size = offset

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(f"no field named {name!r}") from None

    def offset_of(self, name: str) -> int:
        self.field(name)
        return self._offsets[name]

    def field_range(self, name: str) -> tuple[int, int]:
        """``(offset, byte_size)`` of a field within the record."""
        f = self.field(name)
        return self._offsets[name], f.byte_size

    # ------------------------------------------------------------ codec

    def encode_field(self, name: str, value) -> bytes:
        f = self.field(name)
        if f.type is FieldType.CHAR:
            if isinstance(value, str):
                value = value.encode("utf-8")
            if len(value) > f.size:
                raise ConfigError(
                    f"value for {name!r} is {len(value)} bytes, field holds {f.size}"
                )
            return value.ljust(f.size, b"\x00")
        return struct.pack("<" + f.type.struct_code, value)

    def decode_field(self, name: str, data: bytes):
        f = self.field(name)
        if f.type is FieldType.CHAR:
            return bytes(data).rstrip(b"\x00")
        return struct.unpack("<" + f.type.struct_code, data)[0]

    def encode(self, values: dict) -> bytes:
        """Encode a full record; missing fields default to zero/empty."""
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise ConfigError(f"unknown fields: {sorted(unknown)}")
        parts = []
        for f in self.fields:
            value = values.get(f.name)
            if value is None:
                value = b"" if f.type is FieldType.CHAR else 0
            parts.append(self.encode_field(f.name, value))
        return b"".join(parts)

    def decode(self, record: bytes) -> dict:
        if len(record) != self.record_size:
            raise ConfigError(
                f"record is {len(record)} bytes, schema says {self.record_size}"
            )
        values = {}
        for f in self.fields:
            offset = self._offsets[f.name]
            values[f.name] = self.decode_field(
                f.name, record[offset : offset + f.byte_size]
            )
        return values

    def to_dict(self) -> dict:
        """JSON-friendly description (persisted in the catalog)."""
        return {
            "fields": [
                {"name": f.name, "type": f.type.value, "size": f.size}
                for f in self.fields
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        return cls(
            [
                Field(f["name"], FieldType(f["type"]), f.get("size", 0))
                for f in data["fields"]
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(f.name for f in self.fields)
        return f"Schema([{names}], record_size={self.record_size})"
