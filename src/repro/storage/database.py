"""The public Database facade.

Wires together every substrate: memory image, protection scheme,
system log, lock manager, transaction manager, tables, auditor and
checkpointer.  This is the API the examples and benchmarks program
against.

Typical use::

    config = DBConfig(dir="/tmp/db", scheme="read_logging")
    db = Database(config)
    db.create_table("account", schema, capacity=100_000, key_field="aid")
    db.start()

    txn = db.begin()
    slot = db.table("account").insert(txn, {"aid": 1, "balance": 100})
    db.commit(txn)

    result = db.checkpoint()      # audited, certified corruption-free
    report = db.audit()           # asynchronous codeword audit
    db.crash_with_corruption(report)   # if report is not clean
    db2, recovery = Database.recover(config)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field as dc_field

from repro.core.audit import AuditReport, Auditor
from repro.core.pipeline import ProtectionPipeline
from repro.core.schemes import ProtectionScheme, make_scheme
from repro.errors import (
    ConfigError,
    QuarantinedRegionError,
    ReproError,
    SimulatedCrash,
    TransactionError,
)
from repro.faults.crashpoints import CrashPointRegistry
from repro.mem.allocator import SlotAllocator
from repro.mem.memory import MemoryImage
from repro.runtime.scheduler import (
    THREADED,
    Scheduler,
    resolve_scheduler_mode,
)
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import CostModel, DEFAULT_COSTS
from repro.storage.btree import BTreeIndex
from repro.storage.index import HashIndex
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.txn.locks import LockManager
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction
from repro.wal.records import LogicalUndo
from repro.wal.system_log import SystemLog

CATALOG_FILE = "catalog.json"
LOG_FILE = "system.log"
CORRUPTION_NOTE_FILE = "corruption.note"


@dataclass
class DBConfig:
    """Configuration of a database instance."""

    dir: str
    scheme: str = "baseline"
    scheme_params: dict = dc_field(default_factory=dict)
    page_size: int = 8192
    costs: CostModel = DEFAULT_COSTS
    record_history: bool = False
    #: hash-index directory size as a fraction of table capacity
    index_bucket_ratio: float = 0.5
    #: Group commit: one stable-log latch/flush pair covers up to this
    #: many commits.  1 (the default) is the paper's flush-per-commit
    #: discipline, meter-identical to pre-group-commit behaviour; with
    #: N > 1 a crash can lose the last N-1 reported commits (restart
    #: recovery rolls them back like commits torn mid-flush).
    group_commit_size: int = 1
    #: Audit scheduling: ``"full"`` folds every region on every audit
    #: (the paper's checkpoint audit); ``"incremental"`` folds only
    #: regions dirtied through the prescribed interface since the last
    #: clean audit, with a full sweep every ``full_sweep_every``-th
    #: audit.  A wild write is precisely a write that does NOT mark the
    #: dirty set, so the full-sweep cadence bounds its detection latency
    #: -- it is a correctness knob, not a tuning knob.
    audit_mode: str = "full"
    full_sweep_every: int = 8
    #: Run the full-sweep certification fold of ``audit_mode="incremental"``
    #: in a worker thread (numpy releases the GIL during the fold), so the
    #: escalation audit overlaps the mutator instead of stalling it.  The
    #: sweep started at one full-sweep cadence point joins at the next (or
    #: at the next checkpoint, whichever comes first); regions dirtied
    #: while it ran are re-checked synchronously at join, and ``Audit_SN``
    #: advances only to the sweep's *begin* LSN -- the same conservative
    #: semantics as the round-robin incremental sweep.
    background_sweeps: bool = False
    #: Opt-in write batching: consecutive ``update()`` calls inside one
    #: operation coalesce into a multi-region update window of up to this
    #: many regions, closed as one batch (one bulk undo capture, one
    #: vectorized codeword delta-fold, bulk meter charges).  1 keeps the
    #: scalar window-per-update path; any N is meter- and byte-identical
    #: to it on committed workloads (property-tested).
    update_batch: int = 1
    #: Segment storage: ``"heap"`` (default) keeps segments in bytearrays;
    #: ``"mmap"`` maps each segment onto a sparse file under ``image_path``
    #: (default ``<dir>/image``), so databases larger than RAM work.  The
    #: backing file models volatile memory -- it is recreated zeroed on
    #: every (re)start and recovery loads state from the checkpoint, never
    #: from the backing file.
    image_backing: str = "heap"
    image_path: str | None = None
    #: Corrupt-region quarantine (graceful degradation): a failed audit or
    #: precheck records the corrupt regions in the maintainer's quarantine
    #: set instead of requiring an immediate crash; later prescribed reads
    #: overlapping a quarantined region raise
    #: :class:`~repro.errors.QuarantinedRegionError`, and routine audits
    #: skip-and-report quarantined regions rather than re-failing on them.
    #: Checkpoint *certification* never skips -- an image with known-bad
    #: bytes must not certify.  Requires a codeword scheme.
    quarantine: bool = False
    #: With repair enabled (implies ``quarantine``), a read overlapping a
    #: quarantined region transparently repairs it first -- checkpoint
    #: image + overlapping log records, the Section 4.1/4.2 cache-recovery
    #: machinery -- and then proceeds instead of raising.
    quarantine_repair: bool = False
    #: Task scheduler mode (see :mod:`repro.runtime.scheduler`).
    #: ``"auto"`` keeps pre-scheduler behaviour: ``"threaded"`` iff
    #: ``background_sweeps`` is on, ``"deterministic"`` otherwise.
    #: Deterministic mode runs every scheduled task inline at its trigger
    #: point (meter-identical to the historical inline code, property-
    #: tested); threaded mode backs background folds with worker threads
    #: and is what the serving front-end (:mod:`repro.serve`) requires.
    scheduler_mode: str = "auto"
    #: Optional group-commit deadline: in threaded mode, a ticker flushes
    #: a non-empty commit window at most this many milliseconds after it
    #: opened, bounding commit-acknowledgement latency when traffic is too
    #: light to fill ``group_commit_size``.  ``None`` disables the ticker;
    #: deterministic mode has no wall clock, so the deadline is inert
    #: there by design.
    group_commit_deadline_ms: int | None = None


@dataclass
class _TableDef:
    name: str
    schema: Schema
    capacity: int
    key_field: str | None
    indexed: bool
    index_type: str = "hash"


class Database:
    """A main-memory database with pluggable corruption protection."""

    def __init__(
        self, config: DBConfig, crashpoints: CrashPointRegistry | None = None
    ) -> None:
        self.config = config
        #: Deterministic fault hooks at every durability boundary; inert
        #: unless a test or campaign arms a point.  Shared with the system
        #: log, checkpointer and recovery.
        self.crashpoints = crashpoints if crashpoints is not None else CrashPointRegistry()
        if config.group_commit_size < 1:
            raise ConfigError(
                f"group_commit_size must be >= 1: {config.group_commit_size}"
            )
        if config.audit_mode not in ("full", "incremental"):
            raise ConfigError(
                f"audit_mode must be 'full' or 'incremental': {config.audit_mode!r}"
            )
        if config.full_sweep_every < 1:
            raise ConfigError(
                f"full_sweep_every must be >= 1: {config.full_sweep_every}"
            )
        if config.update_batch < 1:
            raise ConfigError(f"update_batch must be >= 1: {config.update_batch}")
        if config.background_sweeps and config.audit_mode != "incremental":
            raise ConfigError(
                "background_sweeps only makes sense with audit_mode="
                "'incremental' (it offloads the full-sweep escalation)"
            )
        # Validate eagerly (ConfigError at construction, like every other
        # knob); the scheduler itself is built per log/manager epoch.
        # Note background_sweeps under an explicit "deterministic" mode is
        # legal: the sweep fold defers and runs inline at its join point,
        # same verdict and same meter charges, no threads.
        self._scheduler_mode = resolve_scheduler_mode(
            config.scheduler_mode, config.background_sweeps
        )
        if (
            config.group_commit_deadline_ms is not None
            and config.group_commit_deadline_ms < 1
        ):
            raise ConfigError(
                "group_commit_deadline_ms must be >= 1 or None: "
                f"{config.group_commit_deadline_ms}"
            )
        os.makedirs(config.dir, exist_ok=True)
        self.clock = VirtualClock()
        self.meter = Meter(self.clock, config.costs)
        backing_dir = None
        if config.image_backing == "mmap":
            backing_dir = config.image_path or os.path.join(config.dir, "image")
        self.memory = MemoryImage(
            page_size=config.page_size,
            backing=config.image_backing,
            backing_dir=backing_dir,
        )
        # Every config -- single scheme or "+"-stacked -- is normalised to
        # one ProtectionPipeline; the manager, auditor and recovery layers
        # dispatch to the pipeline object only.
        built = make_scheme(config.scheme, **dict(config.scheme_params))
        self.pipeline: ProtectionPipeline = (
            built
            if isinstance(built, ProtectionPipeline)
            else ProtectionPipeline([built])
        )
        self.quarantine_enabled = bool(config.quarantine or config.quarantine_repair)
        if self.quarantine_enabled:
            if self.pipeline.maintainer is None:
                raise ConfigError(
                    "quarantine needs a codeword scheme: without a codeword "
                    "table there are no protection regions to quarantine"
                )
            self.pipeline.maintainer.quarantine_on_detect = True
        self.locks = LockManager()
        self.system_log: SystemLog | None = None
        self.manager: TransactionManager | None = None
        self.auditor: Auditor | None = None
        self.scheduler: Scheduler | None = None
        self.checkpointer = None  # set in start()/recover()
        self.tables: dict[str, Table] = {}
        self._table_defs: list[_TableDef] = []
        self._started = False
        self._crashed = False
        self._closed = False
        self.history = None
        if config.record_history:
            from repro.recovery.history import HistoryRecorder

            self.history = HistoryRecorder()
        self.stats = {"reads": 0, "writes": 0}

    @property
    def scheme(self) -> ProtectionScheme:
        """The protection configuration seen through the hook interface.

        For a single-scheme config this is the bare scheme object (so
        scheme-specific surfaces like ``precheck_count`` or ``mmu`` stay
        reachable); for a stacked config it is the pipeline itself, whose
        capability metadata is the fold over its members.
        """
        return self.pipeline.sole or self.pipeline

    # ------------------------------------------------------------ setup

    def create_table(
        self,
        name: str,
        schema: Schema,
        capacity: int,
        key_field: str | None = None,
        indexed: bool = True,
        index_type: str = "hash",
    ) -> None:
        """Define a table; call before :meth:`start`.

        ``index_type`` selects the in-image primary index: ``"hash"``
        (chained hash, point lookups) or ``"btree"`` (B+tree, point
        lookups plus ordered :meth:`Table.range` scans).
        """
        if self._started:
            raise ConfigError("create_table must be called before start()")
        if any(d.name == name for d in self._table_defs):
            raise ConfigError(f"table {name!r} already defined")
        if indexed and key_field is None:
            raise ConfigError(f"indexed table {name!r} needs a key_field")
        if index_type not in ("hash", "btree"):
            raise ConfigError(f"index_type must be 'hash' or 'btree': {index_type!r}")
        self._table_defs.append(
            _TableDef(name, schema, capacity, key_field, indexed, index_type)
        )

    def start(self) -> None:
        """Lay out memory, format on-image structures, take checkpoint 0."""
        self._require_not_started()
        self._build_layout()
        self._write_catalog()
        self._open_log_and_manager()
        self.pipeline.startup()
        self._format_structures()
        # Everything is dirty with respect to both checkpoint images.
        self.memory.dirty_pages.mark_all_dirty(self.memory.iter_pages())
        result = self.checkpointer.checkpoint()
        if not result.certified:  # pragma: no cover - fresh image is clean
            raise ReproError("initial checkpoint failed certification")
        self._started = True

    @classmethod
    def recover(
        cls,
        config: DBConfig,
        crashpoints: CrashPointRegistry | None = None,
        in_doubt_resolver=None,
    ):
        """Recover a database from its directory after a crash.

        Returns ``(database, recovery_report)``.  If a corruption note is
        present (a failed audit crashed the system), or the scheme logs
        read checksums (Section 4.3 says to run corruption recovery on
        every restart in that case), delete-transaction recovery runs;
        otherwise normal Dali restart recovery does.

        ``crashpoints`` (optional) arms deterministic crash points for the
        run; if one fires mid-recovery the half-recovered shell is crashed
        (its log handle closed) before the
        :class:`~repro.errors.SimulatedCrash` propagates, so the caller
        can simply ``recover`` again -- recovery is idempotent across
        every registered crash point.

        ``in_doubt_resolver`` (optional) is a ``gid -> bool`` callable
        consulted for prepared 2PC branches found on the log (the shard
        router passes its durable decision log); absent or unknown gids
        are presumed aborted.
        """
        from repro.recovery.restart import RestartRecovery, load_corruption_note

        db = cls(config, crashpoints=crashpoints)
        db._load_catalog()
        db._build_layout()
        db._open_log_and_manager()
        corruption = load_corruption_note(db)
        recovery = RestartRecovery(db, corruption, in_doubt_resolver=in_doubt_resolver)
        try:
            report = recovery.run()
        except SimulatedCrash:
            db.crash()
            raise
        db._started = True
        return db, report

    def _require_not_started(self) -> None:
        if self._started:
            raise ConfigError("database already started")

    def _build_layout(self) -> None:
        """Create segments, allocators and indexes from the table defs."""
        for table_def in self._table_defs:
            name = table_def.name
            record_size = table_def.schema.record_size
            data_seg = self.memory.add_segment(
                f"{name}.data", table_def.capacity * record_size, kind="data"
            )
            allocator = SlotAllocator(
                control_base=0,  # patched below once the segment exists
                data_base=data_seg.base,
                slot_count=table_def.capacity,
                slot_size=record_size,
            )
            ctl_seg = self.memory.add_segment(
                f"{name}.ctl", allocator.control_size, kind="control"
            )
            allocator = SlotAllocator(
                control_base=ctl_seg.base,
                data_base=data_seg.base,
                slot_count=table_def.capacity,
                slot_size=record_size,
            )
            index = None
            if table_def.indexed and table_def.index_type == "btree":
                nodes = BTreeIndex.nodes_for_entries(table_def.capacity)
                idx_seg = self.memory.add_segment(
                    f"{name}.idx", BTreeIndex.size_for(nodes), kind="data"
                )
                index = BTreeIndex(idx_seg.base, nodes)
            elif table_def.indexed:
                buckets = max(16, int(table_def.capacity * self.config.index_bucket_ratio))
                idx_size = HashIndex.size_for(buckets, table_def.capacity)
                idx_seg = self.memory.add_segment(f"{name}.idx", idx_size, kind="data")
                index = HashIndex(idx_seg.base, buckets, table_def.capacity)
            self.tables[name] = Table(
                db=self,
                name=name,
                schema=table_def.schema,
                capacity=table_def.capacity,
                key_field=table_def.key_field,
                allocator=allocator,
                index=index,
            )
        self.pipeline.attach(self.memory, self.meter)

    def _open_log_and_manager(self) -> None:
        from repro.recovery.checkpoint import Checkpointer

        deadline_ms = self.config.group_commit_deadline_ms
        self.scheduler = Scheduler(
            self._scheduler_mode,
            tick_interval_s=(deadline_ms / 1000.0) if deadline_ms else 0.01,
        )
        if self._scheduler_mode == THREADED:
            # Worker threads and serving sessions share this meter; the
            # lock keeps counts exact without touching the cost model.
            self.meter.enable_thread_safety()
        self.system_log = SystemLog(
            os.path.join(self.config.dir, LOG_FILE),
            self.meter,
            crashpoints=self.crashpoints,
        )
        self.manager = TransactionManager(
            self.memory,
            self.system_log,
            self.locks,
            self.pipeline,
            self.meter,
            group_commit_size=self.config.group_commit_size,
            update_batch=self.config.update_batch,
            scheduler=self.scheduler,
        )
        self.manager.undo_executor = self._dispatch_logical_undo
        if self.quarantine_enabled:
            self.manager.quarantine_guard = self._quarantine_guard
        self.auditor = Auditor(
            self.system_log,
            self.pipeline,
            audit_mode=self.config.audit_mode,
            full_sweep_every=self.config.full_sweep_every,
            background=self.config.background_sweeps,
            scheduler=self.scheduler,
        )
        self.checkpointer = Checkpointer(self)
        # The one drain order for shutdown/crash (paired with the log
        # close/crash in :meth:`close` / :meth:`crash`): make held-back
        # commits durable (clean shutdown only -- a crash loses the
        # window, restart recovery rolls those commits back), then settle
        # any in-flight sweep fold.
        self.scheduler.add_drain_step(
            "group_commit.flush", on_close=self.manager.flush_commits
        )
        self.scheduler.add_drain_step(
            "audit.sweeps",
            on_close=self.auditor.abandon_background_sweep,
            on_crash=self.auditor.abandon_background_sweep,
        )
        self.scheduler.register_tick(
            "audit.certify_join", ("checkpoint",), self.auditor.checkpoint_tick
        )
        if deadline_ms is not None:
            self.scheduler.register_tick(
                "group_commit.deadline",
                ("interval",),
                lambda _event: self.manager.flush_commits(),
            )

    def _format_structures(self) -> None:
        txn = self.manager.begin()
        for table in self.tables.values():
            self.manager.begin_operation(txn, f"{table.name}:format")
            ctx = table._ctx(txn)
            table.allocator.format(ctx)
            if table.index is not None:
                table.index.format(ctx)
            self.manager.commit_operation(txn, LogicalUndo("noop"))
        self.manager.commit(txn)

    # ---------------------------------------------------------- catalog

    def _write_catalog(self) -> None:
        catalog = {
            "page_size": self.config.page_size,
            "tables": [
                {
                    "name": d.name,
                    "schema": d.schema.to_dict(),
                    "capacity": d.capacity,
                    "key_field": d.key_field,
                    "indexed": d.indexed,
                    "index_type": d.index_type,
                }
                for d in self._table_defs
            ],
        }
        path = os.path.join(self.config.dir, CATALOG_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(catalog, handle, indent=2)
        os.replace(tmp, path)

    def _load_catalog(self) -> None:
        path = os.path.join(self.config.dir, CATALOG_FILE)
        if not os.path.exists(path):
            raise ConfigError(f"no catalog at {path}; nothing to recover")
        with open(path) as handle:
            catalog = json.load(handle)
        if catalog["page_size"] != self.config.page_size:
            raise ConfigError(
                f"page size mismatch: catalog {catalog['page_size']}, "
                f"config {self.config.page_size}"
            )
        for entry in catalog["tables"]:
            self._table_defs.append(
                _TableDef(
                    name=entry["name"],
                    schema=Schema.from_dict(entry["schema"]),
                    capacity=entry["capacity"],
                    key_field=entry["key_field"],
                    indexed=entry["indexed"],
                    index_type=entry.get("index_type", "hash"),
                )
            )

    # ------------------------------------------------------ transactions

    def begin(self) -> Transaction:
        self._require_usable()
        return self.manager.begin()

    def commit(self, txn: Transaction) -> None:
        self._require_usable()
        self.manager.commit(txn)
        if self.history is not None:
            self.history.on_commit(txn.txn_id)

    def abort(self, txn: Transaction) -> None:
        self._require_usable()
        self.manager.abort(txn)
        if self.history is not None:
            self.history.on_abort(txn.txn_id)

    def prepare(self, txn: Transaction, gid: str) -> None:
        """Vote yes on a 2PC branch (phase one); see
        :meth:`TransactionManager.prepare`."""
        self._require_usable()
        self.manager.prepare(txn, gid)

    def commit_prepared(self, txn: Transaction) -> None:
        self._require_usable()
        self.manager.commit_prepared(txn)
        if self.history is not None:
            self.history.on_commit(txn.txn_id)

    def abort_prepared(self, txn: Transaction) -> None:
        self._require_usable()
        self.manager.abort_prepared(txn)
        if self.history is not None:
            self.history.on_abort(txn.txn_id)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise ConfigError(f"no table named {name!r}") from None

    # ------------------------------------------- maintenance operations

    def checkpoint(self):
        """Take an audited ping-pong checkpoint; returns its result."""
        self._require_usable()
        return self.checkpointer.checkpoint()

    def audit(self, region_ids=None) -> AuditReport:
        """Run a codeword audit (no-op clean under baseline/hardware).

        With ``audit_mode="incremental"`` and no explicit region list,
        the auditor folds only dirty regions, escalating to a full sweep
        on the configured cadence (see :meth:`Auditor.run_dirty`).

        Under quarantine, already-quarantined regions are skipped and
        reported (``report.quarantined_regions``) rather than re-failed,
        and any *newly* corrupt regions the audit finds are quarantined --
        the audit degrades the affected regions instead of forcing the
        whole system down.  Checkpoint certification never skips.
        """
        self._require_usable()
        skip = self.quarantine_enabled
        if region_ids is None and self.config.audit_mode == "incremental":
            report = self.auditor.run_dirty(skip_quarantined=skip)
        else:
            report = self.auditor.run(region_ids, skip_quarantined=skip)
        if skip and not report.clean:
            self.pipeline.maintainer.quarantine(report.corrupt_regions)
        return report

    def quarantined_regions(self) -> tuple[int, ...]:
        """Sorted ids of regions currently held in quarantine."""
        maintainer = self.pipeline.maintainer
        if maintainer is None:
            return ()
        return tuple(sorted(maintainer.quarantined))

    def repair_quarantined(self) -> int:
        """Repair every quarantined region from checkpoint + log.

        Runs the Section 4.1/4.2 cache-recovery machinery over the
        quarantine set and returns the number of regions repaired
        (repaired regions leave quarantine).
        """
        self._require_usable()
        regions = list(self.quarantined_regions())
        if not regions:
            return 0
        from repro.recovery.cache_recovery import repair_regions

        return repair_regions(self, regions)

    def _quarantine_guard(self, txn, address: int, length: int) -> None:
        """Reject or repair reads overlapping quarantined regions.

        Installed on the transaction manager when quarantine is enabled.
        A read that touches a quarantined region either raises
        :class:`QuarantinedRegionError` (default) or -- under
        ``quarantine_repair`` -- transparently repairs the regions from
        checkpoint + log and lets the read proceed against clean bytes.
        """
        regions = self.pipeline.maintainer.quarantined_overlapping(address, length)
        if not regions:
            return
        if self.config.quarantine_repair:
            from repro.recovery.cache_recovery import repair_regions

            repair_regions(self, regions)
            return
        raise QuarantinedRegionError(regions, address=address, length=length)

    def report(self) -> dict:
        """Structured status snapshot (see :mod:`repro.storage.report`)."""
        from repro.storage.report import status_report

        self._require_usable()
        return status_report(self)

    def status(self) -> str:
        """Human-readable status text."""
        from repro.storage.report import render_status

        self._require_usable()
        return render_status(self)

    def truncate_log(self, keep_from_lsn: int | None = None) -> int:
        """Reclaim stable log space below the anchored checkpoint.

        Restart recovery never reads below the anchor's ``CK_end``, so
        those records are dead weight -- unless archives exist: replaying
        an archive needs the log from *its* ``CK_end`` onward.  Pass the
        oldest archive's ``ck_end`` as ``keep_from_lsn`` to stay safe, or
        leave the default if no archives are kept.  Returns the number of
        records removed.
        """
        self._require_usable()
        cutoff = self.checkpointer.anchored_ck_end()
        if keep_from_lsn is not None:
            cutoff = min(cutoff, keep_from_lsn)
        return self.system_log.truncate_before(cutoff)

    def crash(self) -> None:
        """Simulate a process crash: volatile state is gone.

        The scheduler drains on its crash path (the group-commit window
        is *lost*, not flushed; in-flight sweep folds are settled and
        discarded), then the log tail is dropped and volatile transaction
        state cleared.  Idempotent.
        """
        if self._crashed:
            return
        if self.scheduler is not None:
            self.scheduler.shutdown(crash=True)
        elif self.auditor is not None:  # pragma: no cover - pre-start crash
            self.auditor.abandon_background_sweep()
        if self.system_log is not None:
            self.system_log.crash()
        self.locks.clear()
        if self.manager is not None:
            self.manager.att.clear()
        self._crashed = True

    def crash_with_corruption(self, report: AuditReport) -> None:
        """Record a failed audit in a corruption note, then crash.

        "On detecting an error, we simply note the region(s) failing the
        audit, and cause the database to crash, allowing corruption
        recovery to be handled as part of the subsequent restart
        recovery." (Section 4.3)
        """
        if report.clean:
            raise ConfigError("refusing to note corruption for a clean audit")
        note = {
            "corrupt_ranges": [list(r) for r in report.corrupt_byte_ranges],
            "audit_sn": self.auditor.last_clean_audit_lsn,
            "region_size": report.region_size,
        }
        path = os.path.join(self.config.dir, CORRUPTION_NOTE_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(note, handle)
        os.replace(tmp, path)
        self.crash()

    def close(self) -> None:
        """Clean shutdown with one fixed drain order; idempotent.

        The scheduler's close drain runs its registered steps in order --
        flush the group-commit window (held-back commits become durable),
        then settle any in-flight sweep fold -- and only then does the
        log close.  A second ``close()``, or a ``close()`` after
        ``crash()``, is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        if self._crashed:
            return
        if self.scheduler is not None:
            self.scheduler.shutdown(crash=False)
        elif self.auditor is not None:  # pragma: no cover - pre-start close
            self.auditor.abandon_background_sweep()
        if self.system_log is not None:
            self.system_log.close()
        self._crashed = True

    def _require_usable(self) -> None:
        if self._crashed:
            raise TransactionError("database has crashed; recover() it first")
        if self.manager is None:
            raise ConfigError("database not started")

    # -------------------------------------------------- logical undo ops

    def _dispatch_logical_undo(
        self, txn: Transaction, undo: LogicalUndo, lenient: bool = False
    ) -> None:
        """Execute a logical undo description from an op-commit record.

        ``lenient`` makes compensation idempotent for recovery paths: if
        the inverse operation's precondition no longer holds (the slot is
        already free / already occupied), the compensation was evidently
        applied by an earlier, logged recovery transaction, and is
        skipped.  Normal-processing rollback stays strict -- there a
        violated precondition is a bug, not a replay artifact.
        """
        ctx_txn = txn
        if undo.op_name == "undo_insert":
            table_name, slot = undo.args
            table = self.table(table_name)
            if lenient and not table.allocator.is_allocated(
                table._ctx(ctx_txn), slot
            ):
                return
            table.delete(txn, slot)
        elif undo.op_name == "undo_delete":
            table_name, slot, record = undo.args
            table = self.table(table_name)
            if lenient and table.allocator.is_allocated(table._ctx(ctx_txn), slot):
                return
            table.insert_at(txn, slot, record)
        elif undo.op_name == "undo_update":
            table_name, slot, *pairs = undo.args
            offsets = pairs[0::2]
            images = pairs[1::2]
            self.table(table_name).write_fields(
                txn, slot, list(zip(offsets, images))
            )
        else:
            raise TransactionError(f"unknown logical undo {undo.op_name!r}")

    # ----------------------------------------------------------- history

    def note_read(self, txn: Transaction, table: str, slot: int, value: bytes) -> None:
        self.stats["reads"] += 1
        if self.history is not None:
            self.history.on_read(txn.txn_id, table, slot, value)

    def note_write(
        self, txn: Transaction, table: str, slot: int, value: bytes | None
    ) -> None:
        self.stats["writes"] += 1
        if self.history is not None:
            self.history.on_write(txn.txn_id, table, slot, value)

    # ------------------------------------------------------------ paths

    def path(self, filename: str) -> str:
        return os.path.join(self.config.dir, filename)
