"""Addressing-error injection.

"One class of software error which has been shown to have a significant
impact on DBMS availability is the addressing error.  This class of error
includes copy overruns and wild writes through uninitialized pointers."
(Section 1)

The injector writes through :meth:`~repro.mem.memory.MemoryImage.poke`:
no logging, no codeword maintenance, no dirty tracking -- but the
simulated MMU still sees the write, so under the Hardware Protection
scheme an injected fault raises :class:`~repro.errors.ProtectionFault`
and the corruption is *prevented*, exactly as in the paper's model.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError, LogError

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database


def _frame_starts(path: str) -> list[int]:
    """Byte offset of every decodable ``(lsn, frame)`` in a stable log.

    Walks the file exactly like :meth:`SystemLog.scan` (8-byte LSN header
    then a CRC-framed record), stopping at the first undecodable frame,
    so trailing torn-tail garbage is not counted as a frame.
    """
    # Imported here, not at module top: the system log itself imports
    # ``repro.faults`` (for crash points), so a top-level wal import
    # would be circular.
    from repro.wal.records import decode_record

    with open(path, "rb") as handle:
        view = memoryview(handle.read())
    size = len(view)
    starts: list[int] = []
    offset = 0
    while offset + 8 <= size:
        start = offset
        try:
            _record, offset = decode_record(view, offset + 8, frozenset())
        except LogError:
            break
        starts.append(start)
    return starts


def tear_log_tail(
    path: str,
    cut: int | None = None,
    frames: int | None = None,
    rng: random.Random | None = None,
) -> bytes:
    """Chop the tail off a stable log file; returns the removed bytes.

    Two modes, mutually exclusive:

    * ``cut=N`` (or neither argument, for a random sliver): remove the
      last ``N`` bytes, usually leaving the file ending mid-frame -- the
      classic torn flush the frame CRC detects;
    * ``frames=K``: remove the last ``K`` whole frames at a frame
      boundary (plus any trailing undecodable garbage), leaving a
      *clean* shorter log -- the group-commit loss case, where a crash
      swallows whole buffered commits and no tear is ever detected.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ConfigError("stable log is empty; nothing to tear")
    if frames is not None:
        if cut is not None:
            raise ConfigError("pass cut= or frames=, not both")
        if frames <= 0:
            raise ConfigError(f"frames must be positive: {frames}")
        starts = _frame_starts(path)
        if frames > len(starts):
            raise ConfigError(
                f"log has only {len(starts)} whole frame(s); cannot tear "
                f"{frames}"
            )
        cut = size - starts[len(starts) - frames]
    elif cut is None:
        rng = rng if rng is not None else random.Random()
        cut = rng.randrange(1, min(size, 16) + 1)
    if not 0 < cut <= size:
        raise ConfigError(f"cut must be in [1, {size}]: {cut}")
    with open(path, "r+b") as handle:
        handle.seek(size - cut)
        removed = handle.read(cut)
        handle.truncate(size - cut)
    return removed


@dataclass(frozen=True)
class CorruptionEvent:
    """A record of one injected fault (ground truth for tests)."""

    kind: str
    address: int
    old: bytes
    new: bytes

    @property
    def length(self) -> int:
        return len(self.new)


class FaultInjector:
    """Injects direct physical corruption into a database image."""

    def __init__(self, db: "Database", seed: int | None = None) -> None:
        self.db = db
        self.rng = random.Random(seed)
        self.events: list[CorruptionEvent] = []

    # ------------------------------------------------------------ faults

    def wild_write(
        self,
        address: int | None = None,
        length: int = 8,
        data: bytes | None = None,
    ) -> CorruptionEvent:
        """A stray pointer write: random bytes at a (random) address."""
        if address is None:
            address = self._random_address(length)
        if data is None:
            data = self._differing_bytes(address, length)
        elif len(data) != length:
            length = len(data)
        old = self.db.memory.read(address, length)
        self.db.memory.poke(address, data)
        event = CorruptionEvent("wild_write", address, old, data)
        self.events.append(event)
        return event

    def bit_flip(self, address: int | None = None) -> CorruptionEvent:
        """Flip one random bit of one byte."""
        if address is None:
            address = self._random_address(1)
        old = self.db.memory.read(address, 1)
        flipped = bytes([old[0] ^ (1 << self.rng.randrange(8))])
        self.db.memory.poke(address, flipped)
        event = CorruptionEvent("bit_flip", address, old, flipped)
        self.events.append(event)
        return event

    def copy_overrun(self, table: str, slot: int, overrun: int = 16) -> CorruptionEvent:
        """A memcpy that runs ``overrun`` bytes past the end of a record.

        The bytes *within* the record are left alone (the copy itself was
        legitimate); the bytes past its end are clobbered.
        """
        if overrun <= 0:
            raise ConfigError("overrun must be positive")
        tbl = self.db.table(table)
        end = tbl.record_address(slot) + tbl.schema.record_size
        data = self._differing_bytes(end, overrun)
        old = self.db.memory.read(end, overrun)
        self.db.memory.poke(end, data)
        event = CorruptionEvent("copy_overrun", end, old, data)
        self.events.append(event)
        return event

    def torn_flush(
        self, cut: int | None = None, frames: int | None = None
    ) -> CorruptionEvent:
        """A crash mid-flush: the last bytes of a stable-log write are lost.

        Chops ``cut`` bytes (default: a random sliver of the final
        record) off the stable system log file, simulating a flush whose
        tail never reached disk.  Call after :meth:`Database.crash` --
        the next ``scan`` detects the tear via the frame CRC and sets
        ``torn_tail_detected``; restart recovery truncates it.

        ``frames=K`` instead removes the last ``K`` *whole* frames at a
        frame boundary, leaving a clean shorter log: the group-commit
        loss case, where a crash swallows entire buffered commits and no
        tear is detectable (see :func:`tear_log_tail`).

        The event's ``address`` is the surviving file length and ``old``
        holds the bytes that were torn off (ground truth for tests).
        """
        path = self.db.system_log.path
        size = os.path.getsize(path)
        removed = tear_log_tail(path, cut=cut, frames=frames, rng=self.rng)
        event = CorruptionEvent("torn_flush", size - len(removed), removed, b"")
        self.events.append(event)
        return event

    def corrupt_record(self, table: str, slot: int) -> CorruptionEvent:
        """Wild-write directly over a specific record (targeted tests)."""
        tbl = self.db.table(table)
        address = tbl.record_address(slot)
        return self.wild_write(address, tbl.schema.record_size)

    # -------------------------------------------------- transport faults

    def _ship_fault(self, transport, kind: str) -> CorruptionEvent:
        """Arm one transport fault and record it as ground truth.

        Transport faults damage bytes *in flight*, not the image, so the
        event's address/old/new carry no memory content -- the kind and
        the transport's own ``faults_applied`` list are the ground truth
        the replication campaign scores against.
        """
        transport.arm_fault(kind)
        event = CorruptionEvent(f"ship_{kind}", -1, b"", b"")
        self.events.append(event)
        return event

    def drop_batch(self, transport) -> CorruptionEvent:
        """The next ship batch vanishes in the network."""
        return self._ship_fault(transport, "drop")

    def duplicate_batch(self, transport) -> CorruptionEvent:
        """The next ship batch is delivered twice."""
        return self._ship_fault(transport, "duplicate")

    def reorder_batches(self, transport) -> CorruptionEvent:
        """The next ship batch arrives after its successor."""
        return self._ship_fault(transport, "reorder")

    def tear_batch(self, transport) -> CorruptionEvent:
        """The next ship batch arrives truncated (fails its CRC)."""
        return self._ship_fault(transport, "tear")

    # ----------------------------------------------------------- helpers

    def _random_address(self, length: int) -> int:
        data_segments = [s for s in self.db.memory.segments if s.kind == "data"]
        if not data_segments:
            raise ConfigError("no data segments to corrupt")
        segment = self.rng.choice(data_segments)
        max_offset = segment.size - length
        if max_offset < 0:
            # Fault longer than the segment: start at the segment base
            # (poke spans segments), clamped so the span stays in memory.
            return min(segment.base, max(0, self.db.memory.size - length))
        # randrange(max_offset + 1) so the fault can start at *every*
        # in-bounds offset, including the one that ends flush against the
        # segment's last byte.
        return segment.base + self.rng.randrange(max_offset + 1)

    def _differing_bytes(self, address: int, length: int) -> bytes:
        """Random bytes guaranteed to differ from current content."""
        current = self.db.memory.read(address, length)
        while True:
            data = bytes(self.rng.randrange(256) for _ in range(length))
            if data != current:
                return data
