"""Named crash points at every durability boundary.

The paper's recovery claims are about what survives a crash *at the worst
possible moment*: between the bytes of a log flush, between a checkpoint
image and its anchor, in the middle of recovery itself.  Hand-rolled
simulations of those moments (monkeypatched methods, manual file
truncation) drift from the real code paths; a crash point is the real
code path asking permission to continue.

The instrumented boundaries:

========================== =====================================================
``wal.flush.pre``          inside :meth:`SystemLog.flush`, after the latch and
                           the empty-tail early return, before any byte is
                           written -- the whole flush is lost
``wal.flush.mid``          after a *prefix* of the flush buffer reached disk --
                           the classic torn flush, composing with the frame-CRC
                           torn-tail detection (payload: ``keep_bytes`` or
                           ``keep_fraction``, default half the buffer)
``wal.flush.post``         after write+flush, before the in-memory counters
                           advance -- the bytes are durable, the process is not
``checkpoint.pre_image``   before ``_write_image`` of the next ping-pong image
``checkpoint.after_image`` image written, meta not
``checkpoint.after_meta``  image+meta written, certification audit not run
``checkpoint.pre_anchor``  certified, one ``os.replace`` short of anchored
``checkpoint.after_anchor`` anchor names the new image; crash is benign
``recovery.after_redo``    redo phase done, torn tail truncated, undo not begun
``recovery.mid_undo``      physical (level-0) undo applied and codewords
                           rebuilt; logical undo not begun
``recovery.after_undo``    undo complete (compensations logged), finish not
``recovery.pre_complete``  before amendments + the final recovery checkpoint
``archive.after_restore``  archive files copied over, replay not begun
``replica.before_ingest``  a ship batch passed CRC + sequencing checks, before
                           any of its frames reach the replica's own log -- the
                           whole batch is lost and must be retransmitted
``replica.after_ingest``   the batch's frames are durable in the replica's log,
                           the image has not been touched -- reopen replays
                           them from the replica's own stable log
``replica.after_apply``    batch applied to the image and codeword table
                           (volatile); durable state is the same as
                           ``after_ingest``
``promote.pre_sweep``      replay drained to the last contiguous LSN, the
                           certifying full sweep has not begun
``promote.after_sweep``    image certified, in-flight transactions not yet
                           rolled back, final checkpoint not taken
``twopc.pre_prepare``      inside participant ``prepare``, before the prepare
                           record is logged -- the branch is still active and
                           presumed abort
``twopc.after_prepare``    prepare record flushed, vote not yet reported --
                           the branch is in doubt and must ask the coordinator
``twopc.pre_decide``       all votes in, before the coordinator's decision
                           record is durable -- presumed abort
``twopc.after_decide``     decision durable at the coordinator, no participant
                           told yet -- recovery must re-deliver it
``twopc.after_first_commit`` one participant committed its branch, the other
                           still prepared -- the classic half-committed window
========================== =====================================================

The registry is a null object: every :class:`~repro.storage.database.Database`
owns one, and an un-armed ``reach`` is a dict lookup -- instrumented code
needs no ``if``.  Arming is one-shot: a point fires once, disarms itself,
and records the firing, so recovery re-runs after a simulated crash do not
crash again at the same place.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ConfigError, SimulatedCrash

#: Every crash point the runtime reaches, in rough execution order.
CRASH_POINTS: tuple[str, ...] = (
    "wal.flush.pre",
    "wal.flush.mid",
    "wal.flush.post",
    "checkpoint.pre_image",
    "checkpoint.after_image",
    "checkpoint.after_meta",
    "checkpoint.pre_anchor",
    "checkpoint.after_anchor",
    "recovery.after_redo",
    "recovery.mid_undo",
    "recovery.after_undo",
    "recovery.pre_complete",
    "archive.after_restore",
    "replica.before_ingest",
    "replica.after_ingest",
    "replica.after_apply",
    "promote.pre_sweep",
    "promote.after_sweep",
    "twopc.pre_prepare",
    "twopc.after_prepare",
    "twopc.pre_decide",
    "twopc.after_decide",
    "twopc.after_first_commit",
)

#: Points inside :meth:`RestartRecovery.run` -- the idempotence property
#: quantifies over exactly these (crash at any of them, re-run, converge).
RECOVERY_CRASH_POINTS: tuple[str, ...] = (
    "recovery.after_redo",
    "recovery.mid_undo",
    "recovery.after_undo",
    "recovery.pre_complete",
)

#: Points at the replica's replay and promotion boundaries -- the replica
#: idempotence property quantifies over these: crash the standby at any
#: of them, reopen it, resume shipping, and promotion converges to the
#: same certified image.  (``promote.*`` composes with the
#: ``recovery.mid_undo``/``recovery.pre_complete`` points, which
#: promotion also traverses through the shared undo/finish machinery.)
REPLICA_CRASH_POINTS: tuple[str, ...] = (
    "replica.before_ingest",
    "replica.after_ingest",
    "replica.after_apply",
    "promote.pre_sweep",
    "promote.after_sweep",
)

#: Points reached during normal forward processing (commit flushes and
#: checkpoints) -- what a fault campaign arms mid-workload.
FORWARD_CRASH_POINTS: tuple[str, ...] = (
    "wal.flush.pre",
    "wal.flush.mid",
    "wal.flush.post",
    "checkpoint.pre_image",
    "checkpoint.after_image",
    "checkpoint.after_meta",
    "checkpoint.pre_anchor",
    "checkpoint.after_anchor",
)

#: Points along a cross-shard two-phase commit, on both sides of the
#: decision write.  The atomicity property quantifies over these: crash a
#: transfer at any of them, recover every shard (with the coordinator's
#: decision log as the in-doubt resolver), and the funds are neither lost
#: nor doubled.
TWOPC_CRASH_POINTS: tuple[str, ...] = (
    "twopc.pre_prepare",
    "twopc.after_prepare",
    "twopc.pre_decide",
    "twopc.after_decide",
    "twopc.after_first_commit",
)

_VALID = frozenset(CRASH_POINTS)


@dataclass
class ArmedPoint:
    """One armed crash point: fire on the ``hit``-th traversal."""

    point: str
    hit: int
    payload: dict = field(default_factory=dict)


class CrashPointRegistry:
    """Arms, counts and fires named crash points.

    ``reach(point)`` is called by instrumented code every time execution
    passes the point.  If the point is armed and this is the armed
    traversal, the point disarms itself and a
    :class:`~repro.errors.SimulatedCrash` is raised -- unless the caller
    passed ``defer=True``, in which case the armed record is returned so
    the caller can perform the crash's side effects (e.g. write a torn
    prefix) before calling :meth:`crash` itself.
    """

    def __init__(self) -> None:
        self._armed: dict[str, ArmedPoint] = {}
        #: Traversal counts per point since construction/:meth:`reset`.
        self.hits: Counter[str] = Counter()
        #: Points that actually fired, in order.
        self.fired: list[str] = []

    # ------------------------------------------------------------ arming

    def arm(self, point: str, *, hit: int = 1, **payload) -> "CrashPointRegistry":
        """Arm ``point`` to fire on its ``hit``-th traversal *from now on*.

        ``hit`` counts cumulative traversals since the registry was
        created or :meth:`reset`; arm before the run you are aiming at.
        Extra keyword arguments ride along as the point's payload (e.g.
        ``keep_bytes`` for ``wal.flush.mid``).  Returns ``self`` so tests
        can write ``CrashPointRegistry().arm("recovery.after_redo")``.
        """
        self._validate(point)
        if hit < 1:
            raise ConfigError(f"hit must be >= 1: {hit}")
        self._armed[point] = ArmedPoint(point, hit, dict(payload))
        return self

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def armed_points(self) -> tuple[str, ...]:
        return tuple(sorted(self._armed))

    def reset(self) -> None:
        """Forget armed points, traversal counts and firing history."""
        self._armed.clear()
        self.hits.clear()
        self.fired.clear()

    # ------------------------------------------------------------ firing

    def reach(self, point: str, defer: bool = False) -> ArmedPoint | None:
        """Record a traversal of ``point``; fire if armed for this hit.

        Returns ``None`` when nothing fires.  With ``defer=True`` the
        armed record is returned instead of raising, and the caller must
        finish with :meth:`crash` after performing the crash's partial
        side effects.
        """
        self._validate(point)
        self.hits[point] += 1
        armed = self._armed.get(point)
        if armed is None or self.hits[point] < armed.hit:
            return None
        del self._armed[point]  # one-shot: never fire twice
        if defer:
            return armed
        self.crash(point)
        return None  # pragma: no cover - crash() always raises

    def crash(self, point: str) -> None:
        """Raise the :class:`SimulatedCrash` for a (deferred) firing."""
        self._validate(point)
        self.fired.append(point)
        raise SimulatedCrash(point, self.hits[point])

    # ----------------------------------------------------------- helpers

    @staticmethod
    def _validate(point: str) -> None:
        if point not in _VALID:
            known = ", ".join(CRASH_POINTS)
            raise ConfigError(f"unknown crash point {point!r}; known: {known}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrashPointRegistry(armed={sorted(self._armed)}, "
            f"fired={self.fired})"
        )
