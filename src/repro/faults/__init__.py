"""Fault injection: the addressing errors the paper defends against,
plus named crash points at every durability boundary, worker-level
faults (kill/hang/sever a shard worker -- what the shard supervisor
defends against) and the campaign runner that schedules both
(``repro.faults.campaign``, imported lazily to keep this package
light)."""

from repro.faults.crashpoints import (
    CRASH_POINTS,
    FORWARD_CRASH_POINTS,
    RECOVERY_CRASH_POINTS,
    CrashPointRegistry,
)
from repro.faults.injector import CorruptionEvent, FaultInjector, tear_log_tail
from repro.faults.workers import (
    hang_worker,
    kill_after_decision,
    kill_on_command,
    kill_worker,
    sever_pipe,
)

__all__ = [
    "FaultInjector",
    "CorruptionEvent",
    "tear_log_tail",
    "CrashPointRegistry",
    "CRASH_POINTS",
    "FORWARD_CRASH_POINTS",
    "RECOVERY_CRASH_POINTS",
    "hang_worker",
    "kill_after_decision",
    "kill_on_command",
    "kill_worker",
    "sever_pipe",
]
