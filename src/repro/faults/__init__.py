"""Fault injection: the addressing errors the paper defends against."""

from repro.faults.injector import CorruptionEvent, FaultInjector

__all__ = ["FaultInjector", "CorruptionEvent"]
