"""Worker-level fault injection: kill, hang, and sever shard workers.

The crash-point registry covers the *deterministic* failure study (an
armed point fires at an exact durability boundary, inproc).  This module
covers the *process-level* failure study the supervisor defends against:
a worker that dies mid-command, a worker that stops answering, a pipe
that breaks.  All helpers operate on a live
:class:`~repro.shard.router.ShardedDatabase` and are what the chaos
benchmark (``python -m repro.bench --chaos``) and the supervisor tests
drive.

Two injection styles:

* **Direct** -- :func:`kill_worker` / :func:`hang_worker` /
  :func:`sever_pipe` hit the shard right now (the chaos soak's random
  low-rate faults).
* **Targeted** -- :func:`kill_on_command` and
  :func:`kill_after_decision` wrap a handle's ``call`` (or the decision
  log's ``append``) so the worker dies at a *protocol moment*: as a 2PC
  prepare or decide reaches it, or in the gap after the coordinator
  fsyncs the commit decision but before delivery.  That last gap is the
  "committed but undelivered" window the supervisor's repair loop
  exists for.
"""

from __future__ import annotations

import os
import signal


def kill_worker(db, shard_id: int) -> None:
    """Hard-kill one shard worker (SIGKILL when there is a pid, handle
    termination otherwise).  The parent-side handle stays in place,
    poisoned -- exactly what a real worker death looks like to the
    router -- and the supervisor's heartbeat or the next routed call
    detects it."""
    handle = db.shards[shard_id]
    proc = getattr(handle, "_proc", None)
    if proc is not None and proc.is_alive() and proc.pid:
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):  # pragma: no cover
            pass
        proc.join(timeout=10)
    else:
        handle.terminate()


def hang_worker(db, shard_id: int, seconds: float) -> None:
    """Make one worker unresponsive for ``seconds`` (it sleeps inside
    its command loop).  Pipelined so the caller does not block; the next
    deadline-bearing call or heartbeat probe times out, poisons the
    pipe, and the supervisor restarts the worker."""
    db.shards[shard_id].call_nowait(("hang", float(seconds)))


def sever_pipe(db, shard_id: int) -> None:
    """Break the parent side of one worker's pipe (transport loss
    without worker death).  Every later call raises
    :class:`~repro.shard.shard.ShardCrashed`; the orphaned worker is
    reaped when the supervisor terminates the handle during restart."""
    handle = db.shards[shard_id]
    conn = getattr(handle, "_conn", None)
    if conn is not None:
        conn.close()
    else:  # inproc: the closest analogue is a plain crash
        handle.crash()


def kill_on_command(db, shard_id: int, command: str):
    """Arm a one-shot kill: the next time ``command`` is routed to this
    shard, the worker dies *instead of executing it*.

    This is how the chaos matrix crashes a participant exactly at
    ``txn_prepare`` (vote never cast -> presumed abort) or ``decide``
    (decision durable, delivery lost -> supervisor repair).  Returns a
    ``disarm()`` callable restoring the unwrapped ``call``.
    """
    handle = db.shards[shard_id]
    original = handle.call

    def wrapped(cmd, timeout=None):
        if cmd and cmd[0] == command:
            handle.call = original
            kill_worker(db, shard_id)
        return original(cmd, timeout=timeout)

    handle.call = wrapped

    def disarm():
        handle.call = original

    return disarm


def kill_after_decision(db, shard_id: int):
    """Arm a one-shot kill in the commit gap: the worker dies right
    after the coordinator fsyncs the next commit decision, before any
    delivery.  Every prepared branch on the killed shard is then
    "committed but undelivered" -- the decision log says commit, the
    participant never heard -- which restart recovery (or the
    supervisor's repair queue) must complete.  Returns ``disarm()``.
    """
    log = db.decisions
    original = log.append

    def wrapped(gid):
        original(gid)
        log.append = original
        kill_worker(db, shard_id)

    log.append = wrapped

    def disarm():
        log.append = original

    return disarm


__all__ = [
    "hang_worker",
    "kill_after_decision",
    "kill_on_command",
    "kill_worker",
    "sever_pipe",
]
