"""Seeded fault campaigns: randomized schedules scored against ground truth.

A *schedule* is one randomized run: a small transaction workload with one
addressing fault (Section 3's error model: wild writes, bit flips, copy
overruns) or a torn flush injected mid-stream, optionally composed with a
deterministic crash at a named durability boundary
(:mod:`repro.faults.crashpoints`).  The campaign replays many schedules
per (seed, scheme) configuration and scores what the protection stack
reported against the injector's ground-truth event list:

* **detection stage + latency** -- which mechanism caught the fault
  (read precheck, periodic audit, checkpoint certification, the final
  sweep) and how many operations after injection;
* **false negatives** -- a direct in-image fault that survives to the end
  of the schedule undetected by a *full* audit.  A fault erased by a
  crash (the corruption lived only in volatile state recovery rebuilds)
  is scored ``erased``, not a false negative -- the final full audit
  proves the image clean;
* **repair correctness** -- after detection, the scheme-appropriate
  repair (cache recovery for audit-based schemes, delete-transaction
  restart recovery for read logging) must leave a fully clean image and
  committed values intact;
* **quarantine honesty** -- once a region is quarantined, reads
  overlapping it must raise
  :class:`~repro.errors.QuarantinedRegionError`; a read that returns
  bytes differing from the last committed value is *served garbage* and
  fails the campaign.

Determinism: every schedule derives its own ``random.Random`` from the
string ``"{seed}:{scheme}:{index}"`` (string seeding is stable across
processes, unlike ``hash``), so a campaign is exactly reproducible from
its spec.
"""

from __future__ import annotations

import os
import random
import shutil
from dataclasses import dataclass, field

from repro.errors import (
    ConfigError,
    CorruptionDetected,
    QuarantinedRegionError,
    SimulatedCrash,
)
from repro.faults.crashpoints import (
    FORWARD_CRASH_POINTS,
    RECOVERY_CRASH_POINTS,
)
from repro.faults.injector import FaultInjector
from repro.txn.transaction import TxnStatus

#: Fault kinds that scribble directly on the in-memory image -- the class
#: the codeword schemes must detect (zero false negatives required).
DIRECT_FAULT_KINDS = ("corrupt_record", "wild_write", "bit_flip", "copy_overrun")

#: Scheme stacks a default campaign exercises (ISSUE acceptance set).
DEFAULT_SCHEMES = (
    "data_codeword",
    "read_precheck",
    "read_logging",
    "data_cw+cw_read_logging",
)


@dataclass(frozen=True)
class CampaignSpec:
    """Shape of one campaign (everything needed to reproduce it)."""

    seeds: tuple[int, ...] = (1, 2, 3)
    schemes: tuple[str, ...] = DEFAULT_SCHEMES
    schedules_per_config: int = 17
    ops_per_schedule: int = 24
    accounts: int = 16
    region_size: int = 256
    #: Memory-image backing for every schedule's database ("heap" or
    #: "mmap"); wild writes must be detected identically either way.
    image_backing: str = "heap"

    @property
    def total_schedules(self) -> int:
        return len(self.seeds) * len(self.schemes) * self.schedules_per_config


@dataclass
class ScheduleOutcome:
    """Score of one schedule against the injector's ground truth."""

    scheme: str
    seed: int
    index: int
    fault_kind: str
    fault_op: int
    crash_point: str | None = None
    crashed: bool = False
    detection_stage: str = "none"
    detection_op: int | None = None
    false_negative: bool = False
    repaired: bool = False
    repair_ok: bool = True
    value_ok: bool = True
    quarantine_blocked: int = 0
    quarantine_served_garbage: bool = False
    recovery_reruns: int = 0
    deleted_committed: int = 0
    error: str | None = None

    @property
    def detection_latency(self) -> int | None:
        if self.detection_op is None:
            return None
        return self.detection_op - self.fault_op


@dataclass
class CampaignResult:
    """All schedule outcomes plus the per-scheme scoreboard."""

    spec: CampaignSpec
    outcomes: list[ScheduleOutcome] = field(default_factory=list)

    @property
    def false_negatives(self) -> list[ScheduleOutcome]:
        return [o for o in self.outcomes if o.false_negative]

    @property
    def garbage_served(self) -> list[ScheduleOutcome]:
        return [o for o in self.outcomes if o.quarantine_served_garbage]

    @property
    def errors(self) -> list[ScheduleOutcome]:
        return [o for o in self.outcomes if o.error is not None]

    def scoreboard(self) -> dict[str, dict]:
        """Per-scheme aggregate: detection, latency, repair, quarantine."""
        board: dict[str, dict] = {}
        for scheme in self.spec.schemes:
            rows = [o for o in self.outcomes if o.scheme == scheme]
            direct = [o for o in rows if o.fault_kind in DIRECT_FAULT_KINDS]
            latencies = [
                o.detection_latency
                for o in direct
                if o.detection_latency is not None
            ]
            stages: dict[str, int] = {}
            for o in rows:
                stages[o.detection_stage] = stages.get(o.detection_stage, 0) + 1
            repairs = [o for o in rows if o.repaired]
            board[scheme] = {
                "schedules": len(rows),
                "direct_faults": len(direct),
                "detected": sum(
                    1 for o in direct if o.detection_op is not None
                ),
                "erased": sum(
                    1 for o in direct if o.detection_stage == "erased"
                ),
                "false_negatives": sum(1 for o in direct if o.false_negative),
                "mean_detection_latency_ops": (
                    round(sum(latencies) / len(latencies), 2)
                    if latencies
                    else None
                ),
                "max_detection_latency_ops": max(latencies, default=None),
                "stages": dict(sorted(stages.items())),
                "repairs": len(repairs),
                "repairs_ok": sum(1 for o in repairs if o.repair_ok),
                "values_ok": sum(1 for o in rows if o.value_ok),
                "quarantine_blocked_reads": sum(
                    o.quarantine_blocked for o in rows
                ),
                "quarantine_served_garbage": sum(
                    1 for o in rows if o.quarantine_served_garbage
                ),
                "crashes": sum(1 for o in rows if o.crashed),
                "recovery_reruns": sum(o.recovery_reruns for o in rows),
                "deleted_committed_txns": sum(
                    o.deleted_committed for o in rows
                ),
                "errors": sum(1 for o in rows if o.error is not None),
            }
        return board

    def to_payload(self) -> dict:
        """JSON-ready summary (merged into ``BENCH_faults.json``)."""
        return {
            "spec": {
                "seeds": list(self.spec.seeds),
                "schemes": list(self.spec.schemes),
                "schedules_per_config": self.spec.schedules_per_config,
                "ops_per_schedule": self.spec.ops_per_schedule,
                "accounts": self.spec.accounts,
                "region_size": self.spec.region_size,
                "image_backing": self.spec.image_backing,
            },
            "schedules": len(self.outcomes),
            "false_negatives": len(self.false_negatives),
            "quarantine_served_garbage": len(self.garbage_served),
            "errors": [
                {
                    "scheme": o.scheme,
                    "seed": o.seed,
                    "index": o.index,
                    "error": o.error,
                }
                for o in self.errors
            ],
            "scoreboard": self.scoreboard(),
        }


class CampaignRunner:
    """Replays a :class:`CampaignSpec` and scores every schedule."""

    def __init__(self, spec: CampaignSpec, base_dir: str) -> None:
        self.spec = spec
        self.base_dir = base_dir

    def run(self) -> CampaignResult:
        result = CampaignResult(self.spec)
        for scheme in self.spec.schemes:
            for seed in self.spec.seeds:
                for index in range(self.spec.schedules_per_config):
                    outcome = self._run_schedule(scheme, seed, index)
                    result.outcomes.append(outcome)
        return result

    # ------------------------------------------------------- one schedule

    def _run_schedule(self, scheme: str, seed: int, index: int) -> ScheduleOutcome:
        rng = random.Random(f"{seed}:{scheme}:{index}")
        safe = scheme.replace("+", "_")
        db_dir = os.path.join(self.base_dir, f"{safe}-s{seed}-{index}")
        if os.path.exists(db_dir):
            shutil.rmtree(db_dir)
        schedule = _Schedule(self.spec, scheme, seed, index, db_dir, rng)
        try:
            return schedule.run()
        except Exception as exc:  # scored, not raised: one bad schedule
            # must not hide the rest of the campaign's scoreboard.
            schedule.outcome.error = f"{type(exc).__name__}: {exc}"
            return schedule.outcome
        finally:
            schedule.close()
            shutil.rmtree(db_dir, ignore_errors=True)


class _Schedule:
    """One randomized schedule: workload, one fault, optional crash."""

    def __init__(self, spec, scheme, seed, index, db_dir, rng) -> None:
        self.spec = spec
        self.scheme = scheme
        self.db_dir = db_dir
        self.rng = rng
        self.db = None
        self.injector: FaultInjector | None = None
        self.slots: dict[int, int] = {}
        #: Every value ever committed per account id (plus the initial
        #: balance): after a crash or delete-transaction recovery the
        #: surviving value must come from this set.
        self.committed: dict[int, list[int]] = {}
        self.outcome = ScheduleOutcome(
            scheme=scheme, seed=seed, index=index, fault_kind="", fault_op=-1
        )

    # ------------------------------------------------------------- setup

    def _build(self):
        from repro import Database, DBConfig, Field, FieldType, Schema

        schema = Schema(
            [Field("id", FieldType.INT64), Field("balance", FieldType.INT64)]
        )
        config = DBConfig(
            dir=self.db_dir,
            scheme=self.scheme,
            scheme_params={"region_size": self.spec.region_size},
            quarantine=True,
            image_backing=self.spec.image_backing,
        )
        db = Database(config)
        db.create_table("acct", schema, capacity=max(64, self.spec.accounts * 2),
                        key_field="id")
        db.start()
        return db

    def close(self) -> None:
        if self.db is not None:
            try:
                self.db.close()
            except Exception:
                pass

    @property
    def _logs_reads(self) -> bool:
        return "read_logging" in self.scheme

    def _abort_quietly(self, txn) -> None:
        if txn.status is TxnStatus.ACTIVE:
            self.db.abort(txn)

    # --------------------------------------------------------------- run

    def run(self) -> ScheduleOutcome:
        spec, rng, out = self.spec, self.rng, self.outcome
        self.db = self._build()
        table = self.db.table("acct")
        txn = self.db.begin()
        for i in range(spec.accounts):
            balance = 1000 + i
            self.slots[i] = table.insert(
                txn, {"id": i, "balance": balance}
            )
            self.committed[i] = [balance]
        self.db.commit(txn)
        self.db.checkpoint()
        self.injector = FaultInjector(self.db, seed=rng.randrange(2**31))

        ops = spec.ops_per_schedule
        out.fault_op = rng.randrange(2, max(3, ops - 4))
        out.fault_kind = rng.choices(
            ["corrupt_record", "wild_write", "bit_flip", "copy_overrun",
             "torn_crash"],
            weights=[4, 2, 2, 1, 1],
        )[0]
        checkpoint_op = ops // 2
        audit_every = 5
        arm_op: int | None = None
        if out.fault_kind in DIRECT_FAULT_KINDS and rng.random() < 0.35:
            out.crash_point = rng.choice(FORWARD_CRASH_POINTS)
            arm_op = rng.randrange(out.fault_op, ops)

        op = 0
        while op < ops:
            if op == out.fault_op:
                self._inject(op)
            if arm_op is not None and op == arm_op:
                self.db.crashpoints.arm(out.crash_point)
                arm_op = None
            try:
                if op == checkpoint_op:
                    result = self.db.checkpoint()
                    if not result.certified:
                        self._on_detect("checkpoint", op)
                        return self._repair_and_score(result.audit_report)
                elif op % audit_every == audit_every - 1:
                    report = self.db.audit()
                    if not report.clean:
                        self._on_detect("audit", op)
                        return self._repair_and_score(report)
                else:
                    self._workload_op(op)
            except (QuarantinedRegionError, CorruptionDetected):
                # First detection on the read path is always the precheck
                # itself (the quarantine guard can only block regions an
                # earlier detection already convicted).
                self._on_detect("precheck", op)
                return self._repair_and_score(None)
            except SimulatedCrash:
                self._crash_and_recover()
            op += 1
        return self._final_score()

    # ---------------------------------------------------------- workload

    def _workload_op(self, op: int) -> None:
        rng = self.rng
        acct = rng.randrange(self.spec.accounts)
        db, table = self.db, self.db.table("acct")
        if rng.random() < 0.6:
            value = rng.randrange(1, 10**6)
            txn = db.begin()
            try:
                table.update(txn, self.slots[acct], {"balance": value})
            except Exception:
                db.abort(txn)
                raise
            try:
                db.commit(txn)
            except SimulatedCrash:
                # A crash mid-commit-flush: the value may or may not have
                # become durable.  Either way it is a legitimately
                # prescribed value, so admit it to the acceptable set.
                self.committed[acct].append(value)
                raise
            self.committed[acct].append(value)
        else:
            txn = db.begin()
            try:
                table.read(txn, self.slots[acct])
            finally:
                self._abort_quietly(txn)

    def _inject(self, op: int) -> None:
        kind, rng, inj = self.outcome.fault_kind, self.rng, self.injector
        if kind == "corrupt_record":
            acct = rng.randrange(self.spec.accounts)
            inj.corrupt_record("acct", self.slots[acct])
        elif kind == "wild_write":
            inj.wild_write(length=rng.choice([1, 4, 8, 16]))
        elif kind == "bit_flip":
            inj.bit_flip()
        elif kind == "copy_overrun":
            acct = rng.randrange(self.spec.accounts)
            inj.copy_overrun("acct", self.slots[acct], overrun=rng.choice([4, 8, 16]))
        elif kind == "torn_crash":
            # A real crash whose final flush is torn: crash first (the
            # append handle must be closed before the file is cut).
            self.outcome.crashed = True
            self.db.crash()
            inj.torn_flush()
            self._reopen()
        else:  # pragma: no cover - spec'd kinds only
            raise ConfigError(f"unknown fault kind {kind!r}")

    # ----------------------------------------------------- crash/recover

    def _crash_and_recover(self) -> None:
        self.outcome.crashed = True
        self.db.crash()
        self._reopen()

    def _reopen(self) -> None:
        from repro import Database

        config = self.db.config
        # The registry rides across the crash so a recovery crash point
        # armed before crash_with_corruption fires mid-recovery; it is
        # one-shot, so the re-run converges instead of crash-looping.
        registry = self.db.crashpoints
        while True:
            try:
                self.db, report = Database.recover(config, crashpoints=registry)
                break
            except SimulatedCrash:
                self.outcome.recovery_reruns += 1
        self.outcome.deleted_committed += len(report.deleted_committed)
        self.injector.db = self.db

    # ------------------------------------------------------------ scoring

    def _on_detect(self, stage: str, op: int) -> None:
        if self.outcome.detection_op is None:
            self.outcome.detection_stage = stage
            self.outcome.detection_op = op

    def _full_audit(self):
        """Ground-truth audit: full sweep, no quarantine skip."""
        return self.db.auditor.run()

    def _affected_accounts(self) -> list[int]:
        """Account ids whose record bytes a direct fault overlapped."""
        table = self.db.table("acct")
        size = table.schema.record_size
        hits: list[int] = []
        for event in self.injector.events:
            if event.kind == "torn_flush":
                continue
            lo, hi = event.address, event.address + event.length
            for acct, slot in self.slots.items():
                start = table.record_address(slot)
                if start < hi and lo < start + size:
                    hits.append(acct)
        return sorted(set(hits))

    def _probe_quarantine(self) -> None:
        """Reads overlapping quarantined regions must be vetoed."""
        db, out = self.db, self.outcome
        table = db.table("acct")
        maintainer = db.pipeline.maintainer
        cw_table = maintainer.table
        for acct in self._affected_accounts():
            slot = self.slots[acct]
            start = table.record_address(slot)
            regions = cw_table.regions_spanning(start, table.schema.record_size)
            if not maintainer.quarantined.intersection(regions):
                continue
            txn = db.begin()
            try:
                row = table.read(txn, slot)
            except QuarantinedRegionError:
                out.quarantine_blocked += 1
            else:
                if row["balance"] not in self.committed[acct]:
                    out.quarantine_served_garbage = True
            finally:
                self._abort_quietly(txn)

    def _repair_and_score(self, report) -> ScheduleOutcome:
        """Detection happened: quarantine-probe, repair, verify."""
        db, out = self.db, self.outcome
        if report is None or report.clean:
            # Exception-detected (precheck/guard): an audit convicts and
            # quarantines the regions so the probe and repair have ids.
            report = db.audit()
        elif report.corrupt_regions:
            # Checkpoint-certification reports never quarantine on their
            # own (certification must see the whole image); feed the
            # convicted regions to the quarantine by hand.
            db.pipeline.maintainer.quarantine(report.corrupt_regions)
        self._probe_quarantine()
        out.repaired = True
        if self._logs_reads:
            # Read logging: transaction-carried corruption is possible;
            # the paper's answer is crash + delete-transaction recovery.
            if report.clean:  # pragma: no cover - detection implies dirty
                raise ConfigError("repair without a failing audit")
            crashpoints = db.crashpoints
            if self.rng.random() < 0.5:
                crashpoints.arm(self.rng.choice(RECOVERY_CRASH_POINTS))
            out.crashed = True
            db.crash_with_corruption(report)
            self._reopen()
            db = self.db
        else:
            db.repair_quarantined()
        final = self._full_audit()
        out.repair_ok = final.clean
        self._score_values()
        return out

    def _final_score(self) -> ScheduleOutcome:
        """No detection during the run: the final full sweep decides."""
        out = self.outcome
        final = self._full_audit()
        if not final.clean:
            self._on_detect("audit", self.spec.ops_per_schedule)
            return self._repair_and_score(final)
        if out.fault_kind in DIRECT_FAULT_KINDS and out.detection_op is None:
            if out.crashed:
                # The corruption lived only in volatile state a crash
                # discarded; the clean full audit proves the image whole.
                out.detection_stage = "erased"
            else:
                out.false_negative = True
        self._score_values()
        return out

    def _score_values(self) -> None:
        """Committed values must survive repair/recovery.

        Without a crash the last committed value must be exact; after a
        crash (lost group-commit window, rolled-back or deleted
        transactions) any value this schedule ever committed -- including
        the initial balance -- is acceptable, but bytes from outside that
        set are corruption served as data.
        """
        db, out = self.db, self.outcome
        table = db.table("acct")
        exact = not out.crashed
        for acct, slot in self.slots.items():
            txn = db.begin()
            try:
                row = table.read(txn, slot)
            except (QuarantinedRegionError, CorruptionDetected):
                # Still fenced: honest, but the repair did not finish.
                out.repair_ok = False
                continue
            finally:
                self._abort_quietly(txn)
            if exact:
                if row["balance"] != self.committed[acct][-1]:
                    out.value_ok = False
            elif row["balance"] not in self.committed[acct]:
                out.value_ok = False


def run_campaign(spec: CampaignSpec, base_dir: str) -> CampaignResult:
    """Convenience wrapper: build a runner and run the whole campaign."""
    os.makedirs(base_dir, exist_ok=True)
    return CampaignRunner(spec, base_dir).run()
