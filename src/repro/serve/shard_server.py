"""The sharded serving front-end: router sessions behind the server.

:class:`ShardServer` puts :class:`~repro.shard.router.ShardRouter`
behind the same bounded-admission :class:`~repro.serve.server.Server`
that fronts a single database: sessions speak the identical
request/response protocol, threaded mode runs them on the worker pool
(bounded queue, backpressure at admission), and contained errors carry
the taxonomy's ``retryable`` bit so a remote client knows whether to
back off and resubmit.  Under a
:class:`~repro.shard.supervisor.ShardSupervisor` this is degraded-mode
serving end to end: a request touching a recovering shard gets a
fail-fast retryable ``ShardUnavailableError`` response while sessions on
surviving shards proceed untouched.

The front-end also hosts the **cross-shard deadlock detector**.  Locks
in this system fail fast (a conflict raises
:class:`~repro.errors.LockError` immediately; no thread ever blocks
inside a shard), so a "deadlock" here is a *retry livelock*: two
sessions each hold a key the other needs and both retry forever.  Per
conflict the session reports a wait-for edge -- waiter session ->
session holding the conflicting shard-local transaction -- into a
:class:`~repro.shard.supervisor.WaitForGraph`; a cycle convicts the
**youngest** member (largest transaction sequence number), whose open
branches are rolled back on every shard and who gets a retryable
:class:`~repro.errors.DeadlockError`, while the older sessions in the
cycle proceed.  Two deliberate consequences of fail-fast locks:

* a session does **not** roll back on a lock conflict -- its other
  branches stay open (that is what lets a cycle exist to be detected),
  and the conflict response is retryable so the client resubmits just
  the failed op;
* a convicted session that is not the current waiter learns its fate at
  its *next* request (nobody is blocked, so there is no thread to wake).
"""

from __future__ import annotations

import threading

from repro.errors import (
    DeadlockError,
    LockError,
    ReproError,
    ServeError,
    SimulatedCrash,
    lock_holder_from_detail,
)
from repro.serve.protocol import Request, Response
from repro.serve.server import Server
from repro.shard.router import ShardedDatabase, ShardRouter
from repro.shard.shard import ShardCrashed
from repro.shard.supervisor import WaitForGraph


class ShardSession(ShardRouter):
    """One client session on the sharded database.

    A :class:`ShardRouter` (per-shard branch bookkeeping, slot tagging,
    2PC on commit) wearing the serve layer's session contract: serialized
    execution, error containment, per-session counters -- plus the
    deadlock-detection hooks described in the module docstring.
    """

    def __init__(
        self, server: "ShardServer", db: ShardedDatabase, session_id: int
    ) -> None:
        super().__init__(db)
        self.server = server
        self.session_id = session_id
        self.closed = False
        self._serial = threading.Lock()
        #: Global age order for youngest-victim selection, assigned at
        #: ``begin`` (shard-local txn ids collide across shards).
        self.txn_seq = 0
        #: Set by the detector when this session is convicted while not
        #: the current waiter; consumed at the next request.  Stamped
        #: ``(cycle, txn_seq)`` with the convicted transaction's seq so
        #: a conviction that races this session's commit cannot abort a
        #: *later* transaction (the seq no longer matches).
        self._victim_cycle: tuple[tuple[int, ...], int] | None = None
        self._last_shard: int | None = None
        self._branches: list[tuple[int, int]] = []
        self._waiting = False
        self.requests_served = 0
        self.errors_contained = 0
        self.deadlock_aborts = 0
        self.txns_committed = 0
        self.txns_aborted = 0

    # ----------------------------------------------------------- execute

    def execute(self, request: Request) -> Response:
        """Run one request; never raises for contained errors."""
        with self._serial:
            if self.closed:
                return self._error(request, ServeError("session is closed"))
            pending = self._consume_conviction()
            if pending is not None:
                return self._error(request, pending)
            try:
                value = self._dispatch(request)
            except SimulatedCrash:
                raise
            except ShardCrashed:
                raise  # unsupervised process mode: the caller recovers
            except LockError as exc:
                return self._on_lock_conflict(request, exc)
            except ReproError as exc:
                self._rollback()
                self.errors_contained += 1
                return self._error(request, exc)
            if self._waiting:
                self._waiting = False
                self.server._graph_progress(self.session_id)
            self.requests_served += 1
            return Response(
                ok=True, op=request.op, request_id=request.request_id, value=value
            )

    def _consume_conviction(self) -> DeadlockError | None:
        """The detector convicted us since our last request; abort now."""
        pending = self._victim_cycle
        if pending is None:
            return None
        self._victim_cycle = None
        cycle, seq = pending
        if not self._in_txn or seq != self.txn_seq:
            # The convicted transaction already ended (we committed or
            # rolled back concurrently with the detection, breaking the
            # cycle); a transaction begun since is innocent.
            return None
        self._rollback()
        self.deadlock_aborts += 1
        self.errors_contained += 1
        return DeadlockError(self.session_id, cycle)

    def _on_lock_conflict(self, request: Request, exc: LockError) -> Response:
        """A shard refused a lock.  Crucially we do NOT roll back: our
        other branches keep their locks (the precondition for a cycle to
        exist), and the client retries just this op.  The conflict is
        reported as a wait-for edge; if that closes a cycle with us as
        the youngest member, we abort instead."""
        holder_txn = exc.holder_txn_id
        if holder_txn is None:
            # Process-mode workers report errors as strings; the holder
            # id survives in the message text.
            holder_txn = lock_holder_from_detail(str(exc))
        cycle = None
        if holder_txn is not None and self._last_shard is not None:
            self._waiting = True
            cycle = self.server._on_wait(
                self.session_id, self._last_shard, holder_txn
            )
        self.errors_contained += 1
        if cycle is not None:
            self._rollback()
            self.deadlock_aborts += 1
            return self._error(request, DeadlockError(self.session_id, cycle))
        return self._error(request, exc)

    # ------------------------------------------------- router overrides

    def _dispatch(self, request: Request):
        op = request.op
        if op == "begin":
            value = super()._dispatch(request)
            self.txn_seq = self.server._next_txn_seq()
            return value
        if op in ("commit", "abort"):
            try:
                value = super()._dispatch(request)
            finally:
                # Locks are gone either way (commit, abort, or 2PC
                # failure fan-out); stop advertising the branches.
                self._release_branches()
            if op == "commit":
                self.txns_committed += 1
            else:
                self.txns_aborted += 1
            return value
        return super()._dispatch(request)

    def _shard_op(self, shard_id: int, op: tuple):
        # Remember where the op ran so a LockError can be attributed to
        # (shard, holder txn) -- txn ids alone collide across shards.
        self._last_shard = shard_id
        return super()._shard_op(shard_id, op)

    def _on_branch_open(self, shard_id: int, txn_id: int) -> None:
        self._branches.append((shard_id, txn_id))
        self.server._register_holder(shard_id, txn_id, self.session_id)

    def _rollback(self) -> None:
        super()._rollback()
        if self._in_txn is False:
            self._release_branches()

    def _release_branches(self) -> None:
        branches, self._branches = self._branches, []
        self._waiting = False
        self._victim_cycle = None
        self.server._release(self.session_id, branches)

    # ----------------------------------------------------------- plumbing

    def close(self) -> None:
        with self._serial:
            if self.closed:
                return
            self.closed = True
            if self._in_txn:
                self._rollback()
                self.txns_aborted += 1
            self._release_branches()

    def _error(self, request: Request, exc: Exception) -> Response:
        return Response(
            ok=False,
            op=request.op,
            request_id=request.request_id,
            error=type(exc).__name__,
            detail=str(exc),
            retryable=bool(getattr(exc, "retryable", False)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else ("in-txn" if self._in_txn else "idle")
        return f"ShardSession(id={self.session_id}, {state})"


class ShardServer(Server):
    """Bounded-admission serving over a :class:`ShardedDatabase`.

    ``threaded`` must be passed explicitly (default inline/deterministic)
    -- the router has no single scheduler to autodetect from, each shard
    runs its own inside its worker.
    """

    def __init__(
        self,
        db: ShardedDatabase,
        *,
        queue_depth: int = 64,
        workers: int = 4,
        threaded: bool = False,
    ) -> None:
        super().__init__(
            db, queue_depth=queue_depth, workers=workers, threaded=threaded
        )
        self.graph = WaitForGraph()
        self._graph_lock = threading.Lock()
        #: (shard id, shard-local txn id) -> holding session id.
        self._holders: dict[tuple[int, int], int] = {}
        self._txn_seq = 0
        self.deadlocks_broken = 0

    def _make_session(self, session_id: int) -> ShardSession:
        return ShardSession(self, self.db, session_id)

    def _next_txn_seq(self) -> int:
        with self._graph_lock:
            self._txn_seq += 1
            return self._txn_seq

    # -------------------------------------------------- wait-for graph

    def _register_holder(self, shard_id: int, txn_id: int, session_id: int) -> None:
        with self._graph_lock:
            self._holders[(shard_id, txn_id)] = session_id

    def _release(self, session_id: int, branches: list[tuple[int, int]]) -> None:
        """A session's transaction ended: its branches stop holding, its
        waits are stale, and nobody can be waiting on it any more."""
        with self._graph_lock:
            for branch in branches:
                self._holders.pop(branch, None)
            self.graph.clear_waiter(session_id)
            self.graph.clear_holder(session_id)

    def _graph_progress(self, session_id: int) -> None:
        with self._graph_lock:
            self.graph.clear_waiter(session_id)

    def _on_wait(
        self, waiter_id: int, shard_id: int, holder_txn: int
    ) -> tuple[int, ...] | None:
        """Record one conflict edge; detect and break any cycle.

        Returns the cycle when the *waiter itself* is convicted (the
        caller aborts immediately); a convicted third party is flagged
        and aborts at its next request.
        """
        with self._graph_lock:
            holder_id = self._holders.get((shard_id, holder_txn))
            if holder_id is None or holder_id == waiter_id:
                return None
            self.graph.add(waiter_id, holder_id)
            cycle = self.graph.cycle_from(waiter_id)
            if cycle is None:
                return None
            victim = max(
                cycle, key=lambda sid: self._session_age(sid)
            )
            self.deadlocks_broken += 1
            # The victim will abort; drop its waits now so the cycle is
            # broken in the graph (its holds clear when it rolls back).
            self.graph.clear_waiter(victim)
            if victim == waiter_id:
                return cycle
            victim_session = self._sessions.get(victim)
            if victim_session is not None:
                # Stamp with the convicted transaction's seq: the
                # victim's branches are still in the graph, so its
                # release (which needs this lock) has not run and
                # txn_seq is still the convicted transaction's.  If the
                # victim commits before its next request, the stale seq
                # makes _consume_conviction a no-op instead of
                # aborting an unrelated later transaction.
                victim_session._victim_cycle = (cycle, victim_session.txn_seq)
            return None

    def _session_age(self, session_id: int) -> int:
        session = self._sessions.get(session_id)
        return session.txn_seq if session is not None else -1


__all__ = ["ShardServer", "ShardSession"]
