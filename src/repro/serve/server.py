"""The server: bounded admission over a pool of session executors.

Clients interact synchronously -- ``server.submit(session, request)``
returns that request's :class:`~repro.serve.protocol.Response` -- but
what happens in between depends on the database's scheduler mode:

* **threaded**: requests are admitted into a bounded queue and executed
  by worker threads.  A full queue raises
  :class:`~repro.errors.BackpressureError` to the submitting client
  instead of buffering without bound -- load is shed at admission.
* **deterministic**: the request executes inline on the submitting
  thread (no queue, no workers).  Session semantics -- per-session
  transactions, error containment, the op protocol -- are identical,
  which is what lets the session tests run in both modes.

The server adds no locking of its own around database state: the lock
manager, latches, system-log mutex and scheduler already make the
storage layers safe for concurrent sessions; the server only guards its
own session registry and queue.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING

from repro.errors import BackpressureError, ServeError
from repro.runtime.scheduler import THREADED
from repro.serve.protocol import Request, Response
from repro.serve.session import Session

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database


class _WorkItem:
    __slots__ = ("session", "request", "done", "response", "error")

    def __init__(self, session: Session, request: Request) -> None:
        self.session = session
        self.request = request
        self.done = threading.Event()
        self.response: Response | None = None
        self.error: BaseException | None = None


class Server:
    """Multiplexes client sessions over one database."""

    def __init__(
        self,
        db: "Database",
        *,
        queue_depth: int = 64,
        workers: int = 4,
        read_only: bool = False,
        threaded: bool | None = None,
    ) -> None:
        if queue_depth < 1:
            raise ServeError(f"queue_depth must be >= 1: {queue_depth}")
        if workers < 1:
            raise ServeError(f"workers must be >= 1: {workers}")
        self.db = db
        #: A replica front-end: every session rejects mutating ops until
        #: :meth:`promote_to_primary` flips the flag after failover.
        self.read_only = read_only
        if threaded is None:
            # Autodetect from the database's scheduler mode.  Fronts with
            # no single scheduler (the shard router runs one per worker)
            # pass ``threaded`` explicitly.
            scheduler = getattr(db, "scheduler", None)
            threaded = scheduler is not None and scheduler.mode == THREADED
        self.threaded = threaded
        self.queue_depth = queue_depth
        self._sessions: dict[int, Session] = {}
        self._next_session_id = 1
        self._guard = threading.Lock()
        self._closed = False
        self.requests_admitted = 0
        self.backpressure_rejections = 0
        self._queue: "queue.Queue[_WorkItem | None] | None" = None
        self._workers: list[threading.Thread] = []
        if self.threaded:
            self._queue = queue.Queue(maxsize=queue_depth)
            for i in range(workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
                )
                thread.start()
                self._workers.append(thread)

    # ---------------------------------------------------------- sessions

    def open_session(self) -> Session:
        with self._guard:
            if self._closed:
                raise ServeError("server is closed")
            session = self._make_session(self._next_session_id)
            self._next_session_id += 1
            self._sessions[session.session_id] = session
            return session

    def _make_session(self, session_id: int) -> Session:
        """Session factory, overridden by fronts with richer sessions
        (the sharded front-end builds router-backed sessions here)."""
        return Session(self.db, session_id, read_only=self.read_only)

    def promote_to_primary(self) -> None:
        """After a certified failover, start admitting writes.

        Existing sessions flip too: the promotion point is a state
        change of the node, not of individual connections.
        """
        with self._guard:
            self.read_only = False
            for session in self._sessions.values():
                session.read_only = False

    def close_session(self, session: Session) -> None:
        session.close()
        with self._guard:
            self._sessions.pop(session.session_id, None)

    @property
    def session_count(self) -> int:
        with self._guard:
            return len(self._sessions)

    # ------------------------------------------------------------ submit

    def submit(self, session: Session, request: Request) -> Response:
        """Execute one request on a session; returns its response.

        Contained failures come back as ``ok=False`` responses.  Only
        admission failure (:class:`BackpressureError`) and simulated
        process death raise.
        """
        if self._closed:
            raise ServeError("server is closed")
        if not self.threaded:
            self.requests_admitted += 1
            return session.execute(request)
        item = _WorkItem(session, request)
        assert self._queue is not None
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            with self._guard:
                self.backpressure_rejections += 1
            raise BackpressureError(
                f"admission queue full ({self.queue_depth} requests pending); "
                "back off and retry"
            ) from None
        with self._guard:
            self.requests_admitted += 1
        item.done.wait()
        if item.error is not None:
            raise item.error
        assert item.response is not None
        return item.response

    def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            try:
                item.response = item.session.execute(item.request)
            except BaseException as exc:  # SimulatedCrash -> submitter
                item.error = exc
            finally:
                item.done.set()
                self._queue.task_done()

    # ------------------------------------------------------------- close

    def close(self) -> None:
        """Stop workers and close every session (open txns roll back)."""
        with self._guard:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
        if self._queue is not None:
            for _ in self._workers:
                self._queue.put(None)
            for thread in self._workers:
                thread.join(timeout=10)
            self._workers.clear()
        for session in sessions:
            session.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "threaded" if self.threaded else "deterministic"
        return (
            f"Server({mode}, sessions={len(self._sessions)}, "
            f"admitted={self.requests_admitted})"
        )
