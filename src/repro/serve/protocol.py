"""Request/response protocol between serving clients and sessions.

Requests are plain data (no database objects cross the boundary), so a
client can be a thread today and a socket tomorrow without changing the
session layer.  One request maps to one session-layer action:

==========  ============================================  ==============
op          arguments                                     result value
==========  ============================================  ==============
begin                                                     txn id
commit                                                    txn id
abort                                                     txn id
insert      table, values                                 slot id
read        table, slot                                   row dict
update      table, slot, values                           slot id
delete      table, slot                                   slot id
lookup      table, key                                    slot id or None
query       table, key                                    row dict or None
==========  ============================================  ==============

``query`` is the TPC-B style point read: an index lookup followed by a
record read, both inside the session's open transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every op the session layer dispatches.
OPS = (
    "begin",
    "commit",
    "abort",
    "insert",
    "read",
    "update",
    "delete",
    "lookup",
    "query",
)

#: Ops a read-only session (an unpromoted replica) rejects.
MUTATING_OPS = frozenset({"insert", "update", "delete"})


@dataclass(frozen=True)
class Request:
    """One client operation."""

    op: str
    table: str | None = None
    slot: int | None = None
    key: int | None = None
    values: dict | None = field(default=None)
    #: Client-chosen correlation id, echoed in the response.
    request_id: int = 0


@dataclass(frozen=True)
class Response:
    """Outcome of one request.

    ``ok=False`` carries the error class name (``error``) and message
    (``detail``); the session's transaction -- if one was open -- has
    already been rolled back (except lock conflicts at the sharded
    front-end, which keep the transaction open for retry), so the client
    may immediately retry.  ``retryable`` mirrors the error taxonomy's
    contract (see ``docs/errors.md``): ``True`` means retrying the same
    work cannot double-apply anything and the condition is transient --
    back off and resubmit; ``False`` means a retry needs new information
    (fix the request, or check outcome first).
    """

    ok: bool
    op: str
    request_id: int = 0
    value: object = None
    error: str | None = None
    detail: str = ""
    retryable: bool = False
