"""Serving front-end: concurrent sessions over one protected image.

The paper's performance study drives the storage manager from a single
benchmark loop.  This package adds the missing runtime half: a
:class:`~repro.serve.server.Server` multiplexes N client sessions over
the same lock/latch managers, with per-session transaction state, a
request/response operation protocol, bounded admission (backpressure),
and per-session error containment -- one session hitting a quarantined
region or a lock conflict fails alone, it does not take the server down.

See ``docs/serving.md`` for the runtime model and knobs.
"""

from repro.serve.protocol import Request, Response
from repro.serve.server import Server
from repro.serve.session import Session

__all__ = ["Request", "Response", "Server", "Session"]
