"""Serving front-end: concurrent sessions over one protected image.

The paper's performance study drives the storage manager from a single
benchmark loop.  This package adds the missing runtime half: a
:class:`~repro.serve.server.Server` multiplexes N client sessions over
the same lock/latch managers, with per-session transaction state, a
request/response operation protocol, bounded admission (backpressure),
and per-session error containment -- one session hitting a quarantined
region or a lock conflict fails alone, it does not take the server down.

:class:`~repro.serve.shard_server.ShardServer` is the sharded variant:
the same protocol and admission control over a
:class:`~repro.shard.router.ShardedDatabase`, plus cross-shard deadlock
detection (youngest-victim abort) and, under a shard supervisor,
degraded-mode serving with retryable error responses.

See ``docs/serving.md`` for the runtime model and knobs.
"""

from repro.serve.protocol import Request, Response
from repro.serve.server import Server
from repro.serve.session import Session


def __getattr__(name: str):
    # Imported lazily: shard_server sits on top of repro.shard, which
    # itself imports this package's protocol module -- an eager import
    # here would close that loop during repro.shard's initialization.
    if name in ("ShardServer", "ShardSession"):
        from repro.serve import shard_server

        return getattr(shard_server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Request",
    "Response",
    "Server",
    "ShardServer",
    "ShardSession",
    "Session",
]
