"""Per-session transaction context and error containment.

A session owns at most one open transaction at a time and serializes its
own requests (an internal lock -- a client that shares a session between
threads gets in-order execution, not interleaving).  Failure of one
request is contained to the session: any :class:`~repro.errors.ReproError`
-- a lock conflict from another session's writer, a quarantined-region
read, a transaction-state violation -- rolls back *this* session's open
transaction and is reported in the response; the server, the image, and
every other session keep running.  Only :class:`~repro.errors.SimulatedCrash`
propagates: an armed crash point means the whole simulated process dies,
which no session survives.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.errors import ReproError, ServeError, SimulatedCrash
from repro.serve.protocol import MUTATING_OPS, OPS, Request, Response

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database
    from repro.txn.transaction import Transaction


class Session:
    """One client's view of the database."""

    def __init__(
        self, db: "Database", session_id: int, read_only: bool = False
    ) -> None:
        self.db = db
        self.session_id = session_id
        #: Read-only sessions (a hot standby serving reads before
        #: promotion) reject every mutating op with a contained error.
        self.read_only = read_only
        self.txn: "Transaction | None" = None
        self.closed = False
        self._serial = threading.Lock()
        self.requests_served = 0
        self.errors_contained = 0
        self.txns_committed = 0
        self.txns_aborted = 0

    # ----------------------------------------------------------- execute

    def execute(self, request: Request) -> Response:
        """Run one request; never raises for contained errors."""
        with self._serial:
            if self.closed:
                return self._error(request, ServeError("session is closed"))
            try:
                value = self._dispatch(request)
            except SimulatedCrash:
                raise
            except ReproError as exc:
                self._contain(exc)
                return self._error(request, exc)
            self.requests_served += 1
            return Response(
                ok=True, op=request.op, request_id=request.request_id, value=value
            )

    def _dispatch(self, request: Request):
        op = request.op
        if op not in OPS:
            raise ServeError(f"unknown op {op!r}")
        if self.read_only and op in MUTATING_OPS:
            raise ServeError(
                f"op {op!r} rejected: session {self.session_id} is "
                "read-only (replica not promoted)"
            )
        if op == "begin":
            if self.txn is not None:
                raise ServeError(
                    f"session {self.session_id} already has an open transaction"
                )
            self.txn = self.db.begin()
            return self.txn.txn_id
        if op == "commit":
            txn = self._require_txn()
            self.db.commit(txn)
            self.txn = None
            self.txns_committed += 1
            return txn.txn_id
        if op == "abort":
            txn = self._require_txn()
            self.db.abort(txn)
            self.txn = None
            self.txns_aborted += 1
            return txn.txn_id
        txn = self._require_txn()
        table = self.db.table(self._require(request, "table"))
        if op == "insert":
            return table.insert(txn, self._require(request, "values"))
        if op == "read":
            return table.read(txn, self._require(request, "slot"))
        if op == "update":
            slot = self._require(request, "slot")
            table.update(txn, slot, self._require(request, "values"))
            return slot
        if op == "delete":
            slot = self._require(request, "slot")
            table.delete(txn, slot)
            return slot
        if op == "lookup":
            return table.lookup(txn, self._require(request, "key"))
        # query: index lookup + record read, the TPC-B point read.
        slot = table.lookup(txn, self._require(request, "key"))
        if slot is None:
            return None
        return table.read(txn, slot)

    # ------------------------------------------------------- containment

    def _contain(self, cause: ReproError) -> None:
        """Roll back this session's open transaction, and only it."""
        txn = self.txn
        self.txn = None
        if txn is None:
            return
        try:
            self.db.abort(txn)
            self.txns_aborted += 1
        except ReproError:
            # The abort itself failed (e.g. the database crashed under
            # us); drop the transaction reference -- recovery owns it now.
            pass
        self.errors_contained += 1
        del cause  # reported by the caller; nothing more to do with it

    def close(self) -> None:
        """End the session; an open transaction rolls back."""
        with self._serial:
            if self.closed:
                return
            self.closed = True
            txn = self.txn
            self.txn = None
            if txn is not None:
                try:
                    self.db.abort(txn)
                    self.txns_aborted += 1
                except ReproError:
                    pass

    # ---------------------------------------------------------- helpers

    def _require_txn(self) -> "Transaction":
        if self.txn is None:
            raise ServeError(
                f"session {self.session_id} has no open transaction; "
                "send 'begin' first"
            )
        return self.txn

    def _require(self, request: Request, name: str):
        value = getattr(request, name)
        if value is None:
            raise ServeError(f"op {request.op!r} needs {name!r}")
        return value

    def _error(self, request: Request, exc: Exception) -> Response:
        return Response(
            ok=False,
            op=request.op,
            request_id=request.request_id,
            error=type(exc).__name__,
            detail=str(exc),
            retryable=bool(getattr(exc, "retryable", False)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else ("in-txn" if self.txn else "idle")
        return f"Session(id={self.session_id}, {state})"
