"""The cache-recovery model (Section 4.1/4.2).

When a precheck fails under Read Prechecking, or an audit fails under the
plain Data Codeword scheme, *direct* corruption is present but -- by those
schemes' guarantees -- has not been read by any transaction (precheck) or
is assumed not to have been (plain audits find it before the checkpointer
propagates it).  The corrupted cache region can then be repaired in place,
without crashing, "by applying standard recovery techniques to the region
of data corrupted":

1. reload the region's bytes from the anchored (certified clean)
   checkpoint image;
2. replay physical redo records overlapping the region -- first from the
   stable log starting at the checkpoint's ``CK_end``, then from the
   in-memory system log tail;
3. replay not-yet-migrated updates from the local redo logs of active
   transactions (committed operations' records are already in the system
   log; open operations' records are still local);
4. recompute the region's codeword.

This restores exactly the state the prescribed interface produced, erasing
the wild write.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.wal.records import UpdateRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database


def _overlap(start_a: int, len_a: int, start_b: int, len_b: int) -> tuple[int, int] | None:
    lo = max(start_a, start_b)
    hi = min(start_a + len_a, start_b + len_b)
    if hi <= lo:
        return None
    return lo, hi - lo


def repair_regions(db: "Database", region_ids: list[int]) -> int:
    """Repair directly-corrupted regions in the cache image.

    Returns the number of regions repaired.  Raises
    :class:`~repro.errors.RecoveryError` if the scheme has no codeword
    table (there is nothing to define a region or verify the repair).
    """
    table = db.scheme.codeword_table
    if table is None:
        raise RecoveryError("cache recovery needs a codeword scheme")

    ck_end = db.checkpointer.anchored_ck_end()
    repaired = 0
    for region_id in region_ids:
        start, length = table.region_bounds(region_id)
        latch = getattr(db.scheme, "protection_latches", None)
        if latch is not None:
            region_latch = latch.latch(region_id)
            region_latch.acquire("X")
        try:
            buffer = bytearray(db.checkpointer.read_image_range(start, length))
            _apply_overlapping_updates(db, buffer, start, length, ck_end)
            db.memory.restore(start, bytes(buffer))
            table.rebuild_region(region_id)
            if not table.matches(region_id):  # pragma: no cover - sanity
                raise RecoveryError(f"region {region_id} still corrupt after repair")
            repaired += 1
        finally:
            if latch is not None:
                region_latch.release()
    maintainer = getattr(db.scheme, "maintainer", None)
    if maintainer is not None:
        # A repaired region matches its (recomputed) codeword again;
        # release it from quarantine so reads flow.  The repair wrote
        # below the hooks, so an in-flight background sweep must
        # re-check these regions at join.
        maintainer.note_repair(region_ids)
        maintainer.unquarantine(region_ids)
    return repaired


def _apply_overlapping_updates(
    db: "Database", buffer: bytearray, start: int, length: int, ck_end: int
) -> None:
    """Replay every prescribed write overlapping ``[start, start+length)``."""

    def apply(record: UpdateRecord) -> None:
        clip = _overlap(start, length, record.address, len(record.image))
        if clip is None:
            return
        lo, n = clip
        img_off = lo - record.address
        buf_off = lo - start
        buffer[buf_off : buf_off + n] = record.image[img_off : img_off + n]

    for _lsn, record in db.system_log.scan(ck_end):
        if isinstance(record, UpdateRecord):
            apply(record)
    for _lsn, record in db.system_log.tail:
        if isinstance(record, UpdateRecord):
            apply(record)
    # Open operations' updates are still in local redo logs.
    for txn in db.manager.att:
        for record in txn.redo_log.records:
            if isinstance(record, UpdateRecord):
                apply(record)
