"""Archive copies and media recovery with log amendment.

Section 4.3 notes that the checkpoint finishing corruption recovery
"invalidates all archives.  The log may be amended during recovery to
avoid this problem, but this scheme is omitted for simplicity."  This
module implements the omitted scheme:

* :func:`create_archive` copies a freshly certified checkpoint (image,
  meta, anchor) to an archive directory;
* corruption recovery appends :class:`~repro.wal.records.AmendRecord`
  entries to the log whenever it deletes transactions from history
  (see ``RestartRecovery._write_amendments``);
* :func:`recover_from_archive` restores the archived checkpoint and
  replays the *full* log over it -- collecting amend records in a
  prepass so the replay re-runs the same delete-transaction decisions.
  Without the amendment, a raw replay would re-apply the deleted
  transactions' writes and resurrect the corruption.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ArchiveError, SimulatedCrash
from repro.recovery.checkpoint import ANCHOR_FILE
from repro.recovery.restart import (
    CorruptionContext,
    RecoveryReport,
    RestartRecovery,
    load_corruption_note,
)
from repro.wal.records import AmendRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database, DBConfig

ARCHIVE_MANIFEST = "archive.json"


@dataclass(frozen=True)
class ArchiveInfo:
    """Manifest of one archive copy."""

    path: str
    image: str
    ck_end: int


def create_archive(db: "Database", archive_dir: str) -> ArchiveInfo:
    """Copy the current certified checkpoint into ``archive_dir``.

    A fresh checkpoint is taken first so the archive is certified
    corruption-free and update-consistent at its own ``CK_end``.
    """
    from repro.storage.database import CATALOG_FILE

    result = db.checkpoint()
    if not result.certified:
        raise ArchiveError(
            "cannot archive: the checkpoint failed certification (the "
            "image is corrupt); recover first"
        )
    os.makedirs(archive_dir, exist_ok=True)
    image = result.image
    for filename in (f"ckpt_{image}.img", f"ckpt_{image}.meta", ANCHOR_FILE):
        shutil.copy2(db.path(filename), os.path.join(archive_dir, filename))
    # The catalog rides along so the archive is self-contained: a replica
    # bootstrapping into an empty directory needs the schema to rebuild
    # its layout before it can replay a single record.
    catalog = db.path(CATALOG_FILE)
    if os.path.exists(catalog):
        shutil.copy2(catalog, os.path.join(archive_dir, CATALOG_FILE))
    manifest = {"image": image, "ck_end": result.ck_end}
    with open(os.path.join(archive_dir, ARCHIVE_MANIFEST), "w") as handle:
        json.dump(manifest, handle)
    return ArchiveInfo(path=archive_dir, image=image, ck_end=result.ck_end)


def read_archive_info(archive_dir: str) -> ArchiveInfo:
    path = os.path.join(archive_dir, ARCHIVE_MANIFEST)
    if not os.path.exists(path):
        raise ArchiveError(f"no archive manifest at {path}")
    with open(path) as handle:
        manifest = json.load(handle)
    return ArchiveInfo(
        path=archive_dir, image=manifest["image"], ck_end=manifest["ck_end"]
    )


def recover_from_archive(
    config: "DBConfig", archive_dir: str, crashpoints=None
) -> tuple["Database", RecoveryReport]:
    """Media recovery: restore the archive, replay the amended log.

    The database directory's checkpoint files and anchor are replaced by
    the archive's; the system log (and catalog) stay.  Amend records with
    LSNs after the archive's ``CK_end`` reconstruct the corruption
    contexts of every corruption recovery that happened since the archive
    was taken, so the replay deletes the same transactions again.

    ``crashpoints`` (a :class:`~repro.faults.crashpoints.CrashPointRegistry`)
    rides into the database; ``archive.after_restore`` fires after the
    checkpoint files are copied but before replay begins.  Media recovery
    is restartable from that state: the copied files are the archive's
    own bytes, so running it again converges.
    """
    from repro.storage.database import Database

    info = read_archive_info(archive_dir)
    for filename in (f"ckpt_{info.image}.img", f"ckpt_{info.image}.meta", ANCHOR_FILE):
        source = os.path.join(archive_dir, filename)
        shutil.copy2(source, os.path.join(config.dir, filename))

    db = Database(config, crashpoints=crashpoints)
    db.crashpoints.reach("archive.after_restore")
    db._load_catalog()
    db._build_layout()
    db._open_log_and_manager()

    # Whether evidence kinds combine is a property of the protection
    # stack, not of the logged amendment (the AmendRecord codec predates
    # pipelines); derive it from the scheme like use_checksums originally
    # was at note-load time.
    combine = bool(getattr(db.scheme, "combines_evidence", False))
    contexts: list[CorruptionContext] = []
    # Type-filtered scan: every non-Amend frame is CRC-checked and
    # skipped without constructing the record, so this prepass costs one
    # pass over the bytes instead of materializing the whole log.
    for _lsn, record in db.system_log.scan(info.ck_end, only=(AmendRecord,)):
        contexts.append(
            CorruptionContext(
                corrupt_ranges=tuple(record.corrupt_ranges),
                audit_sn=record.audit_sn,
                use_checksums=record.use_checksums,
                reads_traced=True,
                from_amendment=True,
                root_txns=tuple(record.root_txns),
                combine_evidence=record.use_checksums and combine,
            )
        )
    live = load_corruption_note(db)
    if live is not None:
        contexts.append(live)

    recovery = RestartRecovery(db, contexts if contexts else None)
    try:
        report = recovery.run()
    except SimulatedCrash:
        db.crash()
        raise
    db._started = True
    return db, report
