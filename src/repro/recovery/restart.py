"""Restart recovery: Dali multi-level recovery plus the delete-transaction
corruption recovery algorithm of Section 4.3.

Normal restart ("repeating history physically", Section 2.1):

1. load the anchored checkpoint image and its ATT (with local undo logs);
2. redo phase: forward scan from ``CK_end`` applying every physical update
   record, while reconstructing local undo logs (pre-images captured
   before each redo; operation commit records replace an operation's
   physical undo with its logical undo);
3. undo phase: transactions without a commit/abort record are rolled back
   level by level -- physical (level-0) undo first, then logical undo of
   committed operations, newest first;
4. a checkpoint finishes recovery.

Delete-transaction mode is the same scan with the modifications of
Section 4.3: a CorruptDataTable (byte intervals) and CorruptTransTable are
maintained; writes of corrupt transactions are suppressed and their target
ranges become corrupt; begin-operation records that conflict with a
corrupt transaction's undone operations recruit their transaction; at
``Audit_SN`` the failed audit's regions seed the CorruptDataTable.  With
checksummed read logs the CorruptDataTable is dispensed with entirely:
a logged checksum that does not match the recovering image recruits the
reader, which yields a *view-consistent* delete history.

A stacked configuration carrying *both* evidence kinds (an audit-only
codeword member plus checksummed read logging,
``scheme="data_cw+cw_read_logging"``) runs in **combined** mode: checksum
comparison recruits precisely where a checksum exists, and the
audit-populated CorruptDataTable recruits conservatively at region
granularity as well.  The union costs nothing in soundness (recruitment
is always conservative) and covers the XOR blind spot of pure checksums:
corruption whose words fold to the original checksum is invisible to the
comparison but still lands in the CDT via the failed audit's note.
"""

from __future__ import annotations

import bisect
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.codeword import fold_words
from repro.errors import RecoveryError
from repro.storage.database import CORRUPTION_NOTE_FILE
from repro.txn.transaction import ActiveTransactionTable
from repro.wal.local_log import LogicalUndoEntry, PhysicalUndo
from repro.wal.records import (
    AmendRecord,
    AuditBeginRecord,
    AuditEndRecord,
    OpBeginRecord,
    OpCommitRecord,
    ReadRecord,
    TxnAbortRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    TxnPrepareRecord,
    UpdateRecord,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database

import json


@dataclass(frozen=True)
class CorruptionContext:
    """What restart knows about detected corruption."""

    corrupt_ranges: tuple[tuple[int, int], ...]
    audit_sn: int
    use_checksums: bool
    #: whether the log contains read records; without them (plain Data
    #: Codeword / Read Prechecking), corruption can only be traced through
    #: writes and operation conflicts -- a documented weaker mode.
    reads_traced: bool = True
    #: True when this context was reconstructed from an AmendRecord during
    #: archive recovery (no new amendment is written for it).
    from_amendment: bool = False
    #: transactions to delete as *logical* corruption roots (user-named
    #: bad transactions -- incorrect data entry, buggy application logic);
    #: their taint is traced through the read log exactly like physical
    #: corruption.
    root_txns: tuple[int, ...] = ()
    #: True when the protection stack carries both audit-based and
    #: checksum-based evidence (``ProtectionPipeline.combines_evidence``):
    #: the scan then unions checksum-mismatch recruitment with the
    #: audit-populated CorruptDataTable instead of choosing one.
    combine_evidence: bool = False


def load_corruption_note(db: "Database") -> CorruptionContext | None:
    """Build the corruption context for a restart.

    A corruption note (written by :meth:`Database.crash_with_corruption`)
    always triggers delete-transaction recovery.  Without a note, schemes
    that log read checksums still run it on every restart, because only
    then can corruption that occurred after the last audit be caught
    (Section 4.3).
    """
    path = db.path(CORRUPTION_NOTE_FILE)
    use_checksums = bool(getattr(db.scheme, "logs_read_checksums", False))
    reads_traced = bool(getattr(db.scheme, "logs_reads", False))
    combine = bool(getattr(db.scheme, "combines_evidence", False))
    if os.path.exists(path):
        with open(path) as handle:
            note = json.load(handle)
        return CorruptionContext(
            corrupt_ranges=tuple((int(s), int(l)) for s, l in note["corrupt_ranges"]),
            audit_sn=int(note["audit_sn"]),
            use_checksums=use_checksums,
            reads_traced=reads_traced,
            combine_evidence=combine,
        )
    if use_checksums:
        # No note, but reads carry checksums: run the scan anyway (it is
        # the only way to catch corruption after the last audit).  There
        # are no audit ranges to combine with on this path.
        return CorruptionContext(
            corrupt_ranges=(), audit_sn=0, use_checksums=True, reads_traced=True
        )
    return None


class CorruptDataTable:
    """A set of byte intervals, merged on insert, with overlap queries."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    def add(self, start: int, length: int) -> None:
        if length <= 0:
            return
        end = start + length
        i = bisect.bisect_left(self._starts, start)
        # Merge with a predecessor that reaches into us.
        if i > 0 and self._ends[i - 1] >= start:
            i -= 1
            start = self._starts[i]
            end = max(end, self._ends[i])
            del self._starts[i]
            del self._ends[i]
        # Merge with successors we swallow.
        while i < len(self._starts) and self._starts[i] <= end:
            end = max(end, self._ends[i])
            del self._starts[i]
            del self._ends[i]
        self._starts.insert(i, start)
        self._ends.insert(i, end)

    def overlaps(self, start: int, length: int) -> bool:
        if length <= 0 or not self._starts:
            return False
        end = start + length
        i = bisect.bisect_right(self._starts, start)
        if i > 0 and self._ends[i - 1] > start:
            return True
        return i < len(self._starts) and self._starts[i] < end

    @property
    def ranges(self) -> list[tuple[int, int]]:
        return [(s, e - s) for s, e in zip(self._starts, self._ends)]

    def __len__(self) -> int:
        return len(self._starts)


@dataclass
class RecoveryReport:
    """What recovery did; returned by :meth:`Database.recover`."""

    #: "normal" | "delete-transaction" | "delete-transaction-view" |
    #: "delete-transaction-combined" | "delete-transaction-writes-only" |
    #: "delete-transaction-logical"
    mode: str
    ck_end: int
    audit_sn: int
    redo_applied: int = 0
    writes_suppressed: int = 0
    deleted_committed: tuple[int, ...] = ()
    rolled_back: tuple[int, ...] = ()
    recruited: dict[int, str] = field(default_factory=dict)
    corrupt_range_count: int = 0
    #: Prepared (in-doubt) 2PC branches the resolver decided: committed
    #: branches get a commit record appended and their effects kept;
    #: aborted (or unresolvable -- presumed abort) branches roll back.
    resolved_committed: tuple[int, ...] = ()
    resolved_aborted: tuple[int, ...] = ()

    @property
    def deleted_set(self) -> set[int]:
        """Committed transactions removed from history (report to user)."""
        return set(self.deleted_committed)


class _RecTxn:
    """A transaction's state as reconstructed during the redo scan."""

    __slots__ = (
        "txn_id",
        "entries",
        "op_stack",
        "corrupt",
        "committed_in_log",
        "reason",
        "is_recovery",
        "prepared",
        "gid",
    )

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        self.entries: list = []
        # (op_id, level, object_key, undo_mark)
        self.op_stack: list[tuple[int, int, str, int]] = []
        self.corrupt = False
        self.committed_in_log = False
        self.reason = ""
        self.is_recovery = False
        self.prepared = False
        self.gid = ""


class RestartRecovery:
    """One restart recovery run over a freshly rebuilt database shell."""

    def __init__(
        self,
        db: "Database",
        corruption: CorruptionContext | list[CorruptionContext] | None,
        in_doubt_resolver=None,
    ) -> None:
        self.db = db
        #: ``gid -> bool`` callable consulted for prepared (in-doubt) 2PC
        #: branches found on the log: True means the coordinator decided
        #: commit.  ``None`` or an unknown gid means presumed abort.
        self.in_doubt_resolver = in_doubt_resolver
        if corruption is None:
            contexts: list[CorruptionContext] = []
        elif isinstance(corruption, CorruptionContext):
            contexts = [corruption]
        else:
            contexts = list(corruption)
        self.contexts = contexts
        self.cdt = CorruptDataTable()
        self._txns: dict[int, _RecTxn] = {}
        self._corrupt_keys: set[str] = set()
        self._seq = 1
        self._max_txn_id = 0
        self._unseeded: list[CorruptionContext] = list(contexts)
        self.root_txns: set[int] = set()
        for context in contexts:
            self.root_txns.update(context.root_txns)
        if contexts:
            self.use_checksums = any(c.use_checksums for c in contexts)
            self.combine = any(c.combine_evidence for c in contexts)
            reads_traced = all(c.reads_traced for c in contexts)
            only_logical = bool(self.root_txns) and not any(
                c.corrupt_ranges or c.use_checksums for c in contexts
            )
            if only_logical:
                mode = "delete-transaction-logical"
            elif self.use_checksums and self.combine:
                mode = "delete-transaction-combined"
            elif self.use_checksums:
                mode = "delete-transaction-view"
            elif reads_traced:
                mode = "delete-transaction"
            else:
                # Detection-only schemes crashed into corruption recovery:
                # reads were never logged, so only direct corruption and
                # write/conflict-propagated corruption can be removed.
                # Indirect corruption carried purely through reads is NOT
                # traced -- the paper's reason to pay for read logging.
                mode = "delete-transaction-writes-only"
        else:
            self.use_checksums = False
            self.combine = False
            mode = "normal"
        self.report = RecoveryReport(
            mode=mode,
            ck_end=0,
            audit_sn=max((c.audit_sn for c in contexts), default=0),
        )
        #: Continuous-restore mode only (see :meth:`continuous`): redo
        #: applies codeword maintenance alongside each image restore, so
        #: a replica's table stays incrementally correct between its own
        #: audits.  Plain restart leaves this False -- ``_undo_phase``
        #: rebuilds the table wholesale, so per-record maintenance there
        #: would be wasted work.
        self.maintain_codewords = False

    @property
    def corruption_mode(self) -> bool:
        return bool(self.contexts)

    @property
    def _track_cdt(self) -> bool:
        """Whether the CorruptDataTable participates in this scan.

        Pure checksum mode dispenses with it (Section 4.3); combined mode
        keeps it alongside the checksum comparison.
        """
        return not self.use_checksums or self.combine

    # --------------------------------------------------------------- run

    def run(self) -> RecoveryReport:
        """Run recovery; every phase boundary is a registered crash point.

        Recovery is *idempotent* across those points: crashing at any of
        them and re-running converges to a byte-identical image and an
        equivalent report.  Before ``recovery.after_undo`` the stable
        inputs are unchanged (torn-tail truncation is itself idempotent);
        after it, the log additionally carries committed compensation
        transactions, which a re-run replays in its redo phase and then
        skips in its undo phase (lenient logical undo + the rule that
        ``is_recovery`` transactions are never recruited).
        """
        db = self.db
        crashpoints = db.crashpoints
        image, ck_end, _meta_audit_sn, att_bytes = db.checkpointer.load_latest()
        self.report.ck_end = ck_end
        self._load_checkpointed_att(att_bytes)
        self._seed_due_contexts(ck_end)
        last_lsn = self._redo_phase(ck_end)
        crashpoints.reach("recovery.after_redo")
        # The system log was reopened in append mode with fresh counters;
        # resume LSN assignment after the last stable record.
        db.system_log.next_lsn = last_lsn + 1
        db.system_log.end_of_stable_lsn = last_lsn + 1
        db.manager._next_txn_id = self._max_txn_id + 1
        db.manager._next_seq = self._seq + 1
        self._undo_phase()
        crashpoints.reach("recovery.after_undo")
        self._finish()
        return self.report

    def _load_checkpointed_att(self, att_bytes: bytes) -> None:
        for txn_id, ckpt_txn in ActiveTransactionTable.decode(att_bytes).items():
            rec = _RecTxn(txn_id)
            rec.entries = list(ckpt_txn.undo_log.entries)
            rec.op_stack = list(ckpt_txn.open_ops)
            self._txns[txn_id] = rec
            self._max_txn_id = max(self._max_txn_id, txn_id)
            for entry in rec.entries:
                self._seq = max(self._seq, entry.seq + 1)

    # ------------------------------------------------- continuous replay

    @classmethod
    def continuous(
        cls,
        db: "Database",
        ck_end: int,
        att_bytes: bytes,
        maintain_codewords: bool = True,
    ) -> "RestartRecovery":
        """A recovery run driven one record at a time: the hot standby.

        A replica is a restart recovery that never finishes.  The caller
        loads the archived checkpoint image into memory first, then feeds
        every shipped record through :meth:`apply_record` as it arrives,
        instead of this class scanning a local log; :meth:`complete`
        (promotion) runs the undo/finish tail whenever failover demands
        it.  ``maintain_codewords`` keeps the replica's codeword table
        incrementally correct during replay -- redo bypasses the
        prescribed update interface, so without it the table would only
        match the image at rebuild points and the replica's own audits
        could not convict replica-side wild writes.
        """
        recovery = cls(db, None)
        recovery.report.ck_end = ck_end
        recovery.maintain_codewords = maintain_codewords
        recovery._load_checkpointed_att(att_bytes)
        return recovery

    def apply_record(self, record) -> None:
        """Replay one shipped record through the redo machinery."""
        self._dispatch(record)

    def complete(self, last_lsn: int) -> RecoveryReport:
        """Finish a continuous replay: the promotion tail of :meth:`run`.

        Rolls back transactions still in flight at ``last_lsn`` (the last
        contiguous applied LSN) and takes the recovery checkpoint.  The
        caller must run its certifying sweep *before* this:
        ``_undo_phase`` rebuilds every codeword from the image, which
        would fold existing replica-side corruption into fresh, matching
        codewords and mask it forever.
        """
        db = self.db
        db.system_log.next_lsn = last_lsn + 1
        db.system_log.end_of_stable_lsn = last_lsn + 1
        db.manager._next_txn_id = self._max_txn_id + 1
        db.manager._next_seq = self._seq + 1
        self._undo_phase()
        self._finish()
        return self.report

    def _seed_due_contexts(self, lsn: int) -> None:
        """Seed the CorruptDataTable of every context whose Audit_SN has
        been passed by the scan ("when Audit_LSN is passed", Section 4.3)."""
        if not self._unseeded:
            return
        due = [c for c in self._unseeded if c.audit_sn <= lsn]
        if not due:
            return
        self._unseeded = [c for c in self._unseeded if c.audit_sn > lsn]
        for context in due:
            if context.use_checksums and not context.combine_evidence:
                continue  # checksums replace the CorruptDataTable entirely
            for start, length in context.corrupt_ranges:
                self.cdt.add(start, length)

    # ------------------------------------------------------- redo phase

    def _redo_phase(self, ck_end: int) -> int:
        # Frames below CK_end are CRC-verified but never constructed
        # (the scan's from_lsn filter skips decoding them); the true end
        # of log still comes from last_scanned_lsn, which tracks every
        # frame the scan traversed, filtered or not.
        system_log = self.db.system_log
        for lsn, record in system_log.scan(ck_end):
            self._seed_due_contexts(lsn)
            self._dispatch(record)
        # A crash mid-flush can leave a torn record at the end of the
        # stable log; cut it off before recovery appends anything new.
        system_log.truncate_torn_tail()
        return system_log.last_scanned_lsn

    def _dispatch(self, record) -> None:
        if isinstance(record, UpdateRecord):
            self._on_update(record)
        elif isinstance(record, ReadRecord):
            self._on_read(record)
        elif isinstance(record, OpBeginRecord):
            self._on_op_begin(record)
        elif isinstance(record, OpCommitRecord):
            self._on_op_commit(record)
        elif isinstance(record, TxnBeginRecord):
            rec = self._get_txn(record.txn_id)
            rec.is_recovery = rec.is_recovery or record.is_recovery
        elif isinstance(record, TxnCommitRecord):
            self._on_txn_end(record.txn_id, committed=True)
        elif isinstance(record, TxnAbortRecord):
            self._on_txn_end(record.txn_id, committed=False)
        elif isinstance(record, TxnPrepareRecord):
            rec = self._get_txn(record.txn_id)
            rec.prepared = True
            rec.gid = record.gid
        elif isinstance(record, AmendRecord):
            # An amend record marks the end of a corruption-recovery
            # episode: everything corrupt was removed, compensations were
            # logged (as is_recovery transactions), and a certified
            # checkpoint followed.  Heal the CorruptDataTable and the
            # conflict-key set so post-recovery transactions that touch
            # the once-corrupt ranges are not wrongly recruited during an
            # archive replay, and drop the frozen undo logs of corrupt
            # transactions -- the logged compensations already undid them;
            # re-running them in this scan's undo phase would compensate
            # twice.
            self.cdt = CorruptDataTable()
            self._corrupt_keys.clear()
            for rec in self._txns.values():
                if rec.corrupt:
                    rec.entries.clear()
        elif isinstance(record, (AuditBeginRecord, AuditEndRecord)):
            pass
        else:  # pragma: no cover - codec and dispatch must stay in sync
            raise RecoveryError(f"unhandled record {type(record).__name__}")

    def _get_txn(self, txn_id: int) -> _RecTxn:
        rec = self._txns.get(txn_id)
        if rec is None:
            rec = _RecTxn(txn_id)
            self._txns[txn_id] = rec
            self._max_txn_id = max(self._max_txn_id, txn_id)
        if txn_id in self.root_txns and not rec.corrupt:
            self._recruit(rec, "user-specified deletion root")
        return rec

    def _recruit(self, rec: _RecTxn, reason: str) -> None:
        """Add a transaction to the CorruptTransTable, freezing its undo.

        Its undo log keeps only actions taken before it first read corrupt
        data; the conflict-key set grows so later operations that would
        block its rollback are recruited too.

        Compensation transactions spawned by an earlier recovery are never
        recruited: they ran against a clean post-undo image, and
        suppressing their writes during an archive replay would leave the
        transactions they compensated half-undone.
        """
        if rec.corrupt or rec.is_recovery:
            return
        rec.corrupt = True
        rec.reason = reason
        self.report.recruited[rec.txn_id] = reason
        for entry in rec.entries:
            if isinstance(entry, LogicalUndoEntry):
                self._corrupt_keys.add(entry.object_key)
        for _op_id, _level, key, _mark in rec.op_stack:
            self._corrupt_keys.add(key)

    def _on_update(self, record: UpdateRecord) -> None:
        rec = self._get_txn(record.txn_id)
        if self.corruption_mode and not rec.corrupt:
            if self.use_checksums and record.old_checksum is not None:
                current = self.db.memory.read(record.address, record.length)
                if fold_words(current) != record.old_checksum:
                    self._recruit(rec, "write checksum mismatch")
            if (
                not rec.corrupt
                and self._track_cdt
                and self.cdt.overlaps(record.address, record.length)
            ):
                self._recruit(rec, "wrote data marked corrupt")
        if self.corruption_mode and rec.corrupt:
            # Suppress the write; everything it would have produced is
            # corrupt data.
            if self._track_cdt:
                self.cdt.add(record.address, record.length)
            self.report.writes_suppressed += 1
            return
        op_id = rec.op_stack[-1][0] if rec.op_stack else 0
        pre_image = self.db.memory.read(record.address, record.length)
        rec.entries.append(
            PhysicalUndo(self._take_seq(), op_id, record.address, pre_image, True)
        )
        self.db.memory.restore(record.address, record.image)
        if self.maintain_codewords:
            maintainer = getattr(self.db.pipeline, "maintainer", None)
            if maintainer is not None:
                maintainer.apply_maintenance(
                    record.address, pre_image, record.image
                )
        self.db.meter.charge("redo_apply")
        self.report.redo_applied += 1

    def _on_read(self, record: ReadRecord) -> None:
        if not self.corruption_mode:
            return
        rec = self._get_txn(record.txn_id)
        if rec.corrupt:
            return
        if self.use_checksums and record.checksum is not None:
            current = self.db.memory.read(record.address, record.length)
            if fold_words(current) != record.checksum:
                self._recruit(rec, "read checksum mismatch")
                return
        if self._track_cdt and self.cdt.overlaps(record.address, record.length):
            self._recruit(rec, "read data marked corrupt")

    def _on_op_begin(self, record: OpBeginRecord) -> None:
        rec = self._get_txn(record.txn_id)
        if self.corruption_mode and rec.corrupt:
            return
        if (
            self.corruption_mode
            and record.object_key in self._corrupt_keys
            and not rec.is_recovery
        ):
            # The operation conflicts with an operation that must be
            # rolled back from a corrupt transaction; it cannot be allowed
            # to proceed in the delete history.  (A recovery transaction's
            # op on that key IS the rollback -- it proceeds.)
            self._recruit(rec, f"conflicts with corrupt undo on {record.object_key}")
            return
        rec.op_stack.append(
            (record.op_id, record.level, record.object_key, len(rec.entries))
        )

    def _on_op_commit(self, record: OpCommitRecord) -> None:
        rec = self._get_txn(record.txn_id)
        if self.corruption_mode and rec.corrupt:
            return
        mark = None
        for i in range(len(rec.op_stack) - 1, -1, -1):
            if rec.op_stack[i][0] == record.op_id:
                mark = rec.op_stack[i][3]
                del rec.op_stack[i:]
                break
        if mark is None:
            raise RecoveryError(
                f"operation commit {record.op_id} without matching begin "
                f"(txn {record.txn_id})"
            )
        del rec.entries[mark:]
        rec.entries.append(
            LogicalUndoEntry(
                self._take_seq(),
                record.op_id,
                record.level,
                record.object_key,
                record.logical_undo,
            )
        )

    def _on_txn_end(self, txn_id: int, committed: bool) -> None:
        rec = self._get_txn(txn_id)
        if self.corruption_mode and rec.corrupt:
            # Commit/abort records of corrupt transactions are ignored;
            # the transaction is deleted from history instead.
            rec.committed_in_log = rec.committed_in_log or committed
            return
        self._txns.pop(txn_id, None)

    def _take_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # ------------------------------------------------------- undo phase

    def _resolve_in_doubt(self) -> None:
        """Decide prepared 2PC branches before the undo phase rolls back.

        A branch whose prepare record reached the stable log voted yes and
        must await the coordinator's decision: the resolver (the
        coordinator's durable decision log) answers ``True`` for commit.
        Committing is one appended commit record -- the branch's redo is
        already on the log -- flushed before undo begins, so a crash
        mid-recovery re-resolves to the same outcome (the decision log is
        durable) or finds the branch already ended.  No resolver, or a gid
        the resolver does not know, means presumed abort: the branch falls
        through to the normal rollback below.
        """
        db = self.db
        committed: list[int] = []
        aborted: list[int] = []
        for rec in list(self._txns.values()):
            if not rec.prepared:
                continue
            decide = self.in_doubt_resolver
            if decide is not None and bool(decide(rec.gid)):
                db.system_log.append(TxnCommitRecord(rec.txn_id))
                committed.append(rec.txn_id)
                del self._txns[rec.txn_id]
            else:
                aborted.append(rec.txn_id)
        if committed:
            db.system_log.flush()
        self.report.resolved_committed = tuple(sorted(committed))
        self.report.resolved_aborted = tuple(sorted(aborted))

    def _undo_phase(self) -> None:
        db = self.db
        self._resolve_in_doubt()
        remaining = list(self._txns.values())
        physical: list[tuple[int, PhysicalUndo]] = []
        logical: list[tuple[int, LogicalUndoEntry]] = []
        for rec in remaining:
            for entry in rec.entries:
                if isinstance(entry, PhysicalUndo):
                    physical.append((entry.seq, entry))
                else:
                    logical.append((entry.seq, entry))
        # Level 0 first: physical before-images, newest first, below the
        # protection scheme (codewords are rebuilt afterwards).
        for _seq, entry in sorted(physical, key=lambda p: -p[0]):
            db.memory.restore(entry.address, entry.image)
            db.meter.charge("undo_apply")
        # Codewords now match the post-physical-undo image; hardware
        # protection re-covers the pages.
        db.scheme.startup()
        # Level-0 state is consistent, logical compensation has not begun;
        # everything so far was volatile, so a crash here re-runs from the
        # same stable inputs.
        db.crashpoints.reach("recovery.mid_undo")
        # Higher levels: execute logical undo operations through the full
        # prescribed machinery, newest first.  Each runs in its own
        # recovery transaction so locks release immediately.
        for _seq, entry in sorted(logical, key=lambda p: -p[0]):
            if entry.undo.op_name == "noop":
                continue
            rtxn = db.manager.begin(is_recovery=True)
            db._dispatch_logical_undo(rtxn, entry.undo, lenient=True)
            db.manager.commit(rtxn)
        deleted = sorted(
            rec.txn_id for rec in remaining if rec.corrupt and rec.committed_in_log
        )
        rolled_back = sorted(
            rec.txn_id
            for rec in remaining
            if not (rec.corrupt and rec.committed_in_log)
        )
        self.report.deleted_committed = tuple(deleted)
        self.report.rolled_back = tuple(rolled_back)
        self.report.corrupt_range_count = len(self.cdt)

    # ------------------------------------------------------------ finish

    def _finish(self) -> None:
        """Amend the log, then checkpoint so a further crash cannot
        rediscover the corruption."""
        db = self.db
        db.crashpoints.reach("recovery.pre_complete")
        self._write_amendments()
        db.memory.dirty_pages.mark_all_dirty(db.memory.iter_pages())
        # Corruption recovery must certify the whole image, not just the
        # dirty working set an incremental audit mode would fold.
        result = db.checkpointer.checkpoint(force_full_audit=True)
        if not result.certified:
            raise RecoveryError(
                "post-recovery checkpoint failed its audit; the image is "
                "still corrupt"
            )
        note = db.path(CORRUPTION_NOTE_FILE)
        if os.path.exists(note):
            os.remove(note)

    def _write_amendments(self) -> None:
        """Append AmendRecords preserving this recovery's corruption
        contexts, so archives taken before the corruption stay valid
        (Section 4.3's omitted "log may be amended" scheme).

        Only written when the recovery actually changed history (deleted
        a committed transaction or suppressed writes) -- a clean
        delete-transaction pass is replay-equivalent to the raw log.
        """
        changed_history = bool(self.report.deleted_committed) or (
            self.report.writes_suppressed > 0
        )
        if not changed_history:
            return
        for context in self.contexts:
            if context.from_amendment:
                continue  # already on the log from a previous recovery
            self.db.system_log.append(
                AmendRecord(
                    txn_id=0,
                    corrupt_ranges=tuple(context.corrupt_ranges),
                    audit_sn=context.audit_sn,
                    use_checksums=context.use_checksums,
                    root_txns=tuple(context.root_txns),
                )
            )
        self.db.system_log.flush()
