"""Logical corruption repair: delete user-named transactions and their taint.

The paper's abstract promises that read logging "may also prove useful
when resolving problems caused by incorrect data entry and other logical
errors", and Section 7 sketches the idea: a transaction that entered bad
data (a fat-fingered deposit, a buggy application) is *logical* corruption
-- codewords cannot detect it, but once a human identifies the offending
transaction, the same delete-transaction machinery can remove it and
everything it tainted.

:func:`delete_transactions` runs delete-transaction recovery with the
named transactions as *roots*: every root is recruited into the
CorruptTransTable at its first log record, its writes are suppressed (and
their ranges poisoned), and any transaction that later read those ranges
is recruited transitively -- exactly the Section 4.3 algorithm, seeded by
a human instead of a failed audit.

Checksums cannot help here (the bad values were written through the
prescribed interface, so every checksum matches); tracing is always
CorruptDataTable-based and the result is a conflict-consistent delete
history.  Read logging (either variant) must have been enabled while the
bad transactions ran, or reads cannot be traced.

:func:`trace_readers` is the read-only companion: an audit-trail query
that reports which transactions read given byte ranges, without changing
anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import RecoveryError
from repro.recovery.restart import CorruptionContext, RecoveryReport, RestartRecovery
from repro.wal.records import ReadRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database, DBConfig


def delete_transactions(
    config: "DBConfig", txn_ids: Iterable[int]
) -> tuple["Database", RecoveryReport]:
    """Delete committed transactions (and their taint) from history.

    The database must already be crashed or closed (recovery rebuilds it
    from the directory).  Returns the recovered database and a report
    whose ``deleted_set`` contains the roots plus every transaction
    recruited transitively through the read log.
    """
    from repro.storage.database import Database

    roots = tuple(sorted(set(txn_ids)))
    if not roots:
        raise RecoveryError("no transactions named for deletion")
    db = Database(config)
    db._load_catalog()
    db._build_layout()
    db._open_log_and_manager()
    if not getattr(db.scheme, "logs_reads", False):
        raise RecoveryError(
            "logical deletion needs read logging (scheme 'read_logging' or "
            "'cw_read_logging'): without read records the taint of "
            f"{roots} cannot be traced"
        )
    context = CorruptionContext(
        corrupt_ranges=(),
        audit_sn=0,
        use_checksums=False,  # checksums match legitimate-but-wrong values
        reads_traced=True,
        root_txns=roots,
    )
    recovery = RestartRecovery(db, context)
    report = recovery.run()
    db._started = True
    return db, report


def trace_readers(
    db: "Database", ranges: list[tuple[int, int]], from_lsn: int = 0
) -> dict[int, list[tuple[int, int, int]]]:
    """Audit-trail query: which transactions read the given byte ranges?

    Scans the stable log (and the in-memory tail) for read records
    overlapping ``(start, length)`` ranges; returns
    ``{txn_id: [(lsn, address, length), ...]}``.  Purely informational --
    the Bjork-style audit trail the paper says read logging provides.
    """

    def overlaps(address: int, length: int) -> bool:
        for start, span in ranges:
            if address < start + span and start < address + length:
                return True
        return False

    hits: dict[int, list[tuple[int, int, int]]] = {}
    def note(lsn: int, record) -> None:
        if isinstance(record, ReadRecord) and overlaps(record.address, record.length):
            hits.setdefault(record.txn_id, []).append(
                (lsn, record.address, record.length)
            )

    for lsn, record in db.system_log.scan(from_lsn):
        note(lsn, record)
    for lsn, record in db.system_log.tail:
        if lsn >= from_lsn:
            note(lsn, record)
    return hits
