"""The prior-state model of corruption recovery (Section 4.1).

"In the prior-state model, the goal is to return the database to a
transaction consistent state prior to the first possible occurrence of
corruption by replaying logs which were generated prior to that point.
Most commercial systems support this model."

The paper does not evaluate it further because its cost is obvious: *all*
work after the corruption point is lost, and "it is up to the user to
deal with compensating for all transactions which have occurred after the
corruption, rather than just the ones determined to be possibly affected"
-- which is exactly the contrast the delete-transaction model improves on.
We implement it so that contrast can be measured (see the recovery-study
benchmark): the prior-state lost-transaction set is always a superset of
the delete-transaction deleted set.

Algorithm: load the anchored certified checkpoint, replay redo forward
only while the transaction that issued each record committed at an LSN
<= ``Audit_SN`` (the last point known corruption-free), and report every
transaction whose commit lies after that point as lost.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.storage.database import CORRUPTION_NOTE_FILE
from repro.wal.records import TxnCommitRecord, UpdateRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database


@dataclass
class PriorStateReport:
    """Outcome of a prior-state recovery."""

    cutoff_lsn: int
    ck_end: int
    redo_applied: int = 0
    #: committed transactions whose effects were discarded wholesale
    lost_committed: tuple[int, ...] = ()
    replayed_committed: tuple[int, ...] = ()
    details: dict = field(default_factory=dict)

    @property
    def lost_set(self) -> set[int]:
        return set(self.lost_committed)


def prior_state_recovery(db: "Database", cutoff_lsn: int) -> PriorStateReport:
    """Restore the database to the transaction-consistent state at ``cutoff_lsn``.

    ``cutoff_lsn`` is typically ``Audit_SN`` from the corruption note: the
    begin-LSN of the last clean audit, i.e. the last moment the database
    was known corruption-free.  Only transactions whose COMMIT record lies
    strictly before the cutoff are replayed; everything else -- corrupt or
    not -- is lost.

    The database shell must be freshly built (as in
    :meth:`Database.recover`); on return it is checkpointed and usable.
    """
    image_info = db.checkpointer.load_latest()
    _image, ck_end, _audit_sn, att_bytes = image_info
    if cutoff_lsn < ck_end:
        raise RecoveryError(
            f"cutoff LSN {cutoff_lsn} precedes the checkpoint's CK_end "
            f"{ck_end}; no certified starting point exists before it"
        )

    # Pass 1: find which transactions committed before the cutoff.
    committed_before: set[int] = set()
    committed_after: set[int] = set()
    last_lsn = -1
    for lsn, record in db.system_log.scan(0):
        last_lsn = lsn
        if isinstance(record, TxnCommitRecord):
            if lsn < cutoff_lsn:
                committed_before.add(record.txn_id)
            else:
                committed_after.add(record.txn_id)
    db.system_log.truncate_torn_tail()

    # Pass 2: replay only the safe transactions' physical updates.
    report = PriorStateReport(cutoff_lsn=cutoff_lsn, ck_end=ck_end)
    for lsn, record in db.system_log.scan(ck_end):
        if lsn >= cutoff_lsn:
            break
        if isinstance(record, UpdateRecord) and record.txn_id in committed_before:
            db.memory.restore(record.address, record.image)
            db.meter.charge("redo_apply")
            report.redo_applied += 1

    # The checkpoint image may contain effects of transactions that were
    # open at checkpoint time and did not commit before the cutoff; roll
    # them back from the checkpointed ATT's local undo logs.
    from repro.txn.transaction import ActiveTransactionTable
    from repro.wal.local_log import PhysicalUndo

    ckpt_txns = ActiveTransactionTable.decode(att_bytes)
    doomed = [t for t in ckpt_txns.values() if t.txn_id not in committed_before]
    logical_entries = []
    physical_entries = []
    for txn_state in doomed:
        for entry in txn_state.undo_log.entries:
            if isinstance(entry, PhysicalUndo):
                physical_entries.append(entry)
            else:
                logical_entries.append(entry)
    for entry in sorted(physical_entries, key=lambda e: -e.seq):
        db.memory.restore(entry.address, entry.image)
        db.meter.charge("undo_apply")

    db.system_log.next_lsn = last_lsn + 1
    db.system_log.end_of_stable_lsn = last_lsn + 1
    max_ckpt_txn = max(ckpt_txns, default=0)
    db.manager._next_txn_id = (
        max(committed_before | committed_after | {max_ckpt_txn}, default=0) + 1
    )
    db.scheme.startup()
    for entry in sorted(logical_entries, key=lambda e: -e.seq):
        if entry.undo.op_name == "noop":
            continue
        rtxn = db.manager.begin(is_recovery=True)
        db._dispatch_logical_undo(rtxn, entry.undo, lenient=True)
        db.manager.commit(rtxn)
    db.memory.dirty_pages.mark_all_dirty(db.memory.iter_pages())
    result = db.checkpointer.checkpoint(force_full_audit=True)
    if not result.certified:
        raise RecoveryError("prior-state image failed certification")
    note = db.path(CORRUPTION_NOTE_FILE)
    if os.path.exists(note):
        os.remove(note)

    report.lost_committed = tuple(sorted(committed_after))
    report.replayed_committed = tuple(sorted(committed_before))
    return report


def recover_prior_state(config) -> tuple["Database", PriorStateReport]:
    """Recover a crashed database under the prior-state model.

    The cutoff is taken from the corruption note's ``Audit_SN`` (a failed
    audit must have crashed the system; without a note there is no
    corruption point to cut at).
    """
    import json

    from repro.storage.database import Database

    db = Database(config)
    db._load_catalog()
    db._build_layout()
    db._open_log_and_manager()
    note_path = db.path(CORRUPTION_NOTE_FILE)
    if not os.path.exists(note_path):
        raise RecoveryError(
            "prior-state recovery needs a corruption note (a failed audit); "
            "use Database.recover for plain crashes"
        )
    with open(note_path) as handle:
        note = json.load(handle)
    report = prior_state_recovery(db, int(note["audit_sn"]))
    db._started = True
    return db, report
