"""Checkpointing, restart recovery, and corruption recovery."""

from repro.recovery.checkpoint import Checkpointer, CheckpointResult
from repro.recovery.history import (
    HistoryEvent,
    HistoryRecorder,
    check_conflict_consistent,
    check_view_consistent,
    expected_final_state,
)
from repro.recovery.restart import (
    CorruptionContext,
    CorruptDataTable,
    RecoveryReport,
    RestartRecovery,
    load_corruption_note,
)
from repro.recovery.cache_recovery import repair_regions
from repro.recovery.archive import (
    ArchiveInfo,
    create_archive,
    read_archive_info,
    recover_from_archive,
)
from repro.recovery.logical import delete_transactions, trace_readers
from repro.recovery.prior_state import (
    PriorStateReport,
    prior_state_recovery,
    recover_prior_state,
)

__all__ = [
    "Checkpointer",
    "CheckpointResult",
    "HistoryRecorder",
    "HistoryEvent",
    "check_conflict_consistent",
    "check_view_consistent",
    "expected_final_state",
    "RestartRecovery",
    "RecoveryReport",
    "CorruptionContext",
    "CorruptDataTable",
    "load_corruption_note",
    "repair_regions",
    "PriorStateReport",
    "prior_state_recovery",
    "recover_prior_state",
    "ArchiveInfo",
    "create_archive",
    "read_archive_info",
    "recover_from_archive",
    "delete_transactions",
    "trace_readers",
]
