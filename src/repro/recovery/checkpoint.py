"""Ping-pong checkpointing with corruption-free certification.

Following Section 2.1 and Section 4.2:

* two checkpoint images (``Ckpt_A``/``Ckpt_B``) are written alternately;
  the anchor file ``cur_ckpt`` names the most recent *valid* image;
* each checkpoint stores the dirty portions of the database, a copy of the
  ATT with local undo logs, and ``CK_end`` -- the LSN the image is
  update-consistent with (we flush the log and quiesce updates while
  copying pages, so the image is exactly consistent at the flushed end of
  log; the paper's Dali uses a weaker fuzzy protocol plus log-assisted
  repair, which we simplify away -- see DESIGN.md);
* after the image is written, *every* region of the database is audited;
  only a clean audit toggles the anchor, certifying the checkpoint free of
  both direct and indirect corruption ("If no page in the database has
  direct corruption, no indirect corruption could have occurred either").
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.audit import AuditReport
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database

ANCHOR_FILE = "cur_ckpt"
_META = struct.Struct("<QQI")  # ck_end, audit_sn, att_length


@dataclass(frozen=True)
class CheckpointResult:
    image: str
    ck_end: int
    pages_written: int
    certified: bool
    audit_report: AuditReport | None


class Checkpointer:
    """Writes and loads ping-pong checkpoints for a database."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self.checkpoints_taken = 0

    # ------------------------------------------------------------ paths

    def _image_path(self, image: str) -> str:
        return self.db.path(f"ckpt_{image}.img")

    def _meta_path(self, image: str) -> str:
        return self.db.path(f"ckpt_{image}.meta")

    def _anchor_path(self) -> str:
        return self.db.path(ANCHOR_FILE)

    def read_anchor(self) -> dict | None:
        path = self._anchor_path()
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            return json.load(handle)

    # ------------------------------------------------------------ write

    def checkpoint(
        self, audit: bool = True, force_full_audit: bool = False
    ) -> CheckpointResult:
        """Write the next checkpoint image; certify it with an audit.

        The certification audit is full by default; under
        ``DBConfig(audit_mode="incremental")`` it folds only dirty
        regions, escalating to a full sweep on the configured cadence
        (see :meth:`~repro.core.audit.Auditor.run_dirty`).
        ``force_full_audit`` overrides that and always audits every
        region -- corruption recovery's final checkpoint must certify
        the whole image, not just the write working set.
        """
        db = self.db
        crashpoints = db.crashpoints
        ck_end = db.system_log.flush()
        anchor = self.read_anchor()
        image = "A" if anchor is None or anchor["image"] == "B" else "B"

        pages = sorted(db.memory.dirty_pages.pending_for(image))
        # A crash anywhere before the anchor replace must be invisible:
        # only the non-anchored ping-pong image is touched, so load_latest
        # keeps returning the previous consistent checkpoint.
        crashpoints.reach("checkpoint.pre_image")
        self._write_image(image, pages)
        crashpoints.reach("checkpoint.after_image")
        att_bytes = db.manager.att.encode()
        audit_sn = db.auditor.last_clean_audit_lsn
        self._write_meta(image, ck_end, audit_sn, att_bytes)
        crashpoints.reach("checkpoint.after_meta")
        db.memory.dirty_pages.clear_for(image, pages)
        self.checkpoints_taken += 1

        report: AuditReport | None = None
        if audit:
            if db.scheduler is not None:
                # Certification is a scheduled trigger point: the
                # "checkpoint" tick joins any in-flight background sweep
                # (the auditor's ``audit.certify_join`` task) before the
                # certification audit below consumes its verdict.
                db.scheduler.tick("checkpoint")
            report = db.auditor.run_for_checkpoint(force_full=force_full_audit)
            if not report.clean:
                # Not certified: the anchor keeps pointing at the previous
                # image, and the caller is expected to crash into
                # corruption recovery.
                return CheckpointResult(image, ck_end, len(pages), False, report)
            # The audit's own records should be on stable storage before
            # the anchor names this checkpoint.
            db.system_log.flush()
            audit_sn = db.auditor.last_clean_audit_lsn
            self._write_meta(image, ck_end, audit_sn, att_bytes)

        crashpoints.reach("checkpoint.pre_anchor")
        self._write_anchor({"image": image, "ck_end": ck_end})
        crashpoints.reach("checkpoint.after_anchor")
        # A certified anchor is a digest epoch: replication listeners get
        # the per-region content folds for exactly the state a replica
        # reaches after replaying every record below ``ck_end``.  Only
        # published when no transaction is in flight (in-flight image
        # writes have no shipped records yet).
        db.auditor.publish_digests(ck_end, quiescent=len(db.manager.att) == 0)
        return CheckpointResult(image, ck_end, len(pages), True, report)

    def _write_image(self, image: str, pages: list[int]) -> None:
        db = self.db
        path = self._image_path(image)
        page_size = db.memory.page_size
        if not os.path.exists(path):
            with open(path, "wb") as handle:
                handle.truncate(db.memory.size)
        use_copy_range = hasattr(os, "copy_file_range")
        with open(path, "r+b") as handle:
            for page_id in pages:
                address = page_id * page_size
                if use_copy_range:
                    # mmap backing: a dirty page propagates file-to-file,
                    # backing file -> checkpoint image, without staging the
                    # bytes through Python.  Pages never straddle segments
                    # (segments are page-rounded), so a single range covers
                    # the page.  Correctness relies on the unified page
                    # cache: file reads observe mmap stores.
                    src = db.memory.backing_range(address, page_size)
                    if src is not None:
                        src_file, src_offset = src
                        if self._copy_range(
                            src_file, handle, page_size, src_offset, address
                        ):
                            continue
                handle.seek(address)
                handle.write(db.memory.page_bytes(page_id))

    @staticmethod
    def _copy_range(src, dst, count: int, src_offset: int, dst_offset: int) -> bool:
        """Kernel-side copy of ``count`` bytes; False sends the caller to
        the portable read/write fallback."""
        copied = 0
        while copied < count:
            try:
                n = os.copy_file_range(
                    src.fileno(),
                    dst.fileno(),
                    count - copied,
                    src_offset + copied,
                    dst_offset + copied,
                )
            except OSError:  # pragma: no cover - filesystem without support
                return False
            if n == 0:  # pragma: no cover - unexpected short copy
                return False
            copied += n
        return True

    def _write_meta(self, image: str, ck_end: int, audit_sn: int, att: bytes) -> None:
        blob = _META.pack(ck_end, audit_sn, len(att)) + att
        tmp = self._meta_path(image) + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, self._meta_path(image))

    def _write_anchor(self, anchor: dict) -> None:
        tmp = self._anchor_path() + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(anchor, handle)
        os.replace(tmp, self._anchor_path())

    # ------------------------------------------------------------- load

    def load_latest(self) -> tuple[str, int, int, bytes]:
        """Load the anchored checkpoint image into memory.

        Returns ``(image, ck_end, audit_sn, att_bytes)``.
        """
        anchor = self.read_anchor()
        if anchor is None:
            raise CheckpointError("no checkpoint anchor; cannot recover")
        image = anchor["image"]
        db = self.db
        with open(self._image_path(image), "rb") as handle:
            image_size = os.fstat(handle.fileno()).st_size
            if image_size != db.memory.size:
                raise CheckpointError(
                    f"checkpoint image is {image_size} bytes, memory is "
                    f"{db.memory.size}"
                )
            # Stream segment by segment straight into the segment buffers
            # (bytearray or mmap alike) -- no whole-image staging copy, so
            # loading a larger-than-RAM mmap-backed image never doubles
            # its footprint.
            for segment in db.memory.segments:
                handle.seek(segment.base)
                view = memoryview(segment.data)
                filled = 0
                while filled < segment.size:
                    n = handle.readinto(view[filled:])
                    if not n:  # pragma: no cover - size checked above
                        raise CheckpointError(
                            f"checkpoint image truncated inside segment "
                            f"{segment.name!r}"
                        )
                    filled += n
        with open(self._meta_path(image), "rb") as handle:
            blob = handle.read()
        ck_end, audit_sn, att_len = _META.unpack_from(blob, 0)
        att_bytes = blob[_META.size : _META.size + att_len]
        return image, ck_end, audit_sn, att_bytes

    def read_image_range(self, start: int, length: int) -> bytes:
        """Read bytes straight from the anchored image (cache recovery)."""
        anchor = self.read_anchor()
        if anchor is None:
            raise CheckpointError("no checkpoint anchor")
        with open(self._image_path(anchor["image"]), "rb") as handle:
            handle.seek(start)
            return handle.read(length)

    def anchored_ck_end(self) -> int:
        anchor = self.read_anchor()
        if anchor is None:
            raise CheckpointError("no checkpoint anchor")
        return anchor["ck_end"]
