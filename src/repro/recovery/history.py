"""Execution histories and the paper's delete-history correctness oracles.

Section 4.1 defines correctness of delete-transaction recovery through two
relations between the original history H_o and the delete history H_d
(H_o with the deleted transactions' reads and writes removed):

* *conflict-consistent*: any read in H_d is preceded by the same write
  which preceded it in H_o;
* *view-consistent*: each read in H_d returns the value it returned in
  H_o.

The :class:`HistoryRecorder` captures the logical read/write history while
a workload runs; after corruption recovery reports its delete set, the
checkers below verify the recovered database against these definitions.
They are test oracles -- they live outside the storage manager and cost
nothing on the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sentinel meaning "the item was never written in the surviving history".
INITIAL = object()


@dataclass(frozen=True)
class HistoryEvent:
    seq: int
    txn_id: int
    kind: str  # "r" or "w"
    table: str
    slot: int
    value: bytes | None  # None for a delete ("w" kind)


class HistoryRecorder:
    """Captures the logical history of a run."""

    def __init__(self) -> None:
        self.events: list[HistoryEvent] = []
        self.committed: set[int] = set()
        self.aborted: set[int] = set()
        self._seq = 0

    def on_read(self, txn_id: int, table: str, slot: int, value: bytes) -> None:
        self._append(txn_id, "r", table, slot, value)

    def on_write(self, txn_id: int, table: str, slot: int, value: bytes | None) -> None:
        self._append(txn_id, "w", table, slot, value)

    def on_commit(self, txn_id: int) -> None:
        self.committed.add(txn_id)

    def on_abort(self, txn_id: int) -> None:
        self.aborted.add(txn_id)

    def _append(
        self, txn_id: int, kind: str, table: str, slot: int, value: bytes | None
    ) -> None:
        self.events.append(
            HistoryEvent(self._seq, txn_id, kind, table, slot, value)
        )
        self._seq += 1

    def surviving_events(self, deleted: set[int]) -> list[HistoryEvent]:
        """H_d restricted to committed transactions."""
        return [
            e
            for e in self.events
            if e.txn_id in self.committed and e.txn_id not in deleted
        ]


def expected_final_state(
    history: HistoryRecorder, deleted: set[int]
) -> dict[tuple[str, int], bytes | None | object]:
    """Final value per item under the delete history.

    Returns ``INITIAL`` for items never written by a surviving committed
    transaction; ``None`` means the surviving history ends with a delete.
    """
    state: dict[tuple[str, int], bytes | None | object] = {}
    for event in history.surviving_events(deleted):
        if event.kind == "w":
            state[(event.table, event.slot)] = event.value
    return state


def check_conflict_consistent(
    history: HistoryRecorder, deleted: set[int]
) -> list[str]:
    """Check the conflict-consistency condition; returns violations.

    For every read in H_d, the most recent prior write to the same item in
    H_o must itself survive into H_d (or there must have been no prior
    write at all).
    """
    violations: list[str] = []
    last_writer: dict[tuple[str, int], HistoryEvent] = {}
    survivors = {
        t for t in history.committed if t not in deleted
    }
    for event in history.events:
        if event.txn_id in history.aborted:
            continue  # aborted transactions' effects were compensated
        item = (event.table, event.slot)
        if event.kind == "w":
            last_writer[item] = event
            continue
        if event.txn_id not in survivors:
            continue  # reads of deleted/in-flight transactions drop out
        writer = last_writer.get(item)
        if writer is not None and writer.txn_id not in survivors and (
            writer.txn_id != event.txn_id
        ):
            violations.append(
                f"txn {event.txn_id} read {item} last written by deleted "
                f"txn {writer.txn_id} (event seq {event.seq})"
            )
    return violations


def check_view_consistent(history: HistoryRecorder, deleted: set[int]) -> list[str]:
    """Check the view-consistency condition; returns violations.

    Each surviving read's H_o value must equal the value the item holds at
    that point of H_d (the last surviving write's value, or the initial
    value if none).  Reads of never-written items are vacuously fine.
    """
    violations: list[str] = []
    survivors = {t for t in history.committed if t not in deleted}
    current: dict[tuple[str, int], bytes | None | object] = {}
    ever_written: set[tuple[str, int]] = set()
    for event in history.events:
        if event.txn_id in history.aborted:
            continue
        item = (event.table, event.slot)
        if event.kind == "w":
            ever_written.add(item)
            if event.txn_id in survivors:
                current[item] = event.value
            continue
        if event.txn_id not in survivors:
            continue
        if item not in ever_written:
            continue  # value predates the recorded history
        expected = current.get(item, INITIAL)
        if expected is INITIAL:
            continue  # last surviving state predates the recorded history
        if event.value != expected:
            violations.append(
                f"txn {event.txn_id} read {item} value {event.value!r} but "
                f"delete history holds {expected!r} (event seq {event.seq})"
            )
    return violations
