"""Deferred codeword maintenance (extension).

Section 4.3 refers to "the audit procedure for the Deferred Maintenance
codeword scheme" from the authors' longer technical report: instead of
folding every update into the codeword table inside the update window, the
per-region deltas are accumulated in a side buffer and applied in batch
when an audit (or checkpoint) needs consistent codewords.

The tradeoff implemented here:

* per-update cost drops (no codeword latch, no per-update table write --
  just the fold of the changed words into a buffered delta);
* the stored codewords are stale between audits, so every audit first
  *flushes* the pending deltas under the protection latch;
* a wild write is still detected, because it changes region content
  without contributing a pending delta.

The delta buffer and flush logic live on the scheme's
:class:`~repro.core.maintainer.CodewordMaintainer` (``deferred=True``), so
a pipeline stacking this scheme defers maintenance for the whole shared
table.

This scheme is not a Table 2 row; it backs Ablation C in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core.data_codeword import DataCodewordScheme


class DeferredMaintenanceScheme(DataCodewordScheme):
    """Batch codeword maintenance at audit time."""

    name = "deferred"
    uses_codeword_latch = False  # deltas are applied in batch under audit latch
    deferred_maintenance = True

    def __init__(self, region_size: int = 65536) -> None:
        super().__init__(region_size)

    def flush_pending(self) -> int:
        """Apply accumulated deltas to the codeword table."""
        return self.maintainer.flush_pending()

    @property
    def flush_count(self) -> int:
        return self.maintainer.flush_count

    @property
    def pending_region_count(self) -> int:
        return self.maintainer.pending_region_count
