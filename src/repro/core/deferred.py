"""Deferred codeword maintenance (extension).

Section 4.3 refers to "the audit procedure for the Deferred Maintenance
codeword scheme" from the authors' longer technical report: instead of
folding every update into the codeword table inside the update window, the
per-region deltas are accumulated in a side buffer and applied in batch
when an audit (or checkpoint) needs consistent codewords.

The tradeoff implemented here:

* per-update cost drops (no codeword latch, no per-update table write --
  just the fold of the changed words into a buffered delta);
* the stored codewords are stale between audits, so every audit first
  *flushes* the pending deltas under the protection latch;
* a wild write is still detected, because it changes region content
  without contributing a pending delta.

This scheme is not a Table 2 row; it backs Ablation C in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core.data_codeword import DataCodewordScheme


class DeferredMaintenanceScheme(DataCodewordScheme):
    """Batch codeword maintenance at audit time."""

    name = "deferred"
    uses_codeword_latch = False  # deltas are applied in batch under audit latch

    def __init__(self, region_size: int = 65536) -> None:
        super().__init__(region_size)
        self._pending: dict[int, int] = {}
        self.flush_count = 0

    def _cw_apply(self, address: int, old_image: bytes, new_image: bytes) -> None:
        assert self._table is not None and self.meter is not None
        for region_id, delta, words in self._table.compute_deltas(
            address, old_image, new_image
        ):
            self._pending[region_id] = self._pending.get(region_id, 0) ^ delta
            self.meter.charge("cw_maint_word", words)
            self.meter.charge("deferred_update")

    def flush_pending(self) -> int:
        """Apply accumulated deltas to the codeword table."""
        assert self._table is not None and self.meter is not None
        applied = 0
        for region_id, delta in self._pending.items():
            latch = self.protection_latches.latch(region_id)
            with latch.exclusive():
                self.meter.charge("latch_pair")
                self._table.apply_delta(region_id, delta)
                applied += 1
        self._pending.clear()
        self.flush_count += 1
        return applied

    def audit_regions(self, region_ids=None) -> list[int]:
        self.flush_pending()
        return super().audit_regions(region_ids)

    @property
    def pending_region_count(self) -> int:
        return len(self._pending)
