"""Hardware (memory protection) scheme -- the point of comparison.

Implements the Expose Page Update Model of Sullivan & Stonebraker [21] as
described in Section 3: database pages are kept write-protected; a call to
``beginUpdate`` unprotects the page (or pages) being updated and
``endUpdate`` reprotects them.  A write to a protected page -- including a
wild write -- traps and is not performed, so this scheme *prevents* direct
physical corruption rather than detecting it.

The MMU is simulated (see :mod:`repro.mem.mprotect`); per-syscall costs
come from a platform profile calibrated against Table 1.  Each call made
while the workload is running additionally pays a working-set TLB/cache
refill penalty (``mprotect_workload_penalty``), which a bare
protect/unprotect microbenchmark loop does not incur -- this is what makes
the in-DBMS cost per call several times the Table 1 microbenchmark cost.
"""

from __future__ import annotations

from repro.core.schemes import ProtectionScheme
from repro.mem.memory import MemoryImage
from repro.mem.mprotect import MprotectCosts, PROT_READ, PROT_READWRITE, SimulatedMMU
from repro.sim.clock import Meter
from repro.txn.transaction import Transaction
from repro.wal.local_log import PhysicalUndo

#: Default profile: the paper's benchmark machine (UltraSPARC 2).
ULTRASPARC_MPROTECT = MprotectCosts(syscall_fixed_ns=10_500, per_page_ns=1_100)


class HardwareProtectionScheme(ProtectionScheme):
    """Keep pages write-protected; expose them only inside update windows."""

    name = "hardware"
    direct_protection = "prevent"
    indirect_protection = "unneeded"
    # The pipeline brackets below-the-hooks writes (physical undo) with
    # expose()/cover() for page-guarding members.
    guards_pages = True

    def __init__(self, mprotect_costs: MprotectCosts = ULTRASPARC_MPROTECT) -> None:
        super().__init__()
        self.mprotect_costs = mprotect_costs
        self.mmu: SimulatedMMU | None = None

    def attach(self, memory: MemoryImage, meter: Meter) -> None:
        super().attach(memory, meter)
        self.mmu = SimulatedMMU(memory, self.mprotect_costs, meter)

    def startup(self) -> None:
        """Protect the whole database image and start enforcing."""
        assert self.mmu is not None and self.memory is not None
        self.mmu.protect_pages(range(self.memory.page_count), PROT_READ)
        self.mmu.enable()

    # ---------------------------------------------------------- windows

    def on_begin_update(self, txn: Transaction, address: int, length: int) -> None:
        self.expose(address, length)

    def on_end_update(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> int | None:
        self.cover(address, length=len(new_image))
        return None

    def close_update_window(self, txn: Transaction, address: int, length: int) -> None:
        self.cover(address, length)

    def apply_physical_undo(self, txn: Transaction | None, entry: PhysicalUndo) -> None:
        """Rollback writes also go through an expose/cover pair."""
        assert self.memory is not None
        self.expose(entry.address, len(entry.image))
        self.memory.write(entry.address, entry.image)
        self.cover(entry.address, len(entry.image))

    def expose(self, address: int, length: int) -> None:
        """Unprotect the pages under a window (``beginUpdate``)."""
        assert self.mmu is not None and self.meter is not None
        self.mmu.mprotect(address, length, PROT_READWRITE)
        self.meter.charge("mprotect_workload_penalty")

    def cover(self, address: int, length: int) -> None:
        """Reprotect the pages under a window (``endUpdate``)."""
        assert self.mmu is not None and self.meter is not None
        self.mmu.mprotect(address, length, PROT_READ)
        self.meter.charge("mprotect_workload_penalty")
