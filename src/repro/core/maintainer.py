"""Shared codeword maintenance: one table, one latch set, many schemes.

Every codeword scheme (Sections 3.1/3.2 and the deferred-maintenance
extension) needs the same machinery: a :class:`CodewordTable`, per-region
protection latches, optionally a codeword latch, window bookkeeping,
incremental maintenance at ``end_update``, codeword-aware physical undo
and the audit fold.  Before the pipeline refactor each
:class:`~repro.core.schemes.CodewordSchemeBase` subclass owned a private
copy of all of it; stacking two such schemes would have maintained two
divergent tables over the same bytes.

:class:`CodewordMaintainer` is that machinery extracted into one object.
A bare scheme owns a private maintainer; a
:class:`~repro.core.pipeline.ProtectionPipeline` builds a single shared
maintainer from the folded policy of its codeword members (smallest
region size, strictest latch mode) and makes every member adopt it, so a
stack audits and maintains exactly one table.

Every meter charge in this module is verbatim from the seed scheme code;
the refactor is observably pure for Table 2 (property-tested by
``tests/test_pipeline_equivalence.py``).
"""

from __future__ import annotations

from repro.core.codeword import fold_words, word_count
from repro.core.regions import CodewordTable
from repro.mem.memory import MemoryImage
from repro.sim.clock import Meter
from repro.txn.latches import Latch, LatchTable, EXCLUSIVE, SHARED
from repro.txn.transaction import Transaction
from repro.wal.local_log import PhysicalUndo


def _contiguous_runs(ids, region_count: int):
    """Group region ids into maximal ``[start, stop)`` runs.

    Accepts a step-1 :class:`range` or a strictly ascending list/tuple of
    in-bounds ids (what dirty-region audits pass); returns ``None`` for
    anything else, sending the caller to the scalar per-region loop.
    """
    if isinstance(ids, range):
        if ids.step != 1:
            return None
        if not len(ids):
            return []
        if ids.start < 0 or ids.stop > region_count:
            return None
        return [(ids.start, ids.stop)]
    if not isinstance(ids, (list, tuple)):
        return None
    runs: list[tuple[int, int]] = []
    previous = None
    for region_id in ids:
        if not isinstance(region_id, int) or not 0 <= region_id < region_count:
            return None
        if previous is not None and region_id <= previous:
            return None
        if runs and region_id == previous + 1:
            runs[-1] = (runs[-1][0], region_id + 1)
        else:
            runs.append((region_id, region_id + 1))
        previous = region_id
    return runs


class CodewordMaintainer:
    """Owns a codeword table plus its latches and cost accounting.

    Parameters
    ----------
    region_size:
        Bytes per protection region.
    update_latch_mode:
        Mode updaters hold the protection latch in for the whole update
        window (``SHARED`` for audit-based schemes, ``EXCLUSIVE`` for
        read prechecking, Section 3.1/3.2).
    uses_codeword_latch:
        Whether a separate codeword latch serializes the table update
        (Section 3.2's large-region optimisation).
    deferred:
        Accumulate per-region XOR deltas instead of applying them inside
        the window; :meth:`flush_pending` (called by every audit) applies
        the batch under the protection latch.
    """

    def __init__(
        self,
        region_size: int,
        *,
        update_latch_mode: str = SHARED,
        uses_codeword_latch: bool = True,
        deferred: bool = False,
    ) -> None:
        self.region_size = region_size
        self.update_latch_mode = update_latch_mode
        self.uses_codeword_latch = uses_codeword_latch
        self.deferred = deferred
        self.memory: MemoryImage | None = None
        self.meter: Meter | None = None
        self.table: CodewordTable | None = None
        self.protection_latches = LatchTable("protection")
        self.codeword_latches = LatchTable("codeword")
        self._pending: dict[int, int] = {}
        self.flush_count = 0
        #: Regions touched through the prescribed interface since they
        #: were last verified by a clean audit.  Fed by maintenance and
        #: physical undo; consumed by dirty-region incremental audits.
        #: A wild write (``poke``) bypasses the hooks and so never lands
        #: here -- that asymmetry is exactly what makes periodic full
        #: sweeps a correctness requirement, not an optimisation.
        self.dirty_regions: set[int] = set()
        #: Regions a failed audit/precheck fenced off.  Quarantined
        #: regions are skipped by degraded audits and vetoed (or repaired
        #: first) on read; they leave the set via
        #: :meth:`unquarantine` (cache recovery) or :meth:`rebuild`
        #: (restart recovery recomputes every codeword from a repaired
        #: image, so prior quarantine verdicts are stale).
        self.quarantined: set[int] = set()
        #: When True, a precheck mismatch quarantines the failing regions
        #: as it raises (set by the storage layer under
        #: ``DBConfig(quarantine=True)``).
        self.quarantine_on_detect = False
        #: While a background full sweep is folding memory in a worker
        #: thread, every region dirtied through the prescribed interface
        #: is also recorded here; the sweep's verdict re-checks exactly
        #: those regions synchronously at join (their folds may have
        #: raced the mutator).  ``None`` when no sweep is in flight.
        self._sweep_touched: set[int] | None = None

    def attach(self, memory: MemoryImage, meter: Meter) -> None:
        """Bind to an image/meter; idempotent so shared adopters can all call it."""
        if self.table is not None and self.memory is memory and self.meter is meter:
            return
        self.memory = memory
        self.meter = meter
        self.table = CodewordTable(memory, self.region_size)

    def rebuild(self) -> None:
        assert self.table is not None
        self.table.rebuild_all()
        # Freshly recomputed codewords match memory by construction;
        # nothing is awaiting verification, and quarantine verdicts
        # against the pre-rebuild image are stale.
        self.dirty_regions.clear()
        self.quarantined.clear()

    @property
    def space_overhead(self) -> float:
        return self.table.space_overhead if self.table else 4.0 / self.region_size

    # ---------------------------------------------------------- windows

    def open_window(self, txn: Transaction, address: int, length: int) -> None:
        """Latch every region the update window touches."""
        assert self.table is not None and self.meter is not None
        latches = []
        for region_id in self.table.regions_spanning(address, length):
            latch = self.protection_latches.latch(region_id)
            latch.acquire(self.update_latch_mode)
            self.meter.charge("latch_pair")
            latches.append(latch)
        txn.scheme_state.setdefault("window_latches", []).extend(latches)

    def open_window_batch(
        self, txn: Transaction, regions: list[tuple[int, int]]
    ) -> None:
        """Latch every region a multi-range window touches, in one pass.

        Each latch is physically acquired once (they are reentrant, so
        this is purely a wall-clock saving) but ``latch_pair`` is charged
        once per range-and-region occurrence -- exactly what opening the
        ranges as N scalar windows would charge.
        """
        assert self.table is not None and self.meter is not None
        latches = txn.scheme_state.setdefault("window_latches", [])
        seen: set[int] = set()
        pairs = 0
        for address, length in regions:
            for region_id in self.table.regions_spanning(address, length):
                pairs += 1
                if region_id not in seen:
                    seen.add(region_id)
                    latch = self.protection_latches.latch(region_id)
                    latch.acquire(self.update_latch_mode)
                    latches.append(latch)
        self.meter.charge("latch_pair", pairs)

    def release_window(self, txn: Transaction) -> None:
        for latch in txn.scheme_state.pop("window_latches", []):
            latch.release()

    def maintain(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> None:
        """Fold an in-place update into the codewords at ``end_update``."""
        assert self.table is not None and self.meter is not None
        if self.uses_codeword_latch:
            for region_id in self.table.regions_spanning(address, len(old_image)):
                latch = self.codeword_latches.latch(region_id)
                with latch.exclusive():
                    self.meter.charge("latch_pair")
        self.apply_maintenance(address, old_image, new_image)

    def maintain_batch(
        self, txn: Transaction, items: list[tuple[int, bytes, bytes]]
    ) -> None:
        """Fold a whole batch of updates into the codewords at once.

        Byte- and meter-identical to calling :meth:`maintain` per item --
        XOR folding is associative/commutative and ``Meter.charge`` is
        linear -- but the deltas go through one vectorized kernel call
        and the charges are bulk (property-tested against the scalar
        path).
        """
        assert self.table is not None and self.meter is not None
        if self.uses_codeword_latch:
            # Acquire each distinct codeword latch once and hold it across
            # the whole batch fold (strictly stronger than the scalar
            # path's per-item acquire/release), but charge ``latch_pair``
            # per range-and-region occurrence -- exactly what N scalar
            # maintain calls would charge.
            spans = [
                self.table.regions_spanning(address, len(old_image))
                for address, old_image, _new in items
            ]
            pairs = 0
            held: dict[int, Latch] = {}
            for span in spans:
                for region_id in span:
                    pairs += 1
                    if region_id not in held:
                        latch = self.codeword_latches.latch(region_id)
                        latch.acquire(EXCLUSIVE)
                        held[region_id] = latch
            try:
                self.meter.charge("latch_pair", pairs)
                self.apply_maintenance_batch(items, spans)
            finally:
                for latch in held.values():
                    latch.release()
            return
        self.apply_maintenance_batch(items)

    def _note_dirty(self, regions) -> None:
        """Record prescribed-path dirtiness (and sweep interference)."""
        self.dirty_regions.update(regions)
        if self._sweep_touched is not None:
            self._sweep_touched.update(regions)

    def apply_maintenance(
        self, address: int, old_image: bytes, new_image: bytes
    ) -> None:
        """Immediate table update, or delta accumulation when deferred."""
        assert self.table is not None and self.meter is not None
        self._note_dirty(self.table.regions_spanning(address, len(old_image)))
        if self.deferred:
            for region_id, delta, words in self.table.compute_deltas(
                address, old_image, new_image
            ):
                self._pending[region_id] = self._pending.get(region_id, 0) ^ delta
                self.meter.charge("cw_maint_word", words)
                self.meter.charge("deferred_update")
        else:
            words = self.table.apply_update(address, old_image, new_image)
            self.meter.charge("cw_maint_fixed")
            self.meter.charge("cw_maint_word", words)

    def apply_maintenance_batch(
        self,
        items: list[tuple[int, bytes, bytes]],
        spans: list[range] | None = None,
    ) -> None:
        """Batch table update (or per-item accumulation when deferred).

        ``spans`` lets the caller pass the per-item region spans it
        already computed (``maintain_batch`` needs them for latching), so
        the geometry is not re-derived here.
        """
        assert self.table is not None and self.meter is not None
        if spans is None:
            spans = [
                self.table.regions_spanning(address, len(old_image))
                for address, old_image, _new in items
            ]
        for span in spans:
            self._note_dirty(span)
        if self.deferred:
            for address, old_image, new_image in items:
                for region_id, delta, words in self.table.compute_deltas(
                    address, old_image, new_image
                ):
                    self._pending[region_id] = self._pending.get(region_id, 0) ^ delta
                    self.meter.charge("cw_maint_word", words)
                    self.meter.charge("deferred_update")
        else:
            words = self.table.apply_update_batch(items)
            self.meter.charge("cw_maint_fixed", len(items))
            self.meter.charge("cw_maint_word", words)

    # ------------------------------------------------------------- undo

    def apply_physical_undo(self, entry: PhysicalUndo) -> None:
        """Restore a before-image, fixing the codeword iff it was applied.

        If the update window never reached ``end_update``
        (``codeword_applied`` False), the stored codeword still matches
        the *old* content, so restoring it must leave the codeword alone
        (Section 3.1).
        """
        assert self.table is not None and self.memory is not None
        regions = self.table.regions_spanning(entry.address, len(entry.image))
        # The restore writes below the hooks; mark the regions for the
        # next dirty-region audit whether or not the codeword moves.
        self._note_dirty(regions)
        latches = [self.protection_latches.latch(r) for r in regions]
        for latch in latches:
            latch.acquire(EXCLUSIVE)
            self.meter.charge("latch_pair")
        try:
            if entry.codeword_applied:
                current = self.memory.read(entry.address, len(entry.image))
                self.apply_maintenance(entry.address, current, entry.image)
            self.memory.write(entry.address, entry.image)
        finally:
            for latch in latches:
                latch.release()

    # --------------------------------------------------------- deferred

    def flush_pending(self) -> int:
        """Apply accumulated deltas to the codeword table."""
        assert self.table is not None and self.meter is not None
        applied = 0
        for region_id, delta in self._pending.items():
            latch = self.protection_latches.latch(region_id)
            with latch.exclusive():
                self.meter.charge("latch_pair")
                self.table.apply_delta(region_id, delta)
                applied += 1
        self._pending.clear()
        self.flush_count += 1
        return applied

    @property
    def pending_region_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------- dirty set

    def dirty_region_list(self) -> list[int]:
        """Sorted snapshot of the dirty set (sorted so the audit path can
        fold contiguous runs through the vectorized kernel)."""
        return sorted(self.dirty_regions)

    def clear_dirty(self, region_ids=None) -> None:
        """Drop regions from the dirty set after a clean audit verified
        them (all regions when ``region_ids`` is None: a full sweep)."""
        if region_ids is None:
            self.dirty_regions.clear()
        else:
            self.dirty_regions.difference_update(region_ids)

    # -------------------------------------------------- sweep handshake

    def begin_sweep_tracking(self) -> None:
        """Start recording regions the mutator touches (background sweep).

        Called with the pending-delta set already flushed, so every
        stored-codeword change after this point is also a tracked touch.
        """
        self._sweep_touched = set()

    def end_sweep_tracking(self) -> set[int]:
        """Stop recording; returns the regions touched while the sweep ran."""
        touched = self._sweep_touched or set()
        self._sweep_touched = None
        return touched

    @property
    def sweep_tracking(self) -> bool:
        return self._sweep_touched is not None

    def note_repair(self, region_ids) -> None:
        """Record regions rewritten below the hooks (cache recovery).

        A repair restores bytes and recomputes the codeword outside the
        prescribed interface; an in-flight background sweep raced those
        writes, so the regions must be re-checked at join like any other
        mid-sweep touch.
        """
        self._note_dirty(region_ids)

    # ------------------------------------------------------- quarantine

    def quarantine(self, region_ids) -> None:
        """Fence off regions a failed audit/precheck identified."""
        self.quarantined.update(region_ids)

    def unquarantine(self, region_ids) -> None:
        """Release regions that were repaired (cache recovery)."""
        self.quarantined.difference_update(region_ids)

    def clear_quarantine(self) -> None:
        self.quarantined.clear()

    def quarantined_overlapping(self, address: int, length: int) -> list[int]:
        """Quarantined regions overlapping ``[address, address+length)``."""
        if not self.quarantined or self.table is None:
            return []
        spanned = self.table.regions_spanning(address, length)
        return sorted(self.quarantined.intersection(spanned))

    # ------------------------------------------------------------ audit

    def check_region(self, region_id: int) -> bool:
        """Latch, charge and compare one region (read prechecking)."""
        assert self.table is not None and self.meter is not None
        latch = self.protection_latches.latch(region_id)
        with latch.exclusive():
            self.meter.charge("latch_pair")
            _start, region_len = self.table.region_bounds(region_id)
            self.meter.charge("cw_check_fixed")
            self.meter.charge("cw_check_word", word_count(region_len))
            return self.table.matches(region_id)

    def audit_regions(self, region_ids=None) -> list[int]:
        """Check codewords against content; returns mismatching regions.

        The protection latch is taken in exclusive mode per region to get
        a consistent view of region and codeword (Section 3.2).  A
        deferred maintainer first flushes its pending deltas so the
        stored codewords are current.

        Fast path: when no protection latch is held (no update window or
        precheck in flight, so latching cannot block and nothing can slip
        between checks) and the regions form a contiguous range *or* a
        strictly ascending id list, each maximal contiguous run folds
        through the vectorized
        :meth:`~repro.core.regions.CodewordTable.scan_mismatches` kernel.
        Ascending lists are what dirty-region and round-robin incremental
        audits pass, so those ride the kernel too.  The meter is charged
        the *same* event counts as the per-region loop -- ``charge`` is
        linear, so bulk charging leaves every Table 2 words-folded number
        unchanged (property-tested in ``tests/test_dirty_audit.py``).
        """
        assert self.table is not None and self.meter is not None
        if self.deferred:
            self.flush_pending()
        table = self.table
        ids = region_ids if region_ids is not None else range(table.region_count)
        if not self.protection_latches.any_held():
            runs = _contiguous_runs(ids, table.region_count)
            if runs is not None:
                checked = 0
                words = 0
                corrupt: list[int] = []
                last = table.region_count - 1
                words_per_region = word_count(table.region_size)
                for start, stop in runs:
                    count = stop - start
                    checked += count
                    # Every region folds word_count(region_size) words
                    # except the possibly ragged final region of the image.
                    words += count * words_per_region
                    if start <= last < stop:
                        words += word_count(table.region_bounds(last)[1]) - (
                            words_per_region
                        )
                    corrupt.extend(table.scan_mismatches(range(start, stop)))
                if checked:
                    self.meter.charge("latch_pair", checked)
                    self.meter.charge("cw_check_fixed", checked)
                    self.meter.charge("cw_check_word", words)
                return corrupt
        corrupt = []
        for region_id in ids:
            latch = self.protection_latches.latch(region_id)
            with latch.exclusive():
                self.meter.charge("latch_pair")
                _start, length = table.region_bounds(region_id)
                self.meter.charge("cw_check_fixed")
                self.meter.charge("cw_check_word", word_count(length))
                if not table.matches(region_id):
                    corrupt.append(region_id)
        return corrupt

    def checksum_of(self, data: bytes, charge: bool = True) -> int:
        """Checksum a read value (used by read logging with codewords)."""
        assert self.meter is not None
        if charge:
            self.meter.charge("checksum_word", word_count(len(data)))
        return fold_words(data)

    def region_digests(self):
        """Per-region *computed* folds of the current content.

        The divergence primitive for replication: two nodes that applied
        the same record stream to the same starting image have identical
        digests, and a wild write on either side moves exactly the folds
        of the regions it hit.  Content folds, not the stored codewords --
        a wild write leaves the stored word untouched (that is the
        paper's detection premise), so stored words would never diverge.
        Deferred deltas are flushed first so a subsequent self-audit of a
        mismatched region is a pure stored-vs-computed comparison.
        """
        assert self.table is not None
        if self.deferred:
            self.flush_pending()
        return self.table.fold_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CodewordMaintainer(region_size={self.region_size}, "
            f"mode={self.update_latch_mode!r}, "
            f"codeword_latch={self.uses_codeword_latch}, "
            f"deferred={self.deferred})"
        )
