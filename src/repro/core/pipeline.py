"""Composable protection pipelines (the §4.2/§4.3 scheme combinations).

The paper's protection levels are complementary, not exclusive: Section
4.2 pairs Data Codeword audits (detect direct corruption) with Read
Logging (trace and repair indirect corruption), and Section 4.3's
checksum extension adds precise per-read evidence on top of region-level
audit evidence.  :class:`ProtectionPipeline` makes such combinations a
config choice: ``DBConfig(scheme="data_codeword+read_logging")`` builds a
stack of schemes behind the one hook interface the transaction manager
already dispatches to.

Composition rules
-----------------

* **One shared codeword table.**  All codeword members adopt a single
  :class:`~repro.core.maintainer.CodewordMaintainer` built from the
  folded policy of the stack: the *smallest* member region size, the
  *strictest* update latch mode (``EXCLUSIVE`` wins over ``SHARED``), a
  codeword latch if any member wants one, and deferred maintenance if
  any member defers (rejected when another member prechecks reads, which
  needs fresh codewords).  The pipeline -- not each member -- drives the
  maintainer's window open/maintain/release exactly once per update, so
  stacking two codeword schemes never double-folds a delta.
* **Capability folding.**  ``uses_codewords`` / ``logs_reads`` /
  ``logs_read_checksums`` are ORs over members; ``direct_protection``
  and ``indirect_protection`` take the strongest member value.
  ``combines_evidence`` is True exactly when the stack carries *both*
  evidence kinds -- read/write checksums plus an audit-only codeword
  member -- which switches restart recovery into combined-evidence mode
  (checksum comparison unioned with the audit-populated
  CorruptDataTable).
* **Page guards bracket below-the-hook writes.**  Physical undo restores
  bytes beneath the prescribed interface; for page-guarding members
  (hardware) the pipeline exposes the pages first and re-covers them
  after, preserving the bare hardware scheme's expose/write/cover
  sequence.

A single-member pipeline is meter-identical to the bare scheme -- same
events, same virtual nanoseconds (property-tested by
``tests/test_pipeline_equivalence.py``) -- so `Database` can route every
config, stacked or not, through one pipeline object.
"""

from __future__ import annotations

from repro.core.maintainer import CodewordMaintainer
from repro.core.regions import CodewordTable
from repro.core.schemes import CodewordSchemeBase, ProtectionScheme
from repro.errors import ConfigError
from repro.mem.memory import MemoryImage
from repro.sim.clock import Meter
from repro.txn.latches import EXCLUSIVE, LatchTable, SHARED
from repro.txn.transaction import Transaction
from repro.wal.local_log import PhysicalUndo

_DIRECT_RANK = {"none": 0, "detect": 1, "prevent": 2}
_INDIRECT_RANK = {"none": 0, "detect+correct": 1, "prevent": 2, "unneeded": 3}


class ProtectionPipeline(ProtectionScheme):
    """An ordered stack of protection schemes behind the scheme hooks."""

    def __init__(self, members) -> None:
        super().__init__()
        flattened: list[ProtectionScheme] = []
        for member in members:
            if isinstance(member, ProtectionPipeline):
                flattened.extend(member.members)
            else:
                flattened.append(member)
        if not flattened:
            raise ConfigError("a protection pipeline needs at least one member")
        self.members: tuple[ProtectionScheme, ...] = tuple(flattened)

        codeword_members = [m for m in self.members if m.uses_codewords]
        self._page_guards = tuple(m for m in self.members if m.guards_pages)
        self.maintainer: CodewordMaintainer | None = None
        if codeword_members:
            for member in codeword_members:
                if not isinstance(member, CodewordSchemeBase):
                    raise ConfigError(
                        f"codeword member {member.name!r} cannot share a "
                        "maintainer (not a CodewordSchemeBase)"
                    )
            deferred = any(m.deferred_maintenance for m in codeword_members)
            if deferred and any(m.requires_fresh_codewords for m in self.members):
                raise ConfigError(
                    "deferred maintenance leaves stored codewords stale between "
                    "audits; it cannot stack with a scheme that checks codewords "
                    "on read (precheck)"
                )
            self.maintainer = CodewordMaintainer(
                min(m.region_size for m in codeword_members),
                update_latch_mode=(
                    EXCLUSIVE
                    if any(m.update_latch_mode == EXCLUSIVE for m in codeword_members)
                    else SHARED
                ),
                uses_codeword_latch=any(
                    m.uses_codeword_latch for m in codeword_members
                ),
                deferred=deferred,
            )
            for member in codeword_members:
                member.adopt_maintainer(self.maintainer)

        # ------------------------------------------ capability folding
        self.name = "+".join(m.name for m in self.members)
        self.uses_codewords = bool(codeword_members)
        self.logs_reads = any(m.logs_reads for m in self.members)
        self.logs_read_checksums = any(m.logs_read_checksums for m in self.members)
        self.direct_protection = max(
            (m.direct_protection for m in self.members), key=_DIRECT_RANK.__getitem__
        )
        if self.direct_protection == "prevent":
            self.indirect_protection = "unneeded"
        else:
            self.indirect_protection = max(
                (m.indirect_protection for m in self.members),
                key=_INDIRECT_RANK.__getitem__,
            )
        # Both evidence kinds present: precise read/write checksums plus a
        # codeword member relying on audits alone.  Restart recovery then
        # unions checksum-mismatch recruitment with the audit-populated
        # CorruptDataTable (Section 4.3 combined).
        self.combines_evidence = self.logs_read_checksums and any(
            not m.logs_read_checksums for m in codeword_members
        )

    # -------------------------------------------------------- accessors

    @property
    def sole(self) -> ProtectionScheme | None:
        """The single member of a one-scheme pipeline, else None."""
        return self.members[0] if len(self.members) == 1 else None

    def member(self, name: str) -> ProtectionScheme:
        """Return the first member with the given scheme name."""
        for member in self.members:
            if member.name == name:
                return member
        raise ConfigError(f"pipeline {self.name!r} has no member named {name!r}")

    @property
    def region_size(self) -> int | None:
        return self.maintainer.region_size if self.maintainer else None

    @property
    def codeword_table(self) -> CodewordTable | None:
        return self.maintainer.table if self.maintainer else None

    @property
    def protection_latches(self) -> LatchTable | None:
        return self.maintainer.protection_latches if self.maintainer else None

    @property
    def space_overhead(self) -> float:
        return self.maintainer.space_overhead if self.maintainer else 0.0

    # -------------------------------------------------------- lifecycle

    def attach(self, memory: MemoryImage, meter: Meter) -> None:
        super().attach(memory, meter)
        for member in self.members:
            member.attach(memory, meter)

    def startup(self) -> None:
        """Rebuild the shared table once; run non-codeword startups."""
        if self.maintainer is not None:
            self.maintainer.rebuild()
        for member in self.members:
            if not member.uses_codewords:
                member.startup()

    # ------------------------------------------------------------ hooks
    #
    # Codeword members delegate their window hooks to the (now shared)
    # maintainer, so the pipeline drives the maintainer directly -- once
    # per window -- and dispatches window hooks only to non-codeword
    # members.  Read/operation hooks have no shared state and dispatch to
    # every member in stack order.

    def on_read(self, txn: Transaction, address: int, length: int) -> None:
        for member in self.members:
            member.on_read(txn, address, length)

    def on_begin_update(self, txn: Transaction, address: int, length: int) -> None:
        if self.maintainer is not None:
            self.maintainer.open_window(txn, address, length)
        for member in self.members:
            if not member.uses_codewords:
                member.on_begin_update(txn, address, length)

    def on_end_update(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> int | None:
        checksum: int | None = None
        if self.maintainer is not None:
            self.maintainer.maintain(txn, address, old_image, new_image)
            self.maintainer.release_window(txn)
            if self.logs_read_checksums:
                # Codewords-in-write-records (Section 4.3): the update is
                # treated as a read of the old value followed by a write.
                checksum = self.maintainer.checksum_of(old_image)
        for member in self.members:
            if not member.uses_codewords:
                result = member.on_end_update(txn, address, old_image, new_image)
                if checksum is None:
                    checksum = result
        return checksum

    def close_update_window(self, txn: Transaction, address: int, length: int) -> None:
        if self.maintainer is not None:
            self.maintainer.release_window(txn)
        for member in self.members:
            if not member.uses_codewords:
                member.close_update_window(txn, address, length)

    # ------------------------------------------------------ batch hooks
    #
    # A multi-region window drives the shared maintainer once for the
    # whole batch -- one bulk latch pass, one vectorized delta-fold --
    # while non-codeword members (page guards, read logging bookkeeping)
    # see the same per-range scalar hooks they would under N windows.

    def on_begin_update_batch(
        self, txn: Transaction, regions: list[tuple[int, int]]
    ) -> None:
        if self.maintainer is not None:
            self.maintainer.open_window_batch(txn, regions)
        for member in self.members:
            if not member.uses_codewords:
                for address, length in regions:
                    member.on_begin_update(txn, address, length)

    def on_end_update_batch(
        self, txn: Transaction, items: list[tuple[int, bytes, bytes]]
    ) -> list[int | None]:
        checksums: list[int | None] = [None] * len(items)
        if self.maintainer is not None:
            self.maintainer.maintain_batch(txn, items)
            self.maintainer.release_window(txn)
            if self.logs_read_checksums:
                checksums = [
                    self.maintainer.checksum_of(old_image)
                    for _address, old_image, _new in items
                ]
        for member in self.members:
            if not member.uses_codewords:
                for index, (address, old_image, new_image) in enumerate(items):
                    result = member.on_end_update(txn, address, old_image, new_image)
                    if checksums[index] is None:
                        checksums[index] = result
        return checksums

    def close_update_window_batch(
        self, txn: Transaction, regions: list[tuple[int, int]]
    ) -> None:
        if self.maintainer is not None:
            self.maintainer.release_window(txn)
        for member in self.members:
            if not member.uses_codewords:
                for address, length in regions:
                    member.close_update_window(txn, address, length)

    def on_operation_end(self, txn: Transaction) -> None:
        for member in self.members:
            member.on_operation_end(txn)

    def apply_physical_undo(self, txn: Transaction | None, entry: PhysicalUndo) -> None:
        """Restore a before-image through every member's machinery.

        Page guards are lifted first (the restore writes below the
        prescribed interface), the shared maintainer fixes codewords iff
        they were applied, and the pages are re-covered after.
        """
        for guard in self._page_guards:
            guard.expose(entry.address, len(entry.image))
        try:
            if self.maintainer is not None:
                self.maintainer.apply_physical_undo(entry)
            else:
                assert self.memory is not None
                self.memory.write(entry.address, entry.image)
        finally:
            for guard in reversed(self._page_guards):
                guard.cover(entry.address, len(entry.image))

    # ------------------------------------------------------------ audit

    def audit_regions(self, region_ids=None) -> list[int]:
        """Audit the shared table exactly once for the whole stack."""
        if self.maintainer is None:
            return []
        return self.maintainer.audit_regions(region_ids)

    def checksum_of(self, data: bytes, charge: bool = True) -> int:
        assert self.maintainer is not None, "checksum_of needs a codeword member"
        return self.maintainer.checksum_of(data, charge)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(m) for m in self.members)
        return f"ProtectionPipeline([{inner}])"
