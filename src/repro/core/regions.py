"""Protection regions and the codeword table.

The database image is divided into fixed-size *protection regions*; one
32-bit codeword is maintained per region (Section 3).  The table itself
lives outside the protected image, so a wild write into the database
cannot silently fix up its own codeword.

Space overhead is ``4 / region_size``: 6.25% at 64-byte regions, 0.78% at
512 bytes, 0.05% at 8 KB -- the time/space tradeoff of Section 5.3.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.core.codeword import fold_words, positioned_fold
from repro.mem.memory import MemoryImage


class CodewordTable:
    """One XOR codeword per fixed-size region of a memory image."""

    def __init__(self, memory: MemoryImage, region_size: int) -> None:
        if region_size < 8 or region_size % 4 != 0:
            raise ConfigError(
                f"region size must be a multiple of 4 and >= 8: {region_size}"
            )
        self.memory = memory
        self.region_size = region_size
        self.region_count = -(-memory.size // region_size)
        self._codewords = np.zeros(self.region_count, dtype=np.uint32)

    # --------------------------------------------------------- geometry

    def region_of(self, address: int) -> int:
        return address // self.region_size

    def regions_spanning(self, address: int, length: int) -> range:
        """Region ids covered by ``[address, address + length)``."""
        if length <= 0:
            first = self.region_of(address)
            return range(first, first + 1)
        first = self.region_of(address)
        last = self.region_of(address + length - 1)
        return range(first, last + 1)

    def region_bounds(self, region_id: int) -> tuple[int, int]:
        """``(start_address, byte_length)`` of a region, clamped to memory."""
        start = region_id * self.region_size
        length = min(self.region_size, self.memory.size - start)
        return start, length

    @property
    def space_overhead(self) -> float:
        """Codeword bytes per data byte."""
        return 4.0 / self.region_size

    # ------------------------------------------------------ maintenance

    def stored(self, region_id: int) -> int:
        return int(self._codewords[region_id])

    def set_stored(self, region_id: int, codeword: int) -> None:
        self._codewords[region_id] = codeword & 0xFFFFFFFF

    def compute(self, region_id: int) -> int:
        """Fold the region's current memory content (zero-copy when the
        region lies within one segment; copying read otherwise)."""
        start, length = self.region_bounds(region_id)
        view = self.memory.view(start, length)
        if view is not None:
            return fold_words(view)
        return fold_words(self.memory.read(start, length))

    def compute_scalar(self, region_id: int) -> int:
        """Seed-era scalar fold: copying read + per-region fold.

        Kept as the reference implementation the vectorized kernel is
        benchmarked and property-tested against.
        """
        start, length = self.region_bounds(region_id)
        return fold_words(self.memory.read(start, length))

    def matches(self, region_id: int) -> bool:
        return self.compute(region_id) == self.stored(region_id)

    def rebuild_region(self, region_id: int) -> None:
        self.set_stored(region_id, self.compute(region_id))

    def rebuild_all(self) -> None:
        """Recompute every codeword from memory (vectorized)."""
        self._codewords = self.fold_all()

    def compute_deltas(self, address: int, old: bytes, new: bytes) -> list[tuple[int, int, int]]:
        """Per-region codeword deltas for an in-place update.

        ``old`` and ``new`` are the undo and redo images of the updated
        range; the update may span several regions.  Returns
        ``(region_id, delta, words_folded)`` triples, where ``delta`` is
        the value to XOR into the region's codeword and ``words_folded``
        counts the 32-bit words touched (old + new images) for cost
        accounting.
        """
        if len(old) != len(new):
            raise ConfigError(
                f"undo and redo images differ in length: {len(old)} vs {len(new)}"
            )
        deltas = []
        for region_id, offset, chunk_len in self._split(address, len(old)):
            old_chunk = old[offset : offset + chunk_len]
            new_chunk = new[offset : offset + chunk_len]
            chunk_address = address + offset
            delta = positioned_fold(chunk_address, old_chunk) ^ positioned_fold(
                chunk_address, new_chunk
            )
            lead = chunk_address % 4
            words = 2 * ((lead + chunk_len + 3) // 4)
            deltas.append((region_id, delta, words))
        return deltas

    def apply_delta(self, region_id: int, delta: int) -> None:
        self._codewords[region_id] ^= np.uint32(delta)

    def apply_update(self, address: int, old: bytes, new: bytes) -> int:
        """Incrementally maintain codewords; returns words folded."""
        words_folded = 0
        for region_id, delta, words in self.compute_deltas(address, old, new):
            self._codewords[region_id] ^= np.uint32(delta)
            words_folded += words
        return words_folded

    #: Below this many packed bytes the scalar per-update loop beats the
    #: numpy call overhead.  One ``reduceat`` already wins by ~2x at 32
    #: packed bytes (two 8-byte chunks); only a single tiny chunk ties.
    _BATCH_NUMPY_THRESHOLD = 32

    def apply_update_batch(self, items: list[tuple[int, bytes, bytes]]) -> int:
        """Incrementally maintain codewords for a batch of updates.

        ``items`` holds ``(address, old_image, new_image)`` per update.
        Bit-identical to calling :meth:`apply_update` per item (XOR
        folding is associative and commutative, and the positioned
        padding is reproduced exactly), and returns the same total
        words-folded count, but all the per-chunk folds go through a
        single ``np.bitwise_xor.reduceat`` over one packed buffer instead
        of 2 scalar folds per region chunk.
        """
        if not items:
            return 0
        # Pack every chunk's positioned old and new images, word-aligned,
        # into one buffer: lead = chunk_address % 4 zero bytes in front
        # (positioned_fold), zero padding to the next word boundary behind
        # (fold_words' ragged-tail rule).
        buf = bytearray()
        starts: list[int] = []
        chunk_regions: list[int] = []
        words_folded = 0
        region_size = self.region_size
        for address, old, new in items:
            length = len(old)
            if length != len(new):
                raise ConfigError(
                    f"undo and redo images differ in length: {length} vs {len(new)}"
                )
            # Word-aligned update inside one region: append both images
            # directly, no split or padding arithmetic needed.
            if (
                address % 4 == 0
                and length % 4 == 0
                and address % region_size + length <= region_size
            ):
                word = len(buf) // 4
                starts.append(word)
                starts.append(word + length // 4)
                buf += old
                buf += new
                chunk_regions.append(address // region_size)
                words_folded += length // 2
                continue
            for region_id, offset, chunk_len in self._split(address, length):
                chunk_address = address + offset
                lead = chunk_address % 4
                for image in (old, new):
                    starts.append(len(buf) // 4)
                    if lead:
                        buf += b"\x00" * lead
                    buf += image[offset : offset + chunk_len]
                    pad = -len(buf) % 4
                    if pad:
                        buf += b"\x00" * pad
                chunk_regions.append(region_id)
                words_folded += 2 * ((lead + chunk_len + 3) // 4)
        if len(buf) < self._BATCH_NUMPY_THRESHOLD:
            for address, old, new in items:
                self.apply_update(address, old, new)
            return words_folded
        folds = np.bitwise_xor.reduceat(
            np.frombuffer(buf, dtype="<u4"), np.asarray(starts)
        )
        for index, region_id in enumerate(chunk_regions):
            self._codewords[region_id] ^= folds[2 * index] ^ folds[2 * index + 1]
        return words_folded

    def _split(self, address: int, length: int) -> Iterator[tuple[int, int, int]]:
        """Yield ``(region_id, offset_in_update, chunk_length)`` per region."""
        offset = 0
        while offset < length:
            position = address + offset
            region_id = self.region_of(position)
            region_end = (region_id + 1) * self.region_size
            chunk_len = min(length - offset, region_end - position)
            yield region_id, offset, chunk_len
            offset += chunk_len

    # ------------------------------------------------------------ audit

    def fold_range(self, start: int, stop: int) -> np.ndarray:
        """Vectorized fold of regions ``[start, stop)``; returns ``uint32``.

        For every maximal run of whole regions lying inside a single
        segment, the segment's ``bytearray`` is viewed as a ``<u4`` array
        (zero-copy via :func:`np.frombuffer`), reshaped to
        ``(n_regions, words_per_region)`` and reduced with
        ``np.bitwise_xor.reduce`` in one call.  Regions that straddle a
        segment boundary -- and the ragged region at the very end of the
        image -- fall back to the scalar :meth:`compute`, so the result is
        byte-identical to folding each region individually.
        """
        start = max(start, 0)
        stop = min(stop, self.region_count)
        n = stop - start
        if n <= 0:
            return np.zeros(0, dtype=np.uint32)
        out = np.zeros(n, dtype=np.uint32)
        covered = np.zeros(n, dtype=bool)
        region_size = self.region_size
        words_per_region = region_size // 4
        for segment in self.memory.segments:
            # Whole regions fully contained in this segment.
            lo = max(start, -(-segment.base // region_size))
            hi = min(stop, segment.end // region_size)
            if hi <= lo:
                continue
            offset = lo * region_size - segment.base
            words = np.frombuffer(
                segment.data,
                dtype="<u4",
                count=(hi - lo) * words_per_region,
                offset=offset,
            )
            out[lo - start : hi - start] = np.bitwise_xor.reduce(
                words.reshape(hi - lo, words_per_region), axis=1
            )
            covered[lo - start : hi - start] = True
        if not covered.all():
            for index in np.nonzero(~covered)[0]:
                out[index] = self.compute(start + int(index))
        return out

    def fold_all(self) -> np.ndarray:
        """Vectorized fold of every region (see :meth:`fold_range`)."""
        return self.fold_range(0, self.region_count)

    def scan_mismatches(self, region_ids: Iterator[int] | range | None = None) -> list[int]:
        """Return regions whose content no longer matches their codeword.

        A full scan (or any contiguous ascending :class:`range` of valid
        region ids) takes the vectorized path: one :meth:`fold_range` plus
        a single whole-array ``!=`` against the stored codewords.  Other
        iterables keep the scalar per-region check.
        """
        ids = region_ids if region_ids is not None else range(self.region_count)
        if (
            isinstance(ids, range)
            and ids.step == 1
            and ids.start >= 0
            and ids.stop <= self.region_count
        ):
            if not len(ids):
                return []
            computed = self.fold_range(ids.start, ids.stop)
            mismatched = np.nonzero(computed != self._codewords[ids.start : ids.stop])[0]
            return [ids.start + int(index) for index in mismatched]
        return [region_id for region_id in ids if not self.matches(region_id)]
