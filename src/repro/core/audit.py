"""The auditor: asynchronous codeword consistency checks.

"The process of auditing is nothing more than an asynchronous check of
consistency between the contents of a protection region and the codeword
for that region." (Section 3.2)

Each audit brackets itself in the system log with AUDIT_BEGIN/AUDIT_END
records.  The LSN of the last *clean* audit's begin record is ``Audit_SN``
(Section 4.3): corruption recovery conservatively assumes the error
occurred immediately after it.  When an audit fails, the corrupt region
list is recorded in the AUDIT_END record (and by the database in a
side-file "corruption note") so the subsequent restart can seed its
CorruptDataTable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.background import BackgroundSweep
from repro.core.codeword import word_count
from repro.core.schemes import ProtectionScheme
from repro.wal.records import AuditBeginRecord, AuditEndRecord
from repro.wal.system_log import SystemLog


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one audit pass."""

    audit_id: int
    begin_lsn: int
    clean: bool
    corrupt_regions: tuple[int, ...]
    region_size: int
    regions_checked: int
    corrupt_ranges: tuple[tuple[int, int], ...] = field(default=())
    #: Total image size in bytes; 0 when unknown.  Lets the fallback below
    #: clamp the final (possibly ragged) region like ``region_bounds``.
    image_size: int = 0
    #: Regions this audit skipped because they were already quarantined
    #: (``skip_quarantined``).  A clean-but-degraded report certifies only
    #: the regions it actually folded.
    quarantined_regions: tuple[int, ...] = field(default=())

    @property
    def degraded(self) -> bool:
        """True when quarantined regions were skipped rather than audited."""
        return bool(self.quarantined_regions)

    @property
    def corrupt_byte_ranges(self) -> tuple[tuple[int, int], ...]:
        """``(start_address, length)`` of each corrupt region.

        The fallback clamps the last region to the image size, matching
        :meth:`~repro.core.regions.CodewordTable.region_bounds`, so a
        ragged final region never reports bytes past the end of memory.
        """
        if self.corrupt_ranges:
            return self.corrupt_ranges
        ranges = []
        for region_id in self.corrupt_regions:
            start = region_id * self.region_size
            length = self.region_size
            if self.image_size:
                length = min(length, self.image_size - start)
            ranges.append((start, length))
        return tuple(ranges)


class Auditor:
    """Runs audits for a scheme and tracks ``Audit_SN``."""

    def __init__(
        self,
        system_log: SystemLog,
        scheme: ProtectionScheme,
        *,
        audit_mode: str = "full",
        full_sweep_every: int = 8,
        background: bool = False,
        scheduler=None,
    ) -> None:
        self.system_log = system_log
        self.scheme = scheme
        #: The database's task scheduler (``repro.runtime``).  Background
        #: sweep folds are spawned through it so the shutdown/crash drain
        #: settles them; ``None`` keeps a private worker thread for tests
        #: that drive the auditor bare.
        self.scheduler = scheduler
        self._next_audit_id = 1
        #: LSN at which the last clean audit began (Audit_SN); recovery
        #: conservatively treats everything after it as suspect.
        self.last_clean_audit_lsn = 0
        self.audits_run = 0
        self.failures = 0
        # Incremental auditing state: next region of the round-robin
        # cursor and the begin-LSN of the current sweep.
        self._cursor = 0
        self._sweep_begin_lsn: int | None = None
        #: "full" | "incremental" -- how routine audits (checkpoints,
        #: ``Database.audit()``) are scheduled; see :meth:`run_dirty`.
        self.audit_mode = audit_mode
        self.full_sweep_every = max(1, full_sweep_every)
        self._dirty_audits_since_sweep = 0
        #: Run full-sweep escalations in a worker thread (see
        #: :meth:`start_background_sweep`); only meaningful with
        #: ``audit_mode="incremental"``.
        self.background = background
        self._sweep: BackgroundSweep | None = None
        #: Report produced by :meth:`checkpoint_tick` (the scheduler's
        #: ``"checkpoint"`` trigger), consumed by the next
        #: :meth:`run_for_checkpoint` call.
        self._pending_checkpoint_report: AuditReport | None = None
        #: Digest listeners: ``fn(ck_end, digests)`` callables invoked
        #: when a certified checkpoint publishes its per-region codeword
        #: digests (replication's divergence channel -- see
        #: :meth:`publish_digests`).
        self.digest_listeners: list = []
        self.digests_published = 0

    def _maintainer(self):
        return getattr(self.scheme, "maintainer", None)

    # -------------------------------------------------- digest publication

    def publish_digests(self, ck_end: int, quiescent: bool = True) -> bool:
        """Publish per-region *computed* digests for the epoch ``ck_end``.

        Called by the checkpointer right after a certified anchor flip.
        The digests are content folds (``fold_all``), not the stored
        codewords: a wild write moves the fold but not the stored word,
        and the whole point of the channel is that a replica folding its
        *own* replayed image sees the difference.

        Publication is skipped when the primary is not quiescent (active
        transactions hold image writes whose records have not migrated to
        the system log, so the image at ``ck_end`` is not a pure function
        of the shipped record stream) -- the epoch simply does not happen
        rather than mis-accusing a healthy replica.
        """
        if not self.digest_listeners or not quiescent:
            return False
        table = self.scheme.codeword_table
        if table is None:
            return False
        digests = table.fold_all()
        for listener in self.digest_listeners:
            listener(ck_end, digests)
        self.digests_published += 1
        return True

    def run(
        self,
        region_ids=None,
        flush: bool = True,
        advance_audit_sn: bool = True,
        skip_quarantined: bool = False,
    ) -> AuditReport:
        """Audit the given regions (default: all); returns a report.

        The report is informational -- deciding to crash and enter
        corruption recovery is the database's call, since the right
        response differs between schemes (cache recovery for plain Data
        Codeword, delete-transaction recovery with read logging).

        ``skip_quarantined`` excludes regions the maintainer already
        holds in quarantine: they are known-corrupt, and re-failing the
        audit on their account would mask *new* corruption elsewhere.
        The skipped ids are reported (``report.quarantined_regions``) and
        a degraded audit never advances ``Audit_SN`` -- it certified only
        part of the image.
        """
        audit_id = self._next_audit_id
        self._next_audit_id += 1
        begin_lsn = self.system_log.append(AuditBeginRecord(audit_id))
        table = self.scheme.codeword_table
        region_size = table.region_size if table is not None else 0
        quarantined: tuple[int, ...] = ()
        if skip_quarantined:
            maintainer = getattr(self.scheme, "maintainer", None)
            if maintainer is not None and maintainer.quarantined:
                qset = set(maintainer.quarantined)
                if region_ids is None:
                    count = table.region_count if table is not None else 0
                    region_ids = [r for r in range(count) if r not in qset]
                    quarantined = tuple(sorted(qset))
                else:
                    region_ids = list(region_ids)
                    quarantined = tuple(
                        sorted(qset.intersection(region_ids))
                    )
                    region_ids = [r for r in region_ids if r not in qset]
        if quarantined:
            # Part of the image went unverified; a clean result here must
            # not certify the whole database.
            advance_audit_sn = False
        if region_ids is None:
            regions_checked = table.region_count if table is not None else 0
        else:
            region_ids = list(region_ids)
            regions_checked = len(region_ids)
        corrupt = tuple(self.scheme.audit_regions(region_ids))
        ranges = ()
        if table is not None:
            ranges = tuple(table.region_bounds(r) for r in corrupt)
        self.system_log.append(
            AuditEndRecord(
                audit_id,
                clean=not corrupt,
                corrupt_regions=corrupt,
                region_size=region_size,
            )
        )
        if flush:
            self.system_log.flush()
        self.audits_run += 1
        if corrupt:
            self.failures += 1
        elif advance_audit_sn:
            self.last_clean_audit_lsn = begin_lsn
        return AuditReport(
            audit_id=audit_id,
            begin_lsn=begin_lsn,
            clean=not corrupt,
            corrupt_regions=corrupt,
            region_size=region_size,
            regions_checked=regions_checked,
            corrupt_ranges=ranges,
            image_size=table.memory.size if table is not None else 0,
            quarantined_regions=quarantined,
        )

    def run_dirty(
        self, flush: bool = True, skip_quarantined: bool = False
    ) -> AuditReport:
        """Audit only the regions dirtied since they were last verified.

        The maintainer marks every region touched through the prescribed
        interface (maintenance, deferred flushes, physical undo) dirty;
        this pass folds just those through the vectorized kernel, so its
        cost scales with the write working set instead of the image size
        (the Section 5 audit-at-checkpoint cost, made incremental).

        A wild write is by definition one that does *not* mark the dirty
        set, so every ``full_sweep_every``-th call escalates to a full
        :meth:`run` -- that cadence bounds wild-write detection latency
        and is the correctness knob of ``audit_mode="incremental"``.
        ``Audit_SN`` only advances on those full sweeps: a clean
        dirty-pass proves nothing about regions it never folded.
        """
        maintainer = self._maintainer()
        if maintainer is None or self.scheme.codeword_table is None:
            return self.run(flush=flush)
        self._dirty_audits_since_sweep += 1
        if self._dirty_audits_since_sweep >= self.full_sweep_every:
            self._dirty_audits_since_sweep = 0
            if self.background:
                if self._sweep is not None:
                    # The sweep launched at the previous cadence point has
                    # had a whole period to fold; join it (near-instant)
                    # and report its full-image verdict.
                    report = self.join_background_sweep(
                        flush=flush, skip_quarantined=skip_quarantined
                    )
                    if report.clean:
                        maintainer.clear_dirty()
                    return report
                # First escalation: launch the fold off-thread and serve
                # this call with an ordinary dirty pass -- the mutator
                # never waits for the full sweep.
                self.start_background_sweep()
            else:
                report = self.run(flush=flush, skip_quarantined=skip_quarantined)
                if report.clean:
                    maintainer.clear_dirty()
                return report
        dirty = maintainer.dirty_region_list()
        report = self.run(
            region_ids=dirty,
            flush=flush,
            advance_audit_sn=False,
            skip_quarantined=skip_quarantined,
        )
        if report.clean:
            maintainer.clear_dirty(dirty)
        return report

    # ------------------------------------------------- background sweeps

    def start_background_sweep(self) -> bool:
        """Launch a full-sweep fold in a worker thread; True if started.

        The fold (``CodewordTable.fold_all``) is one big GIL-releasing
        numpy reduction, so it overlaps the pure-Python mutator.  The
        snapshot/epoch handshake with the maintainer: pending deferred
        deltas are flushed *first*, then :meth:`begin_sweep_tracking`
        records every region whose bytes or stored codeword change while
        the fold races memory -- those are re-checked synchronously at
        :meth:`join_background_sweep`, so a torn fold can never produce a
        false verdict either way.
        """
        maintainer = self._maintainer()
        table = self.scheme.codeword_table
        if maintainer is None or table is None or self._sweep is not None:
            return False
        if maintainer.deferred:
            # Stored codewords must be current before the fold starts so
            # every later change is a tracked touch.
            maintainer.flush_pending()
        audit_id = self._next_audit_id
        self._next_audit_id += 1
        begin_lsn = self.system_log.append(AuditBeginRecord(audit_id))
        maintainer.begin_sweep_tracking()
        sweep = BackgroundSweep(audit_id, begin_lsn, table, scheduler=self.scheduler)
        sweep.start()
        self._sweep = sweep
        return True

    def join_background_sweep(
        self, flush: bool = True, skip_quarantined: bool = False
    ) -> AuditReport | None:
        """Finish the in-flight sweep and deliver its full-image verdict.

        Charges the meter exactly what the synchronous full-sweep fast
        path charges (``latch_pair``/``cw_check_fixed`` per region,
        ``cw_check_word`` for every word of the image) -- the off-thread
        fold is a wall-clock optimisation, not a cost-model change.
        Regions the mutator touched while the fold ran are re-audited
        synchronously (their background folds raced live bytes); a clean
        verdict advances ``Audit_SN`` to the sweep's *begin* LSN, the
        same conservative rule as :meth:`run_incremental`.
        """
        sweep = self._sweep
        if sweep is None:
            return None
        self._sweep = None
        maintainer = self._maintainer()
        table = self.scheme.codeword_table
        assert maintainer is not None and table is not None
        computed = sweep.join()
        touched = maintainer.end_sweep_tracking()
        meter = maintainer.meter
        n = table.region_count
        region_size = table.region_size
        if meter is not None and n:
            words_per_region = word_count(region_size)
            words = n * words_per_region
            # The final region of the image may be ragged.
            words += word_count(table.region_bounds(n - 1)[1]) - words_per_region
            meter.charge("latch_pair", n)
            meter.charge("cw_check_fixed", n)
            meter.charge("cw_check_word", words)
        mismatched = {int(i) for i in np.nonzero(computed != table._codewords)[0]}
        quarantined: tuple[int, ...] = ()
        qset: set[int] = set()
        if skip_quarantined and maintainer.quarantined:
            qset = set(maintainer.quarantined)
            quarantined = tuple(sorted(qset))
        # Regions the mutator touched mid-fold carry untrustworthy
        # background folds (either verdict could be stale); re-check them
        # against the current bytes on this thread.
        recheck = sorted(set(touched) - qset)
        recheck_corrupt = self.scheme.audit_regions(recheck) if recheck else []
        corrupt = tuple(sorted((mismatched - set(touched) - qset) | set(recheck_corrupt)))
        self.system_log.append(
            AuditEndRecord(
                sweep.audit_id,
                clean=not corrupt,
                corrupt_regions=corrupt,
                region_size=region_size,
            )
        )
        if flush:
            self.system_log.flush()
        self.audits_run += 1
        if corrupt:
            self.failures += 1
        elif not quarantined:
            self.last_clean_audit_lsn = max(
                self.last_clean_audit_lsn, sweep.begin_lsn
            )
        return AuditReport(
            audit_id=sweep.audit_id,
            begin_lsn=sweep.begin_lsn,
            clean=not corrupt,
            corrupt_regions=corrupt,
            region_size=region_size,
            regions_checked=n,
            corrupt_ranges=tuple(table.region_bounds(r) for r in corrupt),
            image_size=table.memory.size,
            quarantined_regions=quarantined,
        )

    def abandon_background_sweep(self) -> None:
        """Discard an in-flight sweep without a verdict (crash/close).

        Leaves an unmatched AUDIT_BEGIN in the log -- restart treats an
        audit with no AUDIT_END as never having completed, which is the
        truth.  ``Audit_SN`` and the dirty set are untouched.
        """
        sweep = self._sweep
        if sweep is None:
            return
        self._sweep = None
        maintainer = self._maintainer()
        if maintainer is not None and maintainer.sweep_tracking:
            maintainer.end_sweep_tracking()
        sweep.abandon()

    def checkpoint_tick(self, _event: str = "checkpoint") -> None:
        """Tick task ``audit.certify_join`` (event ``"checkpoint"``).

        The certification join is scheduled work: when the checkpointer
        fires the ``"checkpoint"`` tick, any in-flight background sweep
        is joined *here* -- at the exact program point where
        :meth:`run_for_checkpoint` used to join it inline, so the meter
        trace is unchanged -- and its full-image verdict is stashed for
        the :meth:`run_for_checkpoint` call that follows the tick.
        """
        if self._sweep is None:
            return
        report = self.join_background_sweep()
        assert report is not None
        self._dirty_audits_since_sweep = 0
        maintainer = self._maintainer()
        if report.clean and maintainer is not None:
            maintainer.clear_dirty()
        self._pending_checkpoint_report = report

    def run_for_checkpoint(self, force_full: bool = False) -> AuditReport:
        """The certification audit a checkpoint runs.

        Full by default (the paper's "every region of the database is
        audited"); under ``audit_mode="incremental"`` it is a dirty-region
        pass on the configured full-sweep cadence -- a documented
        weakening of certification, bounded by ``full_sweep_every``.
        ``force_full`` restores the unconditional full audit (used by the
        checkpoint that ends corruption recovery, which must certify the
        whole image).

        An in-flight background sweep is joined instead: the join checks
        every region of the image (never skipping quarantine --
        certification must see everything), so it satisfies even
        ``force_full``.
        """
        report = self._pending_checkpoint_report
        if report is not None:
            # The scheduler's "checkpoint" tick already performed the
            # certification join; deliver its verdict.
            self._pending_checkpoint_report = None
            return report
        if self._sweep is not None:
            # Scheduler-less path (bare auditor): join inline.
            report = self.join_background_sweep()
            assert report is not None
            self._dirty_audits_since_sweep = 0
            maintainer = self._maintainer()
            if report.clean and maintainer is not None:
                maintainer.clear_dirty()
            return report
        if self.audit_mode == "incremental" and not force_full:
            return self.run_dirty()
        return self.run()

    def run_incremental(self, batch: int) -> AuditReport:
        """Audit the next ``batch`` regions of a round-robin sweep.

        Real deployments amortize audit cost by checking a slice of the
        database per call instead of everything at once.  ``Audit_SN``
        semantics are preserved conservatively: ``last_clean_audit_lsn``
        only advances when a *full* sweep completes without finding
        corruption, and it advances to the LSN at which that sweep
        *started* (corruption anywhere could have occurred any time after
        the sweep began).

        Schemes without a codeword table complete a trivially clean sweep.
        """
        table = self.scheme.codeword_table
        if table is None or table.region_count == 0:
            return self.run(region_ids=[])
        if batch <= 0:
            raise ValueError(f"batch must be positive: {batch}")
        if self._sweep_begin_lsn is None:
            # A sweep starts at the *current* end of log.
            self._sweep_begin_lsn = self.system_log.next_lsn
        start = self._cursor
        end = min(start + batch, table.region_count)
        report = self.run(
            region_ids=range(start, end), flush=False, advance_audit_sn=False
        )
        if not report.clean:
            # Restart the sweep; Audit_SN stays at the last clean point.
            self._cursor = 0
            self._sweep_begin_lsn = None
            self.system_log.flush()
            return report
        if end >= table.region_count:
            # Sweep complete and clean: Audit_SN moves to its start.
            self.last_clean_audit_lsn = max(
                self.last_clean_audit_lsn, self._sweep_begin_lsn
            )
            self._cursor = 0
            self._sweep_begin_lsn = None
            self.system_log.flush()
        else:
            self._cursor = end
        return report
