"""XOR codeword arithmetic.

"In our implementations, the codeword is the bitwise exclusive-or of the
words in the region.  Thus the i'th bit of the codeword represents the
parity of the i'th bit of each word in the region." (Section 3)

Words are 32-bit little-endian.  Two properties make maintenance cheap:

* folding is associative/commutative, so a region's codeword can be
  updated incrementally from just the old and new images of the bytes that
  changed: ``cw ^= fold(old) ^ fold(new)``;
* bytes outside the updated range contribute identically before and after,
  so they can be treated as zero -- :func:`positioned_fold` places the
  changed bytes at their offset within their word and pads with zeros,
  which keeps unaligned updates exact without reading neighbouring memory.
"""

from __future__ import annotations

import struct

import numpy as np

WORD = 4
_NUMPY_THRESHOLD = 256  # below this, a Python loop beats numpy's call overhead

CODEWORD_MASK = 0xFFFFFFFF


def fold_words(data: "bytes | bytearray | memoryview") -> int:
    """XOR-fold ``data`` as 32-bit little-endian words.

    Data whose length is not a multiple of four is zero-padded at the end,
    which matches how a region at the very end of the image is folded.
    Accepts any contiguous byte buffer (``bytes``, ``bytearray``,
    ``memoryview``) and never copies the aligned prefix: only the ragged
    tail word -- at most three bytes -- is materialized for padding.
    """
    length = len(data)
    if length == 0:
        return 0
    remainder = length % WORD
    aligned = length - remainder
    codeword = 0
    if aligned:
        if aligned >= _NUMPY_THRESHOLD:
            # Zero-copy view of the aligned prefix; `count` stops numpy
            # from reading the ragged tail.
            words = np.frombuffer(data, dtype="<u4", count=aligned // WORD)
            codeword = int(np.bitwise_xor.reduce(words))
        else:
            prefix = memoryview(data)[:aligned] if remainder else data
            for (word,) in struct.iter_unpack("<I", prefix):
                codeword ^= word
    if remainder:
        tail = bytes(memoryview(data)[aligned:]) + b"\x00" * (WORD - remainder)
        codeword ^= struct.unpack("<I", tail)[0]
    return codeword


def positioned_fold(address: int, data: bytes) -> int:
    """Fold ``data`` as it sits in memory at ``address``.

    A byte at offset ``k`` within its 32-bit word contributes
    ``byte << (8 * k)`` to that word's value; prepending ``address % 4``
    zero bytes reproduces that positioning, so the fold of an unaligned
    update is exact without touching unchanged neighbours.
    """
    lead = address % WORD
    if lead:
        data = b"\x00" * lead + bytes(data)
    return fold_words(data)


def word_count(length: int) -> int:
    """Number of 32-bit words covering ``length`` bytes."""
    return (length + WORD - 1) // WORD
