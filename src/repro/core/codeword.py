"""XOR codeword arithmetic.

"In our implementations, the codeword is the bitwise exclusive-or of the
words in the region.  Thus the i'th bit of the codeword represents the
parity of the i'th bit of each word in the region." (Section 3)

Words are 32-bit little-endian.  Two properties make maintenance cheap:

* folding is associative/commutative, so a region's codeword can be
  updated incrementally from just the old and new images of the bytes that
  changed: ``cw ^= fold(old) ^ fold(new)``;
* bytes outside the updated range contribute identically before and after,
  so they can be treated as zero -- :func:`positioned_fold` places the
  changed bytes at their offset within their word and pads with zeros,
  which keeps unaligned updates exact without reading neighbouring memory.
"""

from __future__ import annotations

import struct

import numpy as np

WORD = 4
_NUMPY_THRESHOLD = 256  # below this, a Python loop beats numpy's call overhead

CODEWORD_MASK = 0xFFFFFFFF


def fold_words(data: bytes) -> int:
    """XOR-fold ``data`` as 32-bit little-endian words.

    Data whose length is not a multiple of four is zero-padded at the end,
    which matches how a region at the very end of the image is folded.
    """
    remainder = len(data) % WORD
    if remainder:
        data = data + b"\x00" * (WORD - remainder)
    if not data:
        return 0
    if len(data) >= _NUMPY_THRESHOLD:
        words = np.frombuffer(data, dtype="<u4")
        return int(np.bitwise_xor.reduce(words))
    codeword = 0
    for (word,) in struct.iter_unpack("<I", data):
        codeword ^= word
    return codeword


def positioned_fold(address: int, data: bytes) -> int:
    """Fold ``data`` as it sits in memory at ``address``.

    A byte at offset ``k`` within its 32-bit word contributes
    ``byte << (8 * k)`` to that word's value; prepending ``address % 4``
    zero bytes reproduces that positioning, so the fold of an unaligned
    update is exact without touching unchanged neighbours.
    """
    lead = address % WORD
    if lead:
        data = b"\x00" * lead + data
    return fold_words(data)


def word_count(length: int) -> int:
    """Number of 32-bit words covering ``length`` bytes."""
    return (length + WORD - 1) // WORD
