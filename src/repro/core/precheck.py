"""Read Prechecking (Section 3.1).

Prevents transaction-carried corruption: every prescribed read first
verifies that the codeword of each protection region containing the data
matches the region's content.  The per-region protection latch is taken in
*exclusive* mode both by updaters (for the whole
``begin_update``/``end_update`` window) and by readers (for the duration
of the check), so a reader never sees a half-maintained codeword.

The scheme's cost scales with region size -- a read of a few bytes folds
the whole region -- which is the time/space tradeoff explored by the
64-byte/512-byte/8 KB rows of Table 2.

The *virtual* cost charged per check (``cw_check_word`` x words in the
region) is unchanged by vectorization; the wall-clock fold goes through
:meth:`CodewordTable.matches`, which folds a zero-copy
:meth:`~repro.mem.memory.MemoryImage.view` of the region instead of a
copying ``read`` + scalar loop.
"""

from __future__ import annotations

from repro.core.schemes import CodewordSchemeBase
from repro.errors import CorruptionDetected, QuarantinedRegionError
from repro.txn.latches import EXCLUSIVE
from repro.txn.transaction import Transaction


class ReadPrecheckScheme(CodewordSchemeBase):
    """Check region-vs-codeword consistency on every read."""

    name = "precheck"
    indirect_protection = "prevent"
    # Small regions: the exclusive protection latch covers the codeword
    # update too, so no separate codeword latch is needed.
    update_latch_mode = EXCLUSIVE
    uses_codeword_latch = False
    # Reads compare against stored codewords, so maintenance must not be
    # deferred (a stacked deferred member would make every read fail).
    requires_fresh_codewords = True

    def __init__(self, region_size: int = 64) -> None:
        super().__init__(region_size)
        self.precheck_count = 0
        self.precheck_failures = 0

    def on_read(self, txn: Transaction, address: int, length: int) -> None:
        """Verify every region the read touches.

        Within one operation a region is checked at most once: the
        operation's locks (and, for its own update windows, the exclusive
        protection latch) keep the region stable against foreign
        prescribed updates for the duration, so a second fold of the same
        region cannot learn anything new about *prescribed* writes -- it
        could only re-detect a wild write, which the next operation's
        check (or an audit) will catch anyway.  The cache is cleared at
        every operation boundary.
        """
        table = self.maintainer.table
        assert table is not None
        checked: set[int] = txn.scheme_state.setdefault("checked_regions", set())
        for region_id in table.regions_spanning(address, length):
            if region_id in checked:
                continue
            checked.add(region_id)
            self._check_region(region_id)

    def _check_region(self, region_id: int) -> None:
        if region_id in self.maintainer.quarantined:
            # Known-corrupt: refuse the read without re-folding bytes the
            # codeword already convicted.
            raise QuarantinedRegionError([region_id])
        self.precheck_count += 1
        # check_region() folds a zero-copy view of the region under the
        # exclusive protection latch and charges the cost-model events.
        if not self.maintainer.check_region(region_id):
            self.precheck_failures += 1
            if self.maintainer.quarantine_on_detect:
                self.maintainer.quarantine([region_id])
                raise QuarantinedRegionError([region_id])
            raise CorruptionDetected([region_id], context="read precheck")

    def on_operation_end(self, txn: Transaction) -> None:
        txn.scheme_state.pop("checked_regions", None)
