"""Background full-sweep audit work, scheduled not self-managed.

The full-sweep certification fold is one big ``np.bitwise_xor.reduce``
over the image (:meth:`~repro.core.regions.CodewordTable.fold_all`), and
numpy releases the GIL for the reduction -- so under a *threaded*
scheduler the fold runs on a worker thread while the (pure-Python)
mutator keeps executing.  The Sandboxing-STM observation motivating
this: validate concurrently with the mutator, not inline on its
critical path.

This module used to own a private ``threading.Thread``; it now asks the
:class:`~repro.runtime.scheduler.Scheduler` for a
:class:`~repro.runtime.scheduler.TaskHandle` instead, so sweeps obey
the database's one ownership model: the scheduler knows every in-flight
fold, and the shutdown/crash drain settles them in a fixed order.
Under a *deterministic* scheduler the fold defers and runs inline at
join -- same verdict, same meter charges, no threads.

Only the *fold* is background work.  Everything stateful -- log
records, meter charges, the verdict against the stored codewords, the
re-check of regions the mutator touched while the fold raced it --
happens on the joining thread
(:meth:`~repro.core.audit.Auditor.join_background_sweep`), so no lock
discipline beyond the snapshot/epoch handshake with the maintainer's
dirty-set is needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.regions import CodewordTable
from repro.runtime.scheduler import TaskHandle, ThreadHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.scheduler import Scheduler


class BackgroundSweep:
    """One in-flight full-sweep fold, owned by a scheduler."""

    def __init__(
        self,
        audit_id: int,
        begin_lsn: int,
        table: CodewordTable,
        scheduler: "Scheduler | None" = None,
    ) -> None:
        self.audit_id = audit_id
        #: LSN of the sweep's AuditBegin record.  A clean sweep advances
        #: ``Audit_SN`` to this LSN, not the join LSN -- corruption
        #: anywhere could have occurred any time after the fold started.
        self.begin_lsn = begin_lsn
        self.table = table
        self.scheduler = scheduler
        self._handle: TaskHandle | None = None

    def start(self) -> None:
        name = f"audit.sweep.{self.audit_id}"
        if self.scheduler is not None:
            self._handle = self.scheduler.spawn(name, self.table.fold_all)
        else:
            # Direct construction without a scheduler (unit tests driving
            # the auditor bare) keeps the historical worker-thread shape.
            self._handle = ThreadHandle(name, self.table.fold_all)

    @property
    def done(self) -> bool:
        """Whether the fold has finished (join will not block)."""
        return self._handle is not None and self._handle.done

    def join(self) -> np.ndarray:
        """Wait for (or, deferred, run) the fold; returns the codewords.

        Idempotent: the handle caches its value, so the test pattern
        "join the fold early, then deliver the verdict later" works in
        both scheduler modes.
        """
        assert self._handle is not None, "sweep never started"
        computed = self._handle.result()
        self._deregister()
        assert computed is not None
        return computed

    def abandon(self) -> None:
        """Settle the work without a verdict (crash/close).

        A threaded fold is waited out and its result discarded; a
        deferred fold is simply dropped -- it never ran.
        """
        if self._handle is not None:
            self._handle.abandon()
            self._deregister()

    def _deregister(self) -> None:
        if self.scheduler is not None and self._handle is not None:
            self.scheduler.forget(self._handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"BackgroundSweep(audit_id={self.audit_id}, {state})"
