"""Background full-sweep audit worker.

The full-sweep certification fold is one big ``np.bitwise_xor.reduce``
over the image (:meth:`~repro.core.regions.CodewordTable.fold_all`), and
numpy releases the GIL for the reduction -- so the fold can run in a
worker thread while the (pure-Python) mutator keeps executing.  The
Sandboxing-STM observation motivating this: validate concurrently with
the mutator, not inline on its critical path.

Only the *fold* runs off-thread.  Everything stateful -- log records,
meter charges, the verdict against the stored codewords, the re-check of
regions the mutator touched while the fold raced it -- happens on the
driver thread at join (see :meth:`~repro.core.audit.Auditor.join_background_sweep`),
so no lock discipline beyond the snapshot/epoch handshake with the
maintainer's dirty-set is needed.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.regions import CodewordTable


class BackgroundSweep:
    """One in-flight full-sweep fold running in a worker thread."""

    def __init__(self, audit_id: int, begin_lsn: int, table: CodewordTable) -> None:
        self.audit_id = audit_id
        #: LSN of the sweep's AuditBegin record.  A clean sweep advances
        #: ``Audit_SN`` to this LSN, not the join LSN -- corruption
        #: anywhere could have occurred any time after the fold started.
        self.begin_lsn = begin_lsn
        self.table = table
        self._computed: np.ndarray | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name=f"audit-sweep-{audit_id}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        try:
            self._computed = self.table.fold_all()
        except BaseException as exc:  # pragma: no cover - defensive
            self._error = exc

    @property
    def done(self) -> bool:
        """Whether the fold has finished (join will not block)."""
        return not self._thread.is_alive()

    def join(self) -> np.ndarray:
        """Wait for the fold; returns the computed per-region codewords."""
        self._thread.join()
        if self._error is not None:  # pragma: no cover - defensive
            raise self._error
        assert self._computed is not None
        return self._computed

    def abandon(self) -> None:
        """Wait the worker out and discard its result (crash/close)."""
        self._thread.join()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"BackgroundSweep(audit_id={self.audit_id}, {state})"
