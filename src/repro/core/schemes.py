"""The protection scheme framework.

A :class:`ProtectionScheme` hooks the three points of the prescribed
update model (Section 1): reads, ``begin_update`` and ``end_update``.  The
transaction manager calls the hooks; the scheme maintains whatever state
(codeword tables, protection latches, MMU protection bits) its level of
protection requires and charges its costs to the shared meter.

Scheme capability metadata mirrors the "Corruption: Direct / Indirect"
columns of Table 2 of the paper.

Since the pipeline refactor, codeword schemes no longer own the codeword
machinery directly: each delegates to a
:class:`~repro.core.maintainer.CodewordMaintainer`, so a
:class:`~repro.core.pipeline.ProtectionPipeline` can substitute one
*shared* maintainer for a whole stack (``make_scheme("data_cw+read_logging")``).
"""

from __future__ import annotations

from abc import ABC

from repro.core.maintainer import CodewordMaintainer
from repro.core.regions import CodewordTable
from repro.errors import ConfigError
from repro.mem.memory import MemoryImage
from repro.sim.clock import Meter
from repro.txn.latches import LatchTable, SHARED
from repro.txn.transaction import Transaction
from repro.wal.local_log import PhysicalUndo


class ProtectionScheme(ABC):
    """Base class: the baseline behaviour is 'do nothing, cost nothing'."""

    name = "abstract"
    direct_protection = "none"    # "none" | "detect" | "prevent"
    indirect_protection = "none"  # "none" | "prevent" | "detect+correct" | "unneeded"
    uses_codewords = False
    logs_reads = False
    logs_read_checksums = False
    #: True when the configuration carries both audit-based and
    #: checksum-based corruption evidence (only pipelines set this).
    combines_evidence = False
    #: True for schemes that keep pages write-protected outside windows
    #: (the pipeline must expose pages before writing below the hooks).
    guards_pages = False
    #: True for schemes whose reads require up-to-date stored codewords
    #: (incompatible with deferred maintenance in a stack).
    requires_fresh_codewords = False

    def __init__(self) -> None:
        self.memory: MemoryImage | None = None
        self.meter: Meter | None = None

    def attach(self, memory: MemoryImage, meter: Meter) -> None:
        """Bind the scheme to a database's memory image and cost meter."""
        self.memory = memory
        self.meter = meter

    def startup(self) -> None:
        """Called once the image is formatted or recovered."""

    # ------------------------------------------------------------ hooks

    def on_read(self, txn: Transaction, address: int, length: int) -> None:
        """Called before every prescribed read."""

    def on_begin_update(self, txn: Transaction, address: int, length: int) -> None:
        """Called when an update window opens."""

    def on_end_update(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> int | None:
        """Called when an update window closes.

        Returns an optional checksum of the *old* image to store in the
        update's redo record (the codewords-in-write-records extension of
        Section 4.3); ``None`` for schemes that do not log it.
        """
        return None

    def close_update_window(self, txn: Transaction, address: int, length: int) -> None:
        """Release window resources without normal end-of-update work.

        Used when a window is abandoned by a rollback before
        ``end_update`` ran (the codeword_applied=False path of
        Section 3.1).
        """

    # ------------------------------------------------------ batch hooks
    #
    # Multi-region update windows (``begin_updates`` / batched
    # ``update()`` coalescing) dispatch through these.  The defaults loop
    # the scalar hooks, so every scheme is batch-correct by construction;
    # the pipeline overrides them to drive the shared maintainer's
    # vectorized batch fold instead.

    def on_begin_update_batch(
        self, txn: Transaction, regions: list[tuple[int, int]]
    ) -> None:
        """Called when a multi-region update window opens."""
        for address, length in regions:
            self.on_begin_update(txn, address, length)

    def on_end_update_batch(
        self, txn: Transaction, items: list[tuple[int, bytes, bytes]]
    ) -> list[int | None]:
        """Called when a multi-region window closes.

        ``items`` holds ``(address, old_image, new_image)`` per range;
        returns the per-range old-image checksums (``None`` entries for
        schemes that do not log them), positionally matching ``items``.
        """
        return [
            self.on_end_update(txn, address, old_image, new_image)
            for address, old_image, new_image in items
        ]

    def close_update_window_batch(
        self, txn: Transaction, regions: list[tuple[int, int]]
    ) -> None:
        """Release a multi-region window abandoned before ``end_update``."""
        for address, length in regions:
            self.close_update_window(txn, address, length)

    def on_operation_end(self, txn: Transaction) -> None:
        """Called at operation commit/abort (clears per-op scheme caches)."""

    def apply_physical_undo(self, txn: Transaction | None, entry: PhysicalUndo) -> None:
        """Restore a physical before-image during rollback."""
        assert self.memory is not None
        self.memory.write(entry.address, entry.image)

    # ------------------------------------------------------------ audit

    def audit_regions(self, region_ids=None) -> list[int]:
        """Return corrupt region ids; schemes without codewords see none."""
        return []

    @property
    def codeword_table(self) -> CodewordTable | None:
        return None

    @property
    def space_overhead(self) -> float:
        """Extra bytes per data byte this scheme needs."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class BaselineScheme(ProtectionScheme):
    """No corruption protection at all -- the Table 2 baseline row."""

    name = "baseline"


class CodewordSchemeBase(ProtectionScheme):
    """Shared behaviour for every codeword-maintaining scheme.

    The actual machinery -- codeword table, protection/codeword latches,
    window bookkeeping, maintenance, codeword-aware undo and the audit
    fold -- lives in a :class:`CodewordMaintainer`.  A bare scheme owns a
    private maintainer configured from its class policy; when stacked in
    a :class:`~repro.core.pipeline.ProtectionPipeline`, members
    :meth:`adopt_maintainer` one shared instance instead so the stack
    keeps a single table and latch set.
    """

    uses_codewords = True
    direct_protection = "detect"
    # Updaters hold the protection latch in this mode during the window.
    update_latch_mode = SHARED
    # Whether a separate codeword latch guards the table (Section 3.2).
    uses_codeword_latch = True
    # Whether maintenance is batched until audit time (deferred extension).
    deferred_maintenance = False

    def __init__(self, region_size: int) -> None:
        super().__init__()
        self.maintainer = CodewordMaintainer(
            region_size,
            update_latch_mode=self.update_latch_mode,
            uses_codeword_latch=self.uses_codeword_latch,
            deferred=self.deferred_maintenance,
        )

    def adopt_maintainer(self, maintainer: CodewordMaintainer) -> None:
        """Replace the private maintainer with a pipeline-shared one."""
        self.maintainer = maintainer

    @property
    def region_size(self) -> int:
        return self.maintainer.region_size

    @property
    def protection_latches(self) -> LatchTable:
        return self.maintainer.protection_latches

    @property
    def codeword_latches(self) -> LatchTable:
        return self.maintainer.codeword_latches

    def attach(self, memory: MemoryImage, meter: Meter) -> None:
        super().attach(memory, meter)
        self.maintainer.attach(memory, meter)

    def startup(self) -> None:
        self.maintainer.rebuild()

    @property
    def codeword_table(self) -> CodewordTable | None:
        return self.maintainer.table

    @property
    def space_overhead(self) -> float:
        return self.maintainer.space_overhead

    # ---------------------------------------------------------- windows

    def on_begin_update(self, txn: Transaction, address: int, length: int) -> None:
        self.maintainer.open_window(txn, address, length)

    def on_end_update(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> int | None:
        self.maintainer.maintain(txn, address, old_image, new_image)
        self.maintainer.release_window(txn)
        return None

    def close_update_window(self, txn: Transaction, address: int, length: int) -> None:
        self.maintainer.release_window(txn)

    # ------------------------------------------------------------- undo

    def apply_physical_undo(self, txn: Transaction | None, entry: PhysicalUndo) -> None:
        self.maintainer.apply_physical_undo(entry)

    # ------------------------------------------------------------ audit

    def audit_regions(self, region_ids=None) -> list[int]:
        return self.maintainer.audit_regions(region_ids)

    def checksum_of(self, data: bytes, charge: bool = True) -> int:
        """Checksum a read value (used by read logging with codewords)."""
        return self.maintainer.checksum_of(data, charge)


SCHEME_NAMES = (
    "baseline",
    "data_cw",
    "precheck",
    "read_logging",
    "cw_read_logging",
    "hardware",
    "deferred",
)

#: Accepted spellings that map onto canonical :data:`SCHEME_NAMES`.
SCHEME_ALIASES = {
    "data_codeword": "data_cw",
    "codeword": "data_cw",
    "read_precheck": "precheck",
    "memory_protection": "hardware",
}

#: Keyword parameters each scheme understands.  Used when a stacked config
#: distributes one shared ``scheme_params`` dict across its members.
SCHEME_PARAMS: dict[str, frozenset[str]] = {
    "baseline": frozenset(),
    "data_cw": frozenset({"region_size"}),
    "precheck": frozenset({"region_size"}),
    "read_logging": frozenset({"region_size", "log_checksums"}),
    "cw_read_logging": frozenset({"region_size", "log_checksums"}),
    "hardware": frozenset({"mprotect_costs"}),
    "deferred": frozenset({"region_size"}),
}


def resolve_scheme_name(name: str) -> str:
    """Canonicalise a scheme name, raising a helpful :class:`ConfigError`."""
    canonical = SCHEME_ALIASES.get(name, name)
    if canonical not in SCHEME_NAMES:
        valid = ", ".join(SCHEME_NAMES)
        raise ConfigError(
            f"unknown protection scheme {name!r}; valid schemes: {valid}"
            " (stack schemes with '+', e.g. 'data_cw+read_logging')"
        )
    return canonical


def _make_single(name: str, **params) -> ProtectionScheme:
    from repro.core.data_codeword import DataCodewordScheme
    from repro.core.deferred import DeferredMaintenanceScheme
    from repro.core.hardware import HardwareProtectionScheme
    from repro.core.precheck import ReadPrecheckScheme
    from repro.core.read_logging import ReadLoggingScheme

    if name == "baseline":
        return BaselineScheme()
    if name == "data_cw":
        return DataCodewordScheme(region_size=params.pop("region_size", 65536), **params)
    if name == "precheck":
        return ReadPrecheckScheme(region_size=params.pop("region_size", 64), **params)
    if name == "read_logging":
        return ReadLoggingScheme(
            region_size=params.pop("region_size", 65536),
            log_checksums=params.pop("log_checksums", False),
            **params,
        )
    if name == "cw_read_logging":
        return ReadLoggingScheme(
            region_size=params.pop("region_size", 65536),
            log_checksums=params.pop("log_checksums", True),
            **params,
        )
    if name == "hardware":
        return HardwareProtectionScheme(**params)
    assert name == "deferred"
    return DeferredMaintenanceScheme(region_size=params.pop("region_size", 65536), **params)


def make_scheme(name: str, **params) -> ProtectionScheme:
    """Build a protection scheme (or a stacked pipeline of them) by name.

    Parameters
    ----------
    name:
        One of :data:`SCHEME_NAMES` (or an alias from
        :data:`SCHEME_ALIASES`), or several joined with ``+`` -- e.g.
        ``"data_codeword+read_logging"`` -- to build a
        :class:`~repro.core.pipeline.ProtectionPipeline` whose codeword
        members share a single table and latch set.
    params:
        ``region_size`` for codeword schemes (default 64 for ``precheck``,
        65536 for audit-based schemes); ``log_checksums`` for the read
        logging schemes; ``mprotect_costs`` for ``hardware``.  For a
        stacked name, each parameter is routed to every member that
        understands it; a parameter no member understands is an error.
    """
    if "+" in name:
        from repro.core.pipeline import ProtectionPipeline

        member_names = [part.strip() for part in name.split("+")]
        if any(not part for part in member_names):
            raise ConfigError(
                f"malformed stacked scheme name {name!r}: empty member between '+'"
            )
        canonical = [resolve_scheme_name(part) for part in member_names]
        duplicates = {n for n in canonical if canonical.count(n) > 1}
        if duplicates:
            raise ConfigError(
                f"stacked scheme {name!r} repeats member(s) {sorted(duplicates)}"
            )
        accepted: set[str] = set()
        members = []
        for member in canonical:
            member_params = {
                key: value
                for key, value in params.items()
                if key in SCHEME_PARAMS[member]
            }
            accepted.update(member_params)
            members.append(_make_single(member, **member_params))
        unknown = set(params) - accepted
        if unknown:
            raise ConfigError(
                f"scheme parameters {sorted(unknown)} not understood by any "
                f"member of stacked scheme {name!r}"
            )
        return ProtectionPipeline(members)
    return _make_single(resolve_scheme_name(name), **params)
