"""The protection scheme framework.

A :class:`ProtectionScheme` hooks the three points of the prescribed
update model (Section 1): reads, ``begin_update`` and ``end_update``.  The
transaction manager calls the hooks; the scheme maintains whatever state
(codeword tables, protection latches, MMU protection bits) its level of
protection requires and charges its costs to the shared meter.

Scheme capability metadata mirrors the "Corruption: Direct / Indirect"
columns of Table 2 of the paper.
"""

from __future__ import annotations

from abc import ABC

from repro.core.codeword import fold_words, word_count
from repro.core.regions import CodewordTable
from repro.errors import ConfigError
from repro.mem.memory import MemoryImage
from repro.sim.clock import Meter
from repro.txn.latches import LatchTable, EXCLUSIVE, SHARED
from repro.txn.transaction import Transaction
from repro.wal.local_log import PhysicalUndo


class ProtectionScheme(ABC):
    """Base class: the baseline behaviour is 'do nothing, cost nothing'."""

    name = "abstract"
    direct_protection = "none"    # "none" | "detect" | "prevent"
    indirect_protection = "none"  # "none" | "prevent" | "detect+correct"
    uses_codewords = False
    logs_reads = False
    logs_read_checksums = False

    def __init__(self) -> None:
        self.memory: MemoryImage | None = None
        self.meter: Meter | None = None

    def attach(self, memory: MemoryImage, meter: Meter) -> None:
        """Bind the scheme to a database's memory image and cost meter."""
        self.memory = memory
        self.meter = meter

    def startup(self) -> None:
        """Called once the image is formatted or recovered."""

    # ------------------------------------------------------------ hooks

    def on_read(self, txn: Transaction, address: int, length: int) -> None:
        """Called before every prescribed read."""

    def on_begin_update(self, txn: Transaction, address: int, length: int) -> None:
        """Called when an update window opens."""

    def on_end_update(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> int | None:
        """Called when an update window closes.

        Returns an optional checksum of the *old* image to store in the
        update's redo record (the codewords-in-write-records extension of
        Section 4.3); ``None`` for schemes that do not log it.
        """
        return None

    def close_update_window(self, txn: Transaction, address: int, length: int) -> None:
        """Release window resources without normal end-of-update work.

        Used when a window is abandoned by a rollback before
        ``end_update`` ran (the codeword_applied=False path of
        Section 3.1).
        """

    def on_operation_end(self, txn: Transaction) -> None:
        """Called at operation commit/abort (clears per-op scheme caches)."""

    def apply_physical_undo(self, txn: Transaction | None, entry: PhysicalUndo) -> None:
        """Restore a physical before-image during rollback."""
        assert self.memory is not None
        self.memory.write(entry.address, entry.image)

    # ------------------------------------------------------------ audit

    def audit_regions(self, region_ids=None) -> list[int]:
        """Return corrupt region ids; schemes without codewords see none."""
        return []

    @property
    def codeword_table(self) -> CodewordTable | None:
        return None

    @property
    def space_overhead(self) -> float:
        """Extra bytes per data byte this scheme needs."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class BaselineScheme(ProtectionScheme):
    """No corruption protection at all -- the Table 2 baseline row."""

    name = "baseline"


class CodewordSchemeBase(ProtectionScheme):
    """Shared machinery for every codeword-maintaining scheme.

    Owns the codeword table and the per-region protection latches, and
    implements incremental maintenance at ``end_update`` plus
    codeword-aware physical undo.
    """

    uses_codewords = True
    direct_protection = "detect"
    # Updaters hold the protection latch in this mode during the window.
    update_latch_mode = SHARED
    # Whether a separate codeword latch guards the table (Section 3.2).
    uses_codeword_latch = True

    def __init__(self, region_size: int) -> None:
        super().__init__()
        self.region_size = region_size
        self._table: CodewordTable | None = None
        self.protection_latches = LatchTable("protection")
        self.codeword_latches = LatchTable("codeword")

    def attach(self, memory: MemoryImage, meter: Meter) -> None:
        super().attach(memory, meter)
        self._table = CodewordTable(memory, self.region_size)

    def startup(self) -> None:
        assert self._table is not None
        self._table.rebuild_all()

    @property
    def codeword_table(self) -> CodewordTable | None:
        return self._table

    @property
    def space_overhead(self) -> float:
        return self._table.space_overhead if self._table else 4.0 / self.region_size

    # ---------------------------------------------------------- windows

    def on_begin_update(self, txn: Transaction, address: int, length: int) -> None:
        assert self._table is not None and self.meter is not None
        latches = []
        for region_id in self._table.regions_spanning(address, length):
            latch = self.protection_latches.latch(region_id)
            latch.acquire(self.update_latch_mode)
            self.meter.charge("latch_pair")
            latches.append(latch)
        txn.scheme_state.setdefault("window_latches", []).extend(latches)

    def on_end_update(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> int | None:
        assert self._table is not None and self.meter is not None
        checksum = self._maintain(txn, address, old_image, new_image)
        self._release_window_latches(txn)
        return checksum

    def _maintain(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> int | None:
        """Update codewords for an in-place update; returns optional checksum."""
        if self.uses_codeword_latch:
            for region_id in self._table.regions_spanning(address, len(old_image)):
                latch = self.codeword_latches.latch(region_id)
                with latch.exclusive():
                    self.meter.charge("latch_pair")
        self._cw_apply(address, old_image, new_image)
        return None

    def _cw_apply(self, address: int, old_image: bytes, new_image: bytes) -> None:
        """Fold an update into the codeword table (overridden by deferred)."""
        words = self._table.apply_update(address, old_image, new_image)
        self.meter.charge("cw_maint_fixed")
        self.meter.charge("cw_maint_word", words)

    def close_update_window(self, txn: Transaction, address: int, length: int) -> None:
        self._release_window_latches(txn)

    def _release_window_latches(self, txn: Transaction) -> None:
        for latch in txn.scheme_state.pop("window_latches", []):
            latch.release()

    # ------------------------------------------------------------- undo

    def apply_physical_undo(self, txn: Transaction | None, entry: PhysicalUndo) -> None:
        """Restore a before-image, fixing the codeword iff it was applied.

        If the update window never reached ``end_update``
        (``codeword_applied`` False), the stored codeword still matches the
        *old* content, so restoring it must leave the codeword alone
        (Section 3.1).
        """
        assert self._table is not None and self.memory is not None
        regions = self._table.regions_spanning(entry.address, len(entry.image))
        latches = [self.protection_latches.latch(r) for r in regions]
        for latch in latches:
            latch.acquire(EXCLUSIVE)
            self.meter.charge("latch_pair")
        try:
            if entry.codeword_applied:
                current = self.memory.read(entry.address, len(entry.image))
                self._cw_apply(entry.address, current, entry.image)
            self.memory.write(entry.address, entry.image)
        finally:
            for latch in latches:
                latch.release()

    # ------------------------------------------------------------ audit

    def audit_regions(self, region_ids=None) -> list[int]:
        """Check codewords against content; returns mismatching regions.

        The protection latch is taken in exclusive mode per region to get
        a consistent view of region and codeword (Section 3.2).

        Fast path: when the regions form a contiguous range and no
        protection latch is held (no update window or precheck in flight,
        so latching cannot block and nothing can slip between checks), the
        whole batch folds through the vectorized
        :meth:`~repro.core.regions.CodewordTable.scan_mismatches` kernel.
        The meter is charged the *same* event counts as the per-region
        loop -- ``charge`` is linear, so bulk charging leaves every
        Table 2 words-folded number unchanged.
        """
        assert self._table is not None and self.meter is not None
        table = self._table
        ids = region_ids if region_ids is not None else range(table.region_count)
        if (
            isinstance(ids, range)
            and ids.step == 1
            and len(ids)
            and ids.start >= 0
            and ids.stop <= table.region_count
            and not self.protection_latches.any_held()
        ):
            checked = len(ids)
            # Every region folds word_count(region_size) words except the
            # possibly ragged final region of the image.
            words = checked * word_count(table.region_size)
            last = table.region_count - 1
            if ids.start <= last < ids.stop:
                words += word_count(table.region_bounds(last)[1]) - word_count(
                    table.region_size
                )
            self.meter.charge("latch_pair", checked)
            self.meter.charge("cw_check_fixed", checked)
            self.meter.charge("cw_check_word", words)
            return table.scan_mismatches(ids)
        corrupt = []
        for region_id in ids:
            latch = self.protection_latches.latch(region_id)
            with latch.exclusive():
                self.meter.charge("latch_pair")
                _start, length = table.region_bounds(region_id)
                self.meter.charge("cw_check_fixed")
                self.meter.charge("cw_check_word", word_count(length))
                if not table.matches(region_id):
                    corrupt.append(region_id)
        return corrupt

    def checksum_of(self, data: bytes, charge: bool = True) -> int:
        """Checksum a read value (used by read logging with codewords)."""
        if charge:
            self.meter.charge("checksum_word", word_count(len(data)))
        return fold_words(data)


SCHEME_NAMES = (
    "baseline",
    "data_cw",
    "precheck",
    "read_logging",
    "cw_read_logging",
    "hardware",
    "deferred",
)


def make_scheme(name: str, **params) -> ProtectionScheme:
    """Build a protection scheme by name.

    Parameters
    ----------
    name:
        One of :data:`SCHEME_NAMES`.
    params:
        ``region_size`` for codeword schemes (default 64 for ``precheck``,
        65536 for audit-based schemes); ``platform`` (a
        :class:`~repro.bench.platforms.PlatformProfile`) or
        ``mprotect_costs`` for ``hardware``.
    """
    from repro.core.data_codeword import DataCodewordScheme
    from repro.core.deferred import DeferredMaintenanceScheme
    from repro.core.hardware import HardwareProtectionScheme
    from repro.core.precheck import ReadPrecheckScheme
    from repro.core.read_logging import ReadLoggingScheme

    if name == "baseline":
        return BaselineScheme()
    if name == "data_cw":
        return DataCodewordScheme(region_size=params.pop("region_size", 65536), **params)
    if name == "precheck":
        return ReadPrecheckScheme(region_size=params.pop("region_size", 64), **params)
    if name == "read_logging":
        return ReadLoggingScheme(
            region_size=params.pop("region_size", 65536),
            log_checksums=params.pop("log_checksums", False),
            **params,
        )
    if name == "cw_read_logging":
        return ReadLoggingScheme(
            region_size=params.pop("region_size", 65536),
            log_checksums=params.pop("log_checksums", True),
            **params,
        )
    if name == "hardware":
        return HardwareProtectionScheme(**params)
    if name == "deferred":
        return DeferredMaintenanceScheme(
            region_size=params.pop("region_size", 65536), **params
        )
    raise ConfigError(f"unknown protection scheme {name!r}; choose from {SCHEME_NAMES}")
