"""Data Codeword scheme (Section 3.2).

Maintains codewords exactly as Read Prechecking does, but drops the check
on every read in favour of periodic asynchronous *audits* -- so it detects
(rather than prevents) direct physical corruption.

Because no reads check codewords, regions can be made much larger (the
default is 64 KB against Read Prechecking's 64 bytes), shrinking space
overhead.  With large regions the protection latch would become a
concurrency bottleneck if updaters held it exclusively, so updaters hold
it in *shared* mode and a separate codeword latch serializes the actual
codeword update; audits take the protection latch in exclusive mode to
see a consistent region/codeword pair.
"""

from __future__ import annotations

from repro.core.schemes import CodewordSchemeBase
from repro.txn.latches import SHARED


class DataCodewordScheme(CodewordSchemeBase):
    """Codeword maintenance with audit-based detection."""

    name = "data_cw"
    direct_protection = "detect"
    indirect_protection = "none"
    update_latch_mode = SHARED
    uses_codeword_latch = True

    def __init__(self, region_size: int = 65536) -> None:
        super().__init__(region_size)
