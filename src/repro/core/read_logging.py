"""Read Logging (Section 4.2) on top of the Data Codeword scheme.

"When a data item is read, the identity of that item is added to the
transaction log ... the data logged consists of the identity of the item
and an optional checksum of the value, but not the value itself."

Read records migrate to the system log with the rest of an operation's
records, turning the log into a limited audit trail: given a set of
corrupt regions, corruption recovery (the delete-transaction model,
Section 4.3) can trace which transactions *read* corrupt data and
therefore which writes carried the corruption onward.

With ``log_checksums`` enabled, read records (and, via the
``old_checksum`` field of update records, writes treated as
read-then-write) carry a fold of the value read.  That upgrade makes
recovery *view-consistent* instead of conflict-consistent and lets a
restart after a genuine crash detect corruption that occurred after the
last audit (Section 4.3, "Codewords in Read Log Records").
"""

from __future__ import annotations

from repro.core.data_codeword import DataCodewordScheme
from repro.txn.transaction import Transaction
from repro.wal.records import ReadRecord


class ReadLoggingScheme(DataCodewordScheme):
    """Data Codeword plus per-read identity (and optional checksum) logging."""

    name = "read_logging"
    indirect_protection = "detect+correct"
    logs_reads = True

    def __init__(self, region_size: int = 65536, log_checksums: bool = False) -> None:
        super().__init__(region_size)
        self.log_checksums = log_checksums
        if log_checksums:
            self.name = "cw_read_logging"
        self.read_records_logged = 0

    @property
    def logs_read_checksums(self) -> bool:  # type: ignore[override]
        return self.log_checksums

    def on_read(self, txn: Transaction, address: int, length: int) -> None:
        assert self.memory is not None and self.meter is not None
        checksum = None
        if self.log_checksums:
            checksum = self.checksum_of(self.memory.read(address, length))
        record = ReadRecord(txn.txn_id, address, length, checksum)
        txn.redo_log.append(record)
        self.read_records_logged += 1
        self.meter.charge("readlog_record")
        self.meter.charge("readlog_byte", record.approx_size())

    def on_end_update(
        self, txn: Transaction, address: int, old_image: bytes, new_image: bytes
    ) -> int | None:
        """Maintain codewords; optionally checksum the overwritten value.

        An in-place update reads the old value, so under the checksum
        extension the update record carries a checksum of the *old* image
        ("a codeword stored in a write log record, indicating that it
        should be treated as a read followed by a write", Section 4.3).
        """
        super().on_end_update(txn, address, old_image, new_image)
        if not self.log_checksums:
            return None
        return self.checksum_of(old_image)
