"""Codeword protection: the paper's primary contribution.

The public surface is the :class:`~repro.core.schemes.ProtectionScheme`
family; :func:`~repro.core.schemes.make_scheme` builds one by name.
"""

from repro.core.codeword import fold_words, positioned_fold
from repro.core.maintainer import CodewordMaintainer
from repro.core.pipeline import ProtectionPipeline
from repro.core.regions import CodewordTable
from repro.core.schemes import (
    BaselineScheme,
    CodewordSchemeBase,
    ProtectionScheme,
    SCHEME_ALIASES,
    SCHEME_NAMES,
    make_scheme,
)
from repro.core.precheck import ReadPrecheckScheme
from repro.core.data_codeword import DataCodewordScheme
from repro.core.read_logging import ReadLoggingScheme
from repro.core.hardware import HardwareProtectionScheme
from repro.core.deferred import DeferredMaintenanceScheme
from repro.core.audit import AuditReport, Auditor

__all__ = [
    "fold_words",
    "positioned_fold",
    "CodewordTable",
    "CodewordMaintainer",
    "ProtectionPipeline",
    "ProtectionScheme",
    "CodewordSchemeBase",
    "BaselineScheme",
    "ReadPrecheckScheme",
    "DataCodewordScheme",
    "ReadLoggingScheme",
    "HardwareProtectionScheme",
    "DeferredMaintenanceScheme",
    "Auditor",
    "AuditReport",
    "make_scheme",
    "SCHEME_NAMES",
    "SCHEME_ALIASES",
]
