"""Codeword-verified replication: log-shipped hot standby.

The single-node story (audits, certified checkpoints, corruption
recovery) protects one image against wild writes.  This package extends
the same codeword machinery across two nodes:

* :mod:`repro.replication.transport` -- sequence-numbered, CRC-framed
  ship batches over a fault-injectable in-memory channel;
* :mod:`repro.replication.shipper` -- the primary-side session: bounded
  in-flight window, cumulative acks, retransmit with capped backoff,
  digest epochs sequenced into the stream;
* :mod:`repro.replication.replica` -- a continuously-restoring archive
  that replays shipped frames through restart recovery, maintains its
  own independent codeword table, audits itself, and can
  :meth:`~repro.replication.replica.Replica.promote` into a certified
  primary;
* :mod:`repro.replication.divergence` -- per-region digest comparison at
  checkpoint epochs, classifying primary-side vs replica-side vs
  transport corruption;
* :mod:`repro.replication.campaign` -- the fault campaign scoring
  detection latency and lost-commit windows (``repro.bench
  --replication``).

See ``docs/replication.md`` for the architecture walk-through.
"""

from repro.replication.divergence import DivergenceDetector, DivergenceReport
from repro.replication.replica import (
    PromotionReport,
    Replica,
    ReplicaDetection,
)
from repro.replication.shipper import LogShipper
from repro.replication.transport import (
    FAULT_KINDS,
    KIND_DIGEST,
    KIND_RECORDS,
    ShipBatch,
    ShipTransport,
)

__all__ = [
    "DivergenceDetector",
    "DivergenceReport",
    "FAULT_KINDS",
    "KIND_DIGEST",
    "KIND_RECORDS",
    "LogShipper",
    "PromotionReport",
    "Replica",
    "ReplicaDetection",
    "ShipBatch",
    "ShipTransport",
]
