"""The replica: a continuously-restoring archive with its own auditor.

A replica is a restart recovery that never finishes.  It bootstraps from
an archive (the certified checkpoint image + ATT), then feeds every
shipped stable-log frame through the *existing* redo machinery
(:meth:`~repro.recovery.restart.RestartRecovery.continuous`) as it
arrives.  Three properties make it a detector rather than just a spare:

* **Its log is byte-identical to the primary's.**  Shipped frames are
  ingested verbatim (same LSNs, same CRCs), so recovery of a crashed
  replica is ordinary restart recovery over its own directory, and
  resume-from-LSN after a crash is just "ship me everything from my
  ``next_lsn``".
* **Its codeword table is independent.**  Replay maintains the table
  incrementally (``maintain_codewords``), so the replica's own
  incremental + full-sweep audits convict replica-side wild writes with
  no reference to any primary state.
* **It checks digest epochs.**  The primary publishes per-region content
  folds with each certified checkpoint anchor; the shipper sequences
  that digest after every frame below the epoch's ``CK_end``, so the
  replica compares folds at exactly the equivalent state and classifies
  any difference (:mod:`repro.replication.divergence`).

``promote()`` is failover: drain what arrived, certify the image with a
full sweep *before* the undo phase (undo rebuilds codewords from
content, which would fold replica-side corruption into fresh, matching
words and mask it), then roll back in-flight transactions and checkpoint
through the shared recovery tail.  The surviving image is certified
clean, and the lost-commit window is surfaced explicitly.

The replica brackets its own audits in a private scratch log
(``replica_audit.log``): audit begin/end records must not burn LSNs in
the replicated log, which stays a pure prefix-copy of the primary's
until promotion.
"""

from __future__ import annotations

import os
import shutil
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.codeword import fold_words
from repro.errors import ArchiveError, ConfigError, PromotionError, ReplicationError
from repro.recovery.archive import ARCHIVE_MANIFEST, read_archive_info
from repro.recovery.checkpoint import ANCHOR_FILE
from repro.recovery.restart import RecoveryReport, RestartRecovery
from repro.replication.divergence import DivergenceDetector
from repro.replication.transport import KIND_DIGEST, KIND_RECORDS, ShipBatch
from repro.wal.records import UpdateRecord, decode_record
from repro.wal.system_log import SystemLog, decode_frames

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.audit import AuditReport
    from repro.storage.database import Database, DBConfig

import numpy as np

#: The replica's private audit-bracket log (never shipped, never replayed).
REPLICA_AUDIT_LOG = "replica_audit.log"

_LSN = struct.Struct("<Q")
_SKIP = frozenset()


def _first_frame_at(payload: bytes, from_lsn: int) -> int:
    """Byte offset of the first frame with ``lsn >= from_lsn``.

    Retransmitted batches can overlap what a crashed-and-reopened replica
    already has durable; the already-ingested prefix is sliced off by
    LSN (the idempotence key) before a byte touches the log.
    """
    view = memoryview(payload)
    size = len(view)
    offset = 0
    while offset + 8 <= size:
        (lsn,) = _LSN.unpack_from(view, offset)
        if lsn >= from_lsn:
            break
        _record, offset = decode_record(view, offset + 8, _SKIP)
    return offset


@dataclass(frozen=True)
class ReplicaDetection:
    """One corruption signal raised on the replica, with where/when."""

    #: "replay_checksum" | "audit" | "digest"
    channel: str
    regions: tuple[int, ...]
    at_batch: int
    detail: str = ""


@dataclass(frozen=True)
class PromotionReport:
    """What failover produced."""

    certified: bool
    #: First LSN the promoted node will assign (== last applied + 1).
    promoted_lsn: int
    #: ``primary_end_lsn - promoted_lsn`` when the caller supplied the
    #: dead primary's end of stable log: committed records that never
    #: made it across.  ``None`` when unknown.
    lost_commit_window: int | None
    audit_report: "AuditReport"
    recovery_report: RecoveryReport


class Replica:
    """One hot standby: bootstrap, continuous replay, certified failover."""

    def __init__(
        self,
        db: "Database",
        recovery: RestartRecovery,
        ck_end: int,
        audit_every: int = 4,
    ) -> None:
        self.db = db
        self.recovery = recovery
        self.ck_end = ck_end
        self.audit_every = max(1, audit_every)
        self.divergence = DivergenceDetector(self)
        self.expected_seq = 0
        self._reorder: dict[int, ShipBatch] = {}
        self.applied_batches = 0
        self.applied_records = 0
        self.duplicate_batches = 0
        self.out_of_order_batches = 0
        self.stale_digests = 0
        self.detections: list[ReplicaDetection] = []
        self.failed_audits: list = []
        self.promoted = False
        self._batches_since_audit = 0
        db.scheduler.register_tick("replica.audit", ("replay",), self._audit_tick)

    # --------------------------------------------------------- lifecycle

    @classmethod
    def bootstrap(
        cls,
        config: "DBConfig",
        archive_dir: str,
        crashpoints=None,
        audit_every: int = 4,
    ) -> "Replica":
        """Start a standby in a fresh directory from an archive.

        Copies the archive's catalog, checkpoint image/meta and anchor
        into ``config.dir``, loads the image, rebuilds an independent
        codeword table from it, and stands up a continuous restart
        recovery waiting for shipped frames from the archive's
        ``CK_end`` onward.
        """
        from repro.storage.database import CATALOG_FILE

        info = read_archive_info(archive_dir)
        os.makedirs(config.dir, exist_ok=True)
        catalog = os.path.join(archive_dir, CATALOG_FILE)
        if not os.path.exists(catalog):
            raise ArchiveError(
                f"archive at {archive_dir} carries no catalog; re-create it "
                "with a current create_archive"
            )
        for filename in (
            CATALOG_FILE,
            f"ckpt_{info.image}.img",
            f"ckpt_{info.image}.meta",
            ANCHOR_FILE,
            ARCHIVE_MANIFEST,
        ):
            source = os.path.join(archive_dir, filename)
            if os.path.exists(source):
                shutil.copy2(source, os.path.join(config.dir, filename))
        return cls._open(config, crashpoints, audit_every)

    @classmethod
    def reopen(
        cls, config: "DBConfig", crashpoints=None, audit_every: int = 4
    ) -> "Replica":
        """Recover a crashed standby from its own durable state.

        The replica's directory already holds the bootstrap checkpoint
        and every ingested frame; reopening replays its *own* stable log
        from ``CK_end`` and resumes waiting at the last contiguous LSN.
        The shipper must :meth:`~repro.replication.shipper.LogShipper.resync`
        afterwards -- retransmitted overlap is dropped by LSN idempotence.
        """
        return cls._open(config, crashpoints, audit_every)

    @classmethod
    def _open(cls, config, crashpoints, audit_every: int) -> "Replica":
        from repro.storage.database import Database

        db = Database(config, crashpoints=crashpoints)
        db._load_catalog()
        db._build_layout()
        db._open_log_and_manager()
        if db.pipeline.maintainer is None or db.pipeline.codeword_table is None:
            raise ConfigError(
                "replication requires a codeword scheme: the replica's "
                "independent audits and digest checks have nothing to "
                "compare otherwise"
            )
        _image, ck_end, _audit_sn, att_bytes = db.checkpointer.load_latest()
        # Codewords from the restored content: the replica's table is
        # built from its own image, never copied from the primary.
        db.scheme.startup()
        # Audit brackets go to a scratch log so the replicated log stays
        # a byte-identical prefix of the primary's.
        db.auditor.system_log = SystemLog(db.path(REPLICA_AUDIT_LOG), db.meter)
        recovery = RestartRecovery.continuous(
            db, ck_end, att_bytes, maintain_codewords=True
        )
        replica = cls(db, recovery, ck_end, audit_every)
        # Reopen path: replay every frame already ingested (bootstrap
        # scans an empty log and falls straight through).
        for _lsn, record in db.system_log.scan(ck_end):
            recovery.apply_record(record)
            replica.applied_records += 1
        db.system_log.truncate_torn_tail()
        last = db.system_log.last_scanned_lsn
        next_lsn = max(ck_end, last + 1)
        db.system_log.next_lsn = next_lsn
        db.system_log.end_of_stable_lsn = next_lsn
        return replica

    @property
    def next_lsn(self) -> int:
        """The next LSN this replica needs -- resume-from-LSN for shipping."""
        return self.db.system_log.next_lsn

    @property
    def acked_seq(self) -> int:
        """Cumulative ack: every batch below this seq is applied durable."""
        return self.expected_seq

    # ----------------------------------------------------------- receive

    def receive(self, raw: bytes) -> int:
        """Process one batch off the wire; returns the cumulative ack.

        Sequence numbers restore order (out-of-order batches wait in a
        reorder buffer, duplicates are dropped), the batch CRC rejects
        transport corruption, and LSN comparison drops frames a reopened
        replica already owns.
        """
        try:
            batch = ShipBatch.decode(raw)
        except ReplicationError as exc:
            self.divergence.record_transport_error(str(exc))
            return self.expected_seq
        if batch.seq < self.expected_seq:
            self.duplicate_batches += 1
            return self.expected_seq
        if batch.seq > self.expected_seq:
            self.out_of_order_batches += 1
            self._reorder[batch.seq] = batch
            return self.expected_seq
        self._process(batch)
        self.expected_seq += 1
        while self.expected_seq in self._reorder:
            self._process(self._reorder.pop(self.expected_seq))
            self.expected_seq += 1
        return self.expected_seq

    def _process(self, batch: ShipBatch) -> None:
        if batch.kind == KIND_DIGEST:
            if batch.first_lsn != self.db.system_log.next_lsn:
                # The epoch compares equal states only when this replica
                # has applied exactly the records below its CK_end; a
                # resync can leave a stale epoch in the stream -- skip it
                # rather than raise a false divergence.
                self.stale_digests += 1
                return
            report = self.divergence.check(
                batch.first_lsn, np.frombuffer(batch.payload, dtype="<u4")
            )
            if not report.clean:
                self.detections.append(
                    ReplicaDetection(
                        "digest",
                        report.mismatched_regions,
                        self.applied_batches,
                        detail=report.classification,
                    )
                )
            return
        if batch.kind != KIND_RECORDS:  # pragma: no cover - decode validates
            raise ReplicationError(f"unknown batch kind {batch.kind}")
        log = self.db.system_log
        offset = _first_frame_at(batch.payload, log.next_lsn)
        payload = batch.payload[offset:]
        if not payload:
            self.duplicate_batches += 1
            return
        frames = list(decode_frames(payload))
        self._check_replay_checksums(frames)
        crashpoints = self.db.crashpoints
        crashpoints.reach("replica.before_ingest")
        log.ingest_frames(payload, frames[0][0])
        crashpoints.reach("replica.after_ingest")
        for _lsn, record in frames:
            self.recovery.apply_record(record)
        self.applied_records += len(frames)
        self.applied_batches += 1
        crashpoints.reach("replica.after_apply")
        self.db.scheduler.tick("replay")

    def _check_replay_checksums(self, frames) -> None:
        """First-touch divergence: a logged pre-image checksum vs my bytes.

        Schemes that checksum updates record the fold of the bytes the
        *primary* overwrote; if my image disagrees before I apply the
        same record, one of us diverged at this address -- detection at
        the first replayed touch, well before the next digest epoch.
        Only the first mismatch per batch is recorded (one wild write
        smears across every later update of the region).
        """
        maintainer = self.db.pipeline.maintainer
        for _lsn, record in frames:
            if not isinstance(record, UpdateRecord):
                continue
            if record.old_checksum is None:
                continue
            current = self.db.memory.read(record.address, record.length)
            if fold_words(current) != record.old_checksum:
                regions = ()
                if maintainer.table is not None:
                    regions = tuple(
                        maintainer.table.regions_spanning(
                            record.address, record.length
                        )
                    )
                self.detections.append(
                    ReplicaDetection(
                        "replay_checksum",
                        regions,
                        self.applied_batches,
                        detail=f"update at {record.address:#x}",
                    )
                )
                return

    def _audit_tick(self, _event: str) -> None:
        """Tick task ``replica.audit`` (event ``"replay"``).

        The replica's own audit cadence: every ``audit_every`` applied
        batches run the database's routine audit (incremental with
        full-sweep escalation under ``audit_mode="incremental"``, full
        otherwise) -- entirely against the replica's own table.
        """
        self._batches_since_audit += 1
        if self._batches_since_audit < self.audit_every:
            return
        self._batches_since_audit = 0
        report = self.db.audit()
        if not report.clean:
            self.failed_audits.append(report)
            self.detections.append(
                ReplicaDetection(
                    "audit", tuple(report.corrupt_regions), self.applied_batches
                )
            )

    # ----------------------------------------------------------- promote

    def promote(self, primary_end_lsn: int | None = None) -> PromotionReport:
        """Failover: certify, roll back in-flight work, open for business.

        The caller drains the ship queue first (the shipper's ``drain``,
        or whatever the dead network still delivers).  Order matters:

        1. full certifying sweep over the replica's own table -- *before*
           any undo, because the undo phase rebuilds codewords from
           content and would mask replica-side corruption forever;
        2. roll back transactions with no commit record at the last
           contiguous LSN (the shared recovery tail: physical undo,
           codeword rebuild, logical compensation, final checkpoint);
        3. surface the lost-commit window against the dead primary's end
           of stable log, bounded by the shipper's in-flight window.

        Raises :class:`~repro.errors.PromotionError` (carrying the audit
        report) if certification fails -- quarantine/repair and retry.
        """
        db = self.db
        last_lsn = db.system_log.next_lsn - 1
        db.crashpoints.reach("promote.pre_sweep")
        audit_report = db.auditor.run()
        if not audit_report.clean:
            if db.quarantine_enabled:
                db.pipeline.maintainer.quarantine(audit_report.corrupt_regions)
            raise PromotionError(
                f"cannot promote: {len(audit_report.corrupt_regions)} "
                "region(s) failed the certifying sweep",
                audit_report=audit_report,
            )
        db.crashpoints.reach("promote.after_sweep")
        recovery_report = self.recovery.complete(last_lsn)
        # The promoted node is a primary now: audits bracket themselves
        # in the real log again, and transactions are admitted.
        db.auditor.system_log.close()
        db.auditor.system_log = db.system_log
        db._started = True
        self.promoted = True
        lost = None
        if primary_end_lsn is not None:
            lost = max(0, primary_end_lsn - (last_lsn + 1))
        return PromotionReport(
            certified=True,
            promoted_lsn=last_lsn + 1,
            lost_commit_window=lost,
            audit_report=audit_report,
            recovery_report=recovery_report,
        )

    def repair(self) -> int:
        """Repair quarantined regions from the replica's own checkpoint+log."""
        return self.db.repair_quarantined()

    def close(self) -> None:
        self.db.auditor.system_log.close()
        self.db.close()

    def crash(self) -> None:
        """Simulated standby process death; :meth:`reopen` recovers it."""
        if self.db.auditor.system_log is not self.db.system_log:
            self.db.auditor.system_log.crash()
        self.db.crash()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica(next_lsn={self.db.system_log.next_lsn}, "
            f"batches={self.applied_batches}, records={self.applied_records}, "
            f"promoted={self.promoted})"
        )
