"""Divergence detection: comparing codeword digests across nodes.

A single node audits its own image against its own codeword table; a
wild write that corrupts *both* consistently (or a fault in the auditing
state itself) is invisible to it.  The replica closes that hole with an
independent executor: it folds its *own* replayed image and compares the
per-region digests against the ones the primary published with its
checkpoint anchor.  Two nodes that applied the same record stream to the
same archived image must have identical folds; any difference is
corruption on one side or the other.

Classification uses the replica's own codeword table as the tiebreaker:
for each mismatched region the replica self-audits (stored codeword vs
content).  If its own audit convicts the region, the replica's image
moved without maintenance -- a replica-side wild write.  If its own
audit is clean, the replica's content is exactly what the record stream
produced, so the *primary's* fold is the one that moved -- a
primary-side wild write, caught at the next digest epoch instead of the
primary's (much later) full-sweep escalation.  Transport corruption
never reaches this comparison: the batch CRC rejects it at receive time
(counted separately by the replica).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.replication.replica import Replica


@dataclass(frozen=True)
class DivergenceReport:
    """Outcome of one digest-epoch comparison."""

    ck_end: int
    regions_compared: int
    mismatched_regions: tuple[int, ...]
    #: Mismatched regions the replica's own audit convicts.
    replica_side: tuple[int, ...]
    #: Mismatched regions the replica's own audit clears.
    primary_side: tuple[int, ...]
    #: "clean" | "primary" | "replica" | "both"
    classification: str

    @property
    def clean(self) -> bool:
        return not self.mismatched_regions


@dataclass
class DivergenceDetector:
    """Runs digest-epoch comparisons for one replica."""

    replica: "Replica"
    reports: list[DivergenceReport] = field(default_factory=list)
    transport_errors: list[str] = field(default_factory=list)
    epochs_checked: int = 0

    def record_transport_error(self, detail: str) -> None:
        """A batch failed its CRC/length checks: transport corruption.

        Tolerated, not fatal: the batch is discarded and the shipper's
        retransmit timer re-sends it intact.
        """
        self.transport_errors.append(detail)

    def check(self, ck_end: int, primary_digests: np.ndarray) -> DivergenceReport:
        """Compare the replica's content folds against a published epoch.

        Called while the replica has applied exactly the records below
        ``ck_end`` (the shipper sequences the digest batch after every
        frame of that prefix), so a clean comparison certifies that both
        images are byte-equivalent at the epoch.
        """
        maintainer = self.replica.db.pipeline.maintainer
        mine = maintainer.region_digests()
        primary_digests = np.asarray(primary_digests, dtype=np.uint32)
        n = min(len(mine), len(primary_digests))
        mismatched = tuple(
            int(r) for r in np.nonzero(mine[:n] != primary_digests[:n])[0]
        )
        replica_side: tuple[int, ...] = ()
        primary_side: tuple[int, ...] = ()
        classification = "clean"
        if mismatched:
            convicted = set(maintainer.audit_regions(list(mismatched)))
            replica_side = tuple(r for r in mismatched if r in convicted)
            primary_side = tuple(r for r in mismatched if r not in convicted)
            if replica_side and primary_side:
                classification = "both"
            elif replica_side:
                classification = "replica"
            else:
                classification = "primary"
            if replica_side and self.replica.db.quarantine_enabled:
                # The replica's own bytes are corrupt: fence them exactly
                # like a failed local audit would, so reads degrade (or
                # transparently repair) instead of serving garbage.
                maintainer.quarantine(replica_side)
        self.epochs_checked += 1
        report = DivergenceReport(
            ck_end=ck_end,
            regions_compared=n,
            mismatched_regions=mismatched,
            replica_side=replica_side,
            primary_side=primary_side,
            classification=classification,
        )
        self.reports.append(report)
        return report

    @property
    def diverged(self) -> list[DivergenceReport]:
        return [r for r in self.reports if not r.clean]
