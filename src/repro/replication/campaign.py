"""Replication fault campaign: detection, tolerance, certified failover.

The single-node campaign (:mod:`repro.faults.campaign`) scores how fast
one protection stack catches its own wild writes.  This campaign scores
the *two-node* story end to end.  Each schedule runs a primary with a
hot standby attached (archive bootstrap, log shipping, digest epochs),
injects exactly one fault from the matrix below, then kills the primary
and promotes the replica -- every schedule finishes with a certified
failover and a committed-value check against ground truth.

Fault matrix (one kind per schedule):

=====================  ==================================================
kind                   what happens / what must be observed
=====================  ==================================================
clean                  nothing injected; clean convergence + failover
abrupt_death           primary dies with unshipped + dropped in-flight
                       batches; the lost-commit window must be surfaced
                       and bounded by the ship window
primary_wild_write_hot unlogged poke over a *workload-hot* record on the
                       primary; caught by replay checksums / digests /
                       primary certification -- never by nothing
primary_wild_write_cold poke over a record no transaction touches; the
                       primary's incremental audits are blind to it, the
                       replica's digest check is not -- the headline
                       detection-latency comparison
replica_wild_write     poke over the replica's image; its own audits or
                       the digest self-audit convict it, promotion
                       refuses to certify until repaired
ship_drop              a batch vanishes; retransmit must converge
ship_duplicate         a batch arrives twice; seq/LSN dedup must absorb
ship_reorder           a batch overtakes its successor; the reorder
                       buffer must restore order
ship_tear              a batch arrives truncated; the CRC must classify
                       it as transport corruption and retransmit
crash_replica          a replica crash point fires mid-ingest/apply;
                       reopen + resync must converge byte-identically
crash_promote          a crash point fires mid-promotion; re-promotion
                       must converge to the same certified image
=====================  ==================================================

Scoring is against injector ground truth, exactly like the single-node
campaign: a corruption kind with no detection by the end of the schedule
(digest epochs included) is a **false negative** and fails the bench
gate; a transport kind that does not converge is a tolerance failure;
every promotion must certify, and every surviving value must come from
the committed-value history.

Determinism: each schedule seeds ``random.Random(f"{seed}:{kind}:{index}")``
(string seeding, stable across processes).
"""

from __future__ import annotations

import os
import random
import shutil
from dataclasses import dataclass, field

from repro.errors import (
    CorruptionDetected,
    PromotionError,
    QuarantinedRegionError,
    ReproError,
    SimulatedCrash,
)
from repro.faults.crashpoints import (
    CrashPointRegistry,
    REPLICA_CRASH_POINTS,
)
from repro.faults.injector import FaultInjector
from repro.replication.replica import Replica
from repro.replication.shipper import LogShipper
from repro.replication.transport import ShipTransport

#: One schedule per (kind, seed, index).
REPLICATION_FAULT_KINDS = (
    "clean",
    "abrupt_death",
    "primary_wild_write_hot",
    "primary_wild_write_cold",
    "replica_wild_write",
    "ship_drop",
    "ship_duplicate",
    "ship_reorder",
    "ship_tear",
    "crash_replica",
    "crash_promote",
)

#: Kinds that land corrupt bytes in an image -- zero false negatives
#: required, detection latency reported.
CORRUPTION_KINDS = (
    "primary_wild_write_hot",
    "primary_wild_write_cold",
    "replica_wild_write",
)

#: Kinds that damage the channel, not an image -- tolerance (convergence
#: under retransmit/dedup/reorder) is what is scored.
TRANSPORT_KINDS = ("ship_drop", "ship_duplicate", "ship_reorder", "ship_tear")

_PROMOTE_CRASH_POINTS = (
    "promote.pre_sweep",
    "promote.after_sweep",
    "recovery.mid_undo",
    "recovery.pre_complete",
)


@dataclass(frozen=True)
class ReplicationCampaignSpec:
    """Shape of one replication campaign."""

    seeds: tuple[int, ...] = (1, 2, 3)
    kinds: tuple[str, ...] = REPLICATION_FAULT_KINDS
    schedules_per_kind: int = 1
    scheme: str = "data_cw+cw_read_logging"
    ops_per_schedule: int = 24
    accounts: int = 16
    region_size: int = 256
    #: Primary checkpoint cadence in workload ops; every certified
    #: checkpoint publishes a digest epoch, so this bounds the replica's
    #: detection latency for cold corruption.
    checkpoint_every: int = 5
    window: int = 4
    batch_records: int = 8
    audit_every_batches: int = 4

    @property
    def total_schedules(self) -> int:
        return len(self.seeds) * len(self.kinds) * self.schedules_per_kind


@dataclass
class ReplicationOutcome:
    """Score of one schedule against ground truth."""

    kind: str
    seed: int
    index: int
    fault_op: int = -1
    #: "replay_checksum" | "audit" | "digest" | "transport" |
    #: "primary_certify" | "primary_inline" | "promote_sweep" | "none"
    detection_stage: str = "none"
    detection_op: int | None = None
    #: Divergence classification when the digest channel fired.
    classification: str = ""
    false_negative: bool = False
    #: Transport kinds: did the protocol converge despite the fault?
    tolerated: bool = True
    promoted: bool = False
    certified: bool = False
    promote_retries: int = 0
    crashes: int = 0
    lost_commit_window: int | None = None
    lost_window_bound: int = 0
    value_ok: bool = True
    #: ``primary_wild_write_cold`` only: ops the *single-node* arm needed
    #: to catch the same fault (its final full sweep).
    single_node_latency: int | None = None
    retransmits: int = 0
    transport_errors: int = 0
    error: str | None = None

    @property
    def detection_latency(self) -> int | None:
        if self.detection_op is None:
            return None
        return self.detection_op - self.fault_op


@dataclass
class ReplicationCampaignResult:
    """All outcomes plus the aggregate scoreboard."""

    spec: ReplicationCampaignSpec
    outcomes: list[ReplicationOutcome] = field(default_factory=list)

    @property
    def false_negatives(self) -> list[ReplicationOutcome]:
        return [o for o in self.outcomes if o.false_negative]

    @property
    def tolerance_failures(self) -> list[ReplicationOutcome]:
        return [
            o
            for o in self.outcomes
            if o.kind in TRANSPORT_KINDS and not o.tolerated
        ]

    @property
    def uncertified(self) -> list[ReplicationOutcome]:
        return [o for o in self.outcomes if o.error is None and not o.certified]

    @property
    def errors(self) -> list[ReplicationOutcome]:
        return [o for o in self.outcomes if o.error is not None]

    def detection_latencies(self) -> list[int]:
        return sorted(
            o.detection_latency
            for o in self.outcomes
            if o.kind in CORRUPTION_KINDS and o.detection_latency is not None
        )

    def latency_percentiles(self) -> dict[str, float | None]:
        """p50/p90/max of replica-side detection latency, in workload ops."""
        latencies = self.detection_latencies()
        if not latencies:
            return {"p50": None, "p90": None, "max": None}

        def pct(p: float) -> float:
            i = min(len(latencies) - 1, int(round(p * (len(latencies) - 1))))
            return float(latencies[i])

        return {"p50": pct(0.5), "p90": pct(0.9), "max": float(latencies[-1])}

    def cold_comparison(self) -> dict:
        """Replica digest latency vs single-node full-sweep latency."""
        rows = [o for o in self.outcomes if o.kind == "primary_wild_write_cold"]
        pairs = [
            (o.detection_latency, o.single_node_latency)
            for o in rows
            if o.detection_latency is not None
            and o.single_node_latency is not None
        ]
        return {
            "schedules": len(rows),
            "compared": len(pairs),
            "replica_latencies": [p[0] for p in pairs],
            "single_node_latencies": [p[1] for p in pairs],
            "replica_strictly_faster": all(r < s for r, s in pairs) and bool(pairs),
        }

    def lost_commit_stats(self) -> dict:
        rows = [o for o in self.outcomes if o.lost_commit_window is not None]
        windows = [o.lost_commit_window for o in rows]
        return {
            "schedules": len(rows),
            "max_lost_records": max(windows, default=None),
            "nonzero": sum(1 for w in windows if w),
            "bound_violations": sum(
                1
                for o in rows
                if o.lost_window_bound and o.lost_commit_window > o.lost_window_bound
            ),
        }

    def scoreboard(self) -> dict[str, dict]:
        board: dict[str, dict] = {}
        for kind in self.spec.kinds:
            rows = [o for o in self.outcomes if o.kind == kind]
            latencies = [
                o.detection_latency
                for o in rows
                if o.detection_latency is not None
            ]
            stages: dict[str, int] = {}
            for o in rows:
                stages[o.detection_stage] = stages.get(o.detection_stage, 0) + 1
            board[kind] = {
                "schedules": len(rows),
                "detected": sum(1 for o in rows if o.detection_op is not None),
                "false_negatives": sum(1 for o in rows if o.false_negative),
                "tolerated": sum(1 for o in rows if o.tolerated),
                "mean_detection_latency_ops": (
                    round(sum(latencies) / len(latencies), 2) if latencies else None
                ),
                "stages": dict(sorted(stages.items())),
                "promoted": sum(1 for o in rows if o.promoted),
                "certified": sum(1 for o in rows if o.certified),
                "promote_retries": sum(o.promote_retries for o in rows),
                "crashes": sum(o.crashes for o in rows),
                "max_lost_commit_window": max(
                    (o.lost_commit_window or 0 for o in rows), default=0
                ),
                "values_ok": sum(1 for o in rows if o.value_ok),
                "retransmits": sum(o.retransmits for o in rows),
                "errors": sum(1 for o in rows if o.error is not None),
            }
        return board

    def to_payload(self) -> dict:
        return {
            "spec": {
                "seeds": list(self.spec.seeds),
                "kinds": list(self.spec.kinds),
                "schedules_per_kind": self.spec.schedules_per_kind,
                "scheme": self.spec.scheme,
                "ops_per_schedule": self.spec.ops_per_schedule,
                "accounts": self.spec.accounts,
                "region_size": self.spec.region_size,
                "checkpoint_every": self.spec.checkpoint_every,
                "window": self.spec.window,
                "batch_records": self.spec.batch_records,
            },
            "schedules": len(self.outcomes),
            "false_negatives": len(self.false_negatives),
            "tolerance_failures": len(self.tolerance_failures),
            "uncertified_promotions": len(self.uncertified),
            "detection_latency_ops": self.latency_percentiles(),
            "cold_region_comparison": self.cold_comparison(),
            "lost_commit_window": self.lost_commit_stats(),
            "errors": [
                {"kind": o.kind, "seed": o.seed, "index": o.index, "error": o.error}
                for o in self.errors
            ],
            "scoreboard": self.scoreboard(),
        }


class ReplicationCampaignRunner:
    """Replays a :class:`ReplicationCampaignSpec` and scores it."""

    def __init__(self, spec: ReplicationCampaignSpec, base_dir: str) -> None:
        self.spec = spec
        self.base_dir = base_dir

    def run(self) -> ReplicationCampaignResult:
        result = ReplicationCampaignResult(self.spec)
        for kind in self.spec.kinds:
            for seed in self.spec.seeds:
                for index in range(self.spec.schedules_per_kind):
                    result.outcomes.append(self._run_schedule(kind, seed, index))
        return result

    def _run_schedule(self, kind: str, seed: int, index: int) -> ReplicationOutcome:
        work_dir = os.path.join(self.base_dir, f"{kind}-s{seed}-{index}")
        if os.path.exists(work_dir):
            shutil.rmtree(work_dir)
        os.makedirs(work_dir)
        schedule = _ReplicationSchedule(self.spec, kind, seed, index, work_dir)
        try:
            return schedule.run()
        except Exception as exc:  # scored, not raised
            schedule.outcome.error = f"{type(exc).__name__}: {exc}"
            return schedule.outcome
        finally:
            schedule.close()
            shutil.rmtree(work_dir, ignore_errors=True)


class _ReplicationSchedule:
    """One schedule: primary + standby, one fault, death, failover."""

    def __init__(self, spec, kind, seed, index, work_dir) -> None:
        self.spec = spec
        self.kind = kind
        self.work_dir = work_dir
        self.rng = random.Random(f"{seed}:{kind}:{index}")
        self.outcome = ReplicationOutcome(kind=kind, seed=seed, index=index)
        self.db = None
        self.replica: Replica | None = None
        self.shipper: LogShipper | None = None
        self.transport = ShipTransport()
        self.replica_registry = CrashPointRegistry()
        self.injector: FaultInjector | None = None
        self.slots: dict[int, int] = {}
        self.committed: dict[int, list[int]] = {}
        self.primary_dead = False

    # ------------------------------------------------------------- setup

    def _db_config(self, name: str):
        from repro import DBConfig

        return DBConfig(
            dir=os.path.join(self.work_dir, name),
            scheme=self.spec.scheme,
            scheme_params={"region_size": self.spec.region_size},
            quarantine=True,
            audit_mode="incremental",
            # The primary's full-sweep escalation is pushed past the
            # schedule horizon on purpose: cold corruption must be
            # invisible to the primary's own routine audits so the
            # replica's digest channel is what catches it.
            full_sweep_every=1000,
        )

    def _build_primary(self):
        from repro import Database, Field, FieldType, Schema

        schema = Schema(
            [Field("id", FieldType.INT64), Field("balance", FieldType.INT64)]
        )
        db = Database(self._db_config("primary"))
        db.create_table(
            "acct", schema, capacity=max(64, self.spec.accounts * 4), key_field="id"
        )
        db.start()
        return db

    def close(self) -> None:
        for node in (self.replica, ):
            if node is not None:
                try:
                    node.close()
                except Exception:
                    pass
        if self.db is not None:
            try:
                self.db.close()
            except Exception:
                pass

    # --------------------------------------------------------------- run

    def run(self) -> ReplicationOutcome:
        from repro.recovery.archive import create_archive

        spec, rng, out = self.spec, self.rng, self.outcome
        self.db = self._build_primary()
        table = self.db.table("acct")
        txn = self.db.begin()
        for i in range(spec.accounts):
            balance = 1000 + i
            self.slots[i] = table.insert(txn, {"id": i, "balance": balance})
            self.committed[i] = [balance]
        self.db.commit(txn)
        archive_dir = os.path.join(self.work_dir, "archive")
        create_archive(self.db, archive_dir)
        self.injector = FaultInjector(self.db, seed=rng.randrange(2**31))

        self.replica_config = self._db_config("replica")
        self.replica = Replica.bootstrap(
            self.replica_config,
            archive_dir,
            crashpoints=self.replica_registry,
            audit_every=spec.audit_every_batches,
        )
        self.shipper = LogShipper(
            self.db,
            self.transport,
            self.replica,
            window=spec.window,
            batch_records=spec.batch_records,
        )
        out.lost_window_bound = self.shipper.lost_window_bound

        ops = spec.ops_per_schedule
        # Cold corruption needs at least one digest epoch (plus slack)
        # after injection; everything else just needs room to act.
        if self.kind in CORRUPTION_KINDS:
            out.fault_op = rng.randrange(2, ops - 2 * spec.checkpoint_every)
        else:
            out.fault_op = rng.randrange(2, max(3, ops - 4))
        acct_seq = [rng.randrange(spec.accounts) for _ in range(ops)]
        value_seq = [rng.randrange(1, 10**6) for _ in range(ops)]

        for op in range(ops):
            if op == out.fault_op:
                self._inject(acct_seq, op)
            try:
                self._workload_op(table, acct_seq[op], value_seq[op], op)
            except (QuarantinedRegionError, CorruptionDetected):
                # The primary's own stack caught it inline; stop the
                # primary and fail over -- the replica must still hold
                # every committed value.
                self._on_detect("primary_inline", op)
                break
            self._pump(op)
            self._poll_detection(op)
        else:
            op = ops

        return self._failover(op)

    def _workload_op(self, table, acct: int, value: int, op: int) -> None:
        if op % self.spec.checkpoint_every == self.spec.checkpoint_every - 1:
            result = self.db.checkpoint()
            if not result.certified:
                self._on_detect("primary_certify", op)
                raise CorruptionDetected(
                    list(result.audit_report.corrupt_regions)
                    if result.audit_report
                    else [],
                    context="checkpoint certification",
                )
            return
        txn = self.db.begin()
        try:
            table.update(txn, self.slots[acct], {"balance": value})
        except Exception:
            self.db.abort(txn)
            raise
        self.db.commit(txn)
        self.committed[acct].append(value)

    # ------------------------------------------------------------- faults

    def _inject(self, acct_seq: list[int], op: int) -> None:
        kind, rng, table = self.kind, self.rng, self.db.table("acct")
        if kind == "primary_wild_write_hot":
            # A record the workload will touch again: the next update of
            # this account exercises the first-touch replay-checksum path.
            target = acct_seq[min(op + 1, len(acct_seq) - 1)]
            self.injector.wild_write(
                address=table.record_address(self.slots[target]),
                length=table.schema.record_size,
            )
        elif kind == "primary_wild_write_cold":
            # An allocated-but-unused slot: no transaction ever reads or
            # writes it, so only a full fold can see the damage.
            cold_slot = self.spec.accounts + 3
            self.injector.wild_write(
                address=table.record_address(cold_slot), length=16
            )
        elif kind == "replica_wild_write":
            target = rng.randrange(self.spec.accounts)
            replica_table = self.replica.db.table("acct")
            FaultInjector(self.replica.db, seed=rng.randrange(2**31)).wild_write(
                address=replica_table.record_address(self.slots[target]),
                length=16,
            )
        elif kind == "ship_drop":
            self.injector.drop_batch(self.transport)
        elif kind == "ship_duplicate":
            self.injector.duplicate_batch(self.transport)
        elif kind == "ship_reorder":
            self.injector.reorder_batches(self.transport)
        elif kind == "ship_tear":
            self.injector.tear_batch(self.transport)
        elif kind == "crash_replica":
            self.replica_registry.arm(rng.choice(REPLICA_CRASH_POINTS[:3]))
        elif kind == "crash_promote":
            # Armed now, fires during promote()/its recovery tail.
            self.replica_registry.arm(rng.choice(_PROMOTE_CRASH_POINTS))
        elif kind in ("clean", "abrupt_death"):
            pass
        else:  # pragma: no cover - spec'd kinds only
            raise ValueError(f"unknown replication fault kind {kind!r}")

    # ---------------------------------------------------------- shipping

    def _pump(self, op: int) -> None:
        try:
            self.shipper.pump()
        except SimulatedCrash:
            self._replica_crash_recover()

    def _replica_crash_recover(self) -> None:
        self.outcome.crashes += 1
        self.replica.crash()
        self.replica = Replica.reopen(
            self.replica_config,
            crashpoints=self.replica_registry,
            audit_every=self.spec.audit_every_batches,
        )
        self.shipper.resync(self.replica)

    def _poll_detection(self, op: int) -> None:
        out, replica = self.outcome, self.replica
        if out.detection_op is not None:
            return
        if replica.detections:
            first = replica.detections[0]
            self._on_detect(first.channel, op)
            diverged = replica.divergence.diverged
            if diverged:
                out.classification = diverged[0].classification
        elif replica.divergence.transport_errors:
            self._on_detect("transport", op)

    def _on_detect(self, stage: str, op: int) -> None:
        if self.outcome.detection_op is None:
            self.outcome.detection_stage = stage
            self.outcome.detection_op = op

    # ----------------------------------------------------------- failover

    def _failover(self, end_op: int) -> ReplicationOutcome:
        spec, out = self.spec, self.outcome
        table = self.db.table("acct")

        if self.kind == "abrupt_death" and not self.primary_dead:
            # A burst of commits the replica never sees completely: some
            # unshipped, one in-flight batch dropped on the floor.  No
            # retransmission after death -- the gap IS the lost-commit
            # window, and it must stay within the ship window bound.
            for extra in range(3):
                acct = self.rng.randrange(spec.accounts)
                value = self.rng.randrange(1, 10**6)
                txn = self.db.begin()
                table.update(txn, self.slots[acct], {"balance": value})
                self.db.commit(txn)
                self.committed[acct].append(value)
            self.transport.arm_fault("drop")
            self._pump(end_op)
        elif out.detection_stage not in ("primary_inline", "primary_certify"):
            # An orderly handover window: one last digest epoch, then
            # drain what the network still carries.
            try:
                self._workload_op(table, 0, 0, spec.checkpoint_every - 1)
            except (QuarantinedRegionError, CorruptionDetected):
                self._on_detect("primary_certify", end_op)
            for _ in range(50):
                if self.shipper.caught_up:
                    break
                self._pump(end_op)
            self._poll_detection(end_op)

        # Primary death: flush stopped, retransmission stopped.  Only
        # what the network already carries still arrives.
        primary_end = self.db.system_log.end_of_stable_lsn
        self.db.crash()
        self.primary_dead = True
        for raw in self.transport.deliver():
            try:
                self.replica.receive(raw)
            except SimulatedCrash:
                self._replica_crash_recover()
        self._poll_detection(end_op)

        report = self._promote(primary_end)
        out.promoted = True
        out.certified = report.certified
        out.lost_commit_window = report.lost_commit_window
        self._score(end_op)
        if self.kind == "primary_wild_write_cold":
            out.single_node_latency = self._single_node_cold_latency()
        return out

    def _promote(self, primary_end: int):
        out = self.outcome
        for attempt in range(6):
            try:
                return self.replica.promote(primary_end_lsn=primary_end)
            except PromotionError:
                # The certifying sweep convicted regions (replica-side
                # corruption): repair from the replica's own checkpoint
                # and log, then certify again.
                out.promote_retries += 1
                if out.detection_op is None:
                    self._on_detect("promote_sweep", self.spec.ops_per_schedule)
                self.replica.repair()
            except SimulatedCrash:
                out.crashes += 1
                out.promote_retries += 1
                self.replica.crash()
                self.replica = Replica.reopen(
                    self.replica_config,
                    crashpoints=self.replica_registry,
                    audit_every=self.spec.audit_every_batches,
                )
        raise PromotionError("promotion did not converge within 6 attempts")

    # ------------------------------------------------------------ scoring

    def _score(self, end_op: int) -> None:
        out = self.outcome
        if self.kind in CORRUPTION_KINDS and out.detection_op is None:
            out.false_negative = True
        if self.kind in TRANSPORT_KINDS:
            # Tolerance = the protocol converged: nothing corrupt landed,
            # and no committed record was lost to the fault (retransmit,
            # dedup or reordering absorbed it before the primary died).
            out.tolerated = (
                out.error is None
                and not self.replica.db.pipeline.maintainer.quarantined
                and not out.lost_commit_window
            )
            if self.kind == "ship_tear" and not out.transport_errors:
                out.transport_errors = len(
                    self.replica.divergence.transport_errors
                )
                if out.transport_errors == 0:
                    # The tear was never observed: either the CRC layer
                    # failed silently (a false negative of the transport
                    # channel) or the fault never applied.
                    applied = any(
                        k == "tear" for k, _ in self.transport.faults_applied
                    )
                    out.false_negative = applied
        out.retransmits = self.shipper.retransmits
        out.transport_errors = len(self.replica.divergence.transport_errors)

        # Committed-value check on the promoted node.  Exact-last where
        # nothing was lost; member-of-history where a lost-commit window
        # or crash legitimately rolled back the tail.
        exact = (
            self.kind not in ("abrupt_death", "crash_promote")
            and not out.lost_commit_window
            and out.detection_stage not in ("primary_inline", "primary_certify")
        )
        db = self.replica.db
        table = db.table("acct")
        for acct, slot in self.slots.items():
            txn = db.begin()
            try:
                row = table.read(txn, slot)
            except ReproError:
                out.value_ok = False
                continue
            finally:
                try:
                    db.abort(txn)
                except ReproError:
                    pass
            if exact:
                if row["balance"] != self.committed[acct][-1]:
                    out.value_ok = False
            elif row["balance"] not in self.committed[acct]:
                out.value_ok = False

    def _single_node_cold_latency(self) -> int:
        """The comparison arm: same fault, no replica watching.

        Re-runs the schedule's workload on a single node with the same
        incremental-audit primary configuration and the same cold wild
        write.  The cold region is never in the dirty set, so routine
        audits and checkpoint certification stay blind; the fault
        surfaces only at the end-of-schedule full sweep -- the latency
        the replica's digest channel must strictly beat.
        """
        from repro import Database, DBConfig, Field, FieldType, Schema

        spec, out = self.spec, self.outcome
        rng = random.Random(f"single:{out.seed}:{out.index}")
        config = DBConfig(
            dir=os.path.join(self.work_dir, "single"),
            scheme=spec.scheme,
            scheme_params={"region_size": spec.region_size},
            quarantine=True,
            audit_mode="incremental",
            full_sweep_every=1000,
        )
        schema = Schema(
            [Field("id", FieldType.INT64), Field("balance", FieldType.INT64)]
        )
        db = Database(config)
        db.create_table(
            "acct", schema, capacity=max(64, spec.accounts * 4), key_field="id"
        )
        db.start()
        try:
            table = db.table("acct")
            txn = db.begin()
            slots = {
                i: table.insert(txn, {"id": i, "balance": 1000 + i})
                for i in range(spec.accounts)
            }
            db.commit(txn)
            db.checkpoint()
            injector = FaultInjector(db, seed=rng.randrange(2**31))
            detection_op: int | None = None
            for op in range(spec.ops_per_schedule):
                if op == out.fault_op:
                    cold_slot = spec.accounts + 3
                    injector.wild_write(
                        address=table.record_address(cold_slot), length=16
                    )
                if op % spec.checkpoint_every == spec.checkpoint_every - 1:
                    result = db.checkpoint()
                    if not result.certified:
                        detection_op = op
                        break
                else:
                    acct = rng.randrange(spec.accounts)
                    txn = db.begin()
                    table.update(
                        txn, slots[acct], {"balance": rng.randrange(1, 10**6)}
                    )
                    db.commit(txn)
            if detection_op is None:
                # End-of-schedule full sweep: the single node's first
                # honest look at the whole image.
                report = db.auditor.run()
                detection_op = spec.ops_per_schedule
                if report.clean:  # pragma: no cover - fault is in-image
                    detection_op = spec.ops_per_schedule + 1
            return detection_op - out.fault_op
        finally:
            try:
                db.close()
            except Exception:
                pass


def run_replication_campaign(
    spec: ReplicationCampaignSpec, base_dir: str
) -> ReplicationCampaignResult:
    """Convenience wrapper: build a runner and run the whole campaign."""
    os.makedirs(base_dir, exist_ok=True)
    return ReplicationCampaignRunner(spec, base_dir).run()
