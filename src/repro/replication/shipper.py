"""The log shipper: streaming stable-log frames to a hot standby.

The shipper runs on the primary and owns the replication session state:
which LSN ships next, which batches are in flight, and which digest
epochs are waiting their turn.  Its contract with the transport is
deliberately weak -- batches may be dropped, duplicated, reordered or
torn -- and the protocol recovers from all four:

* every batch carries a sequence number and a CRC (transport layer) and
  RECORDS payloads keep their per-frame CRCs (end-to-end layer);
* the in-flight window is bounded: at most ``window`` unacknowledged
  batches, which also bounds the lost-commit window at failover to
  ``window * batch_records`` records;
* acks are cumulative (the replica's ``expected_seq``); an unacked batch
  is retransmitted after ``timeout_pumps`` pump cycles, with capped
  exponential backoff so a torn channel is not flooded;
* the replica drops duplicates by sequence number and by LSN, so
  retransmit-after-partial-delivery converges instead of double-applying.

Digest epochs are sequenced, not raced: a digest published at ``CK_end``
is sent only once every frame below ``CK_end`` has been handed to the
transport, and frame export never reads past the earliest pending epoch.
The replica therefore evaluates each epoch at exactly the state the
primary certified.

The pump is a program point, not a thread: the campaign and the serving
integration call :meth:`LogShipper.pump` at commit/checkpoint ticks, in
keeping with the deterministic scheduler
(:mod:`repro.runtime.scheduler`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ReplicationError
from repro.replication.transport import (
    KIND_DIGEST,
    KIND_RECORDS,
    ShipBatch,
    ShipTransport,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.replication.replica import Replica
    from repro.storage.database import Database


@dataclass
class _InFlight:
    batch: ShipBatch
    deadline: int  # pump count at which an unacked batch retransmits
    attempts: int = 0


class LogShipper:
    """Ships one primary's stable log to one replica over one transport."""

    def __init__(
        self,
        db: "Database",
        transport: ShipTransport,
        replica: "Replica",
        *,
        window: int = 4,
        batch_records: int = 16,
        timeout_pumps: int = 2,
        backoff_cap: int = 8,
    ) -> None:
        self.db = db
        self.transport = transport
        self.replica = replica
        self.window = max(1, window)
        self.batch_records = max(1, batch_records)
        self.timeout_pumps = max(1, timeout_pumps)
        self.backoff_cap = max(self.timeout_pumps, backoff_cap)
        self._next_seq = replica.expected_seq
        self._next_lsn = replica.next_lsn
        self._in_flight: dict[int, _InFlight] = {}
        #: Published digest epochs waiting to be sequenced into the
        #: stream: ``(ck_end, payload, region_count)`` in epoch order.
        self._digests: deque[tuple[int, bytes, int]] = deque()
        self.pumps = 0
        self.batches_shipped = 0
        self.records_shipped = 0
        self.digests_shipped = 0
        self.retransmits = 0
        # Certified checkpoints publish their epoch digests through the
        # auditor; the shipper sequences them into the ship stream.
        db.auditor.digest_listeners.append(self._on_digest_epoch)

    # ------------------------------------------------------------- intake

    def _on_digest_epoch(self, ck_end: int, digests) -> None:
        payload = np.asarray(digests, dtype="<u4").tobytes()
        self._digests.append((ck_end, payload, len(digests)))

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    @property
    def lost_window_bound(self) -> int:
        """Worst-case records lost if the primary dies right now: the
        whole unacked window."""
        return self.window * self.batch_records

    # --------------------------------------------------------------- pump

    def pump(self) -> int:
        """One replication cycle; returns the replica's cumulative ack.

        Deliver whatever the network is carrying, absorb the ack,
        retransmit what timed out (with capped exponential backoff), then
        refill the in-flight window from the stable log and the pending
        digest queue.
        """
        self.pumps += 1
        replica = self.replica
        for raw in self.transport.deliver():
            replica.receive(raw)
        acked = replica.acked_seq
        for seq in [s for s in self._in_flight if s < acked]:
            del self._in_flight[seq]
        for seq in sorted(self._in_flight):
            entry = self._in_flight[seq]
            if self.pumps >= entry.deadline:
                entry.attempts += 1
                backoff = min(
                    self.backoff_cap, self.timeout_pumps << entry.attempts
                )
                entry.deadline = self.pumps + backoff
                self.transport.send(entry.batch)
                self.retransmits += 1
        while len(self._in_flight) < self.window:
            batch = self._next_batch()
            if batch is None:
                break
            self._in_flight[batch.seq] = _InFlight(
                batch, self.pumps + self.timeout_pumps
            )
            self.transport.send(batch)
            self.batches_shipped += 1
            if batch.kind == KIND_RECORDS:
                self.records_shipped += batch.record_count
            else:
                self.digests_shipped += 1
        return replica.acked_seq

    def _next_batch(self) -> ShipBatch | None:
        """The next batch in stream order: frames first, then the epoch.

        A pending digest for ``CK_end`` acts as a barrier: frame export
        never reads at or past it, and the digest itself goes out only
        when every frame below it has shipped -- so the digest arrives
        when the replica's ``next_lsn`` is exactly ``CK_end``.
        """
        if self._digests:
            ck_end, payload, count = self._digests[0]
            if self._next_lsn >= ck_end:
                self._digests.popleft()
                seq = self._next_seq
                self._next_seq += 1
                return ShipBatch(seq, KIND_DIGEST, ck_end, count, payload)
            barrier: int | None = ck_end
        else:
            barrier = None
        payload, first_lsn, count = self.db.system_log.export_frames(
            self._next_lsn, max_records=self.batch_records, up_to_lsn=barrier
        )
        if count == 0:
            return None
        if first_lsn != self._next_lsn:
            raise ReplicationError(
                f"ship gap: next frame to ship is LSN {self._next_lsn} but "
                f"the stable log starts at {first_lsn} (truncated past the "
                "replication horizon?)"
            )
        self._next_lsn = first_lsn + count  # LSNs are dense
        seq = self._next_seq
        self._next_seq += 1
        return ShipBatch(seq, KIND_RECORDS, first_lsn, count, payload)

    # -------------------------------------------------------- maintenance

    def drain(self, max_pumps: int = 1000) -> bool:
        """Pump until the replica has acked everything stable; True on
        success, False if the budget ran out (a dead transport)."""
        for _ in range(max_pumps):
            if self.caught_up:
                return True
            self.pump()
        return self.caught_up

    @property
    def caught_up(self) -> bool:
        return (
            not self._in_flight
            and not self._digests
            and self.transport.in_network == 0
            and self._next_lsn >= self.db.system_log.end_of_stable_lsn
        )

    def resync(self, replica: "Replica | None" = None) -> None:
        """Restart the ship session against a (re)opened replica.

        Everything unacked is forgotten -- the replica's durable state is
        the truth, so shipping resumes at its ``next_lsn`` and sequence
        numbers restart at its ``expected_seq``.  Pending digest epochs
        the replica has already replayed past are dropped: their
        comparison point is gone (the epoch holds only at exactly
        ``next_lsn == CK_end``).
        """
        if replica is not None:
            self.replica = replica
        self._in_flight.clear()
        self._next_seq = self.replica.expected_seq
        self._next_lsn = self.replica.next_lsn
        while self._digests and self._digests[0][0] < self._next_lsn:
            self._digests.popleft()
        # Anything still riding the old session's network is garbage to
        # the new session (stale seqs); flush it.
        self.transport.deliver()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogShipper(next_lsn={self._next_lsn}, seq={self._next_seq}, "
            f"in_flight={len(self._in_flight)}, pumps={self.pumps}, "
            f"retransmits={self.retransmits})"
        )
