"""The ship transport: an in-memory network with armable faults.

Log shipping crosses a boundary the storage manager does not control, so
the transport is modelled the way the fault campaign needs it: batches
are sequence-numbered, CRC-framed blobs, and the channel itself can be
armed to drop, duplicate, reorder or tear the next batch it carries.
The shipper/replica protocol (bounded in-flight window, cumulative acks,
retransmit on timeout, LSN idempotence) must survive all four -- that is
what the replication campaign scores.

A :class:`ShipBatch` is self-verifying: the CRC covers header and
payload, so a torn or bit-flipped batch fails :meth:`ShipBatch.decode`
at the receiver and is discarded (the shipper's timeout retransmits it).
RECORDS payloads are verbatim stable-log frames
(:meth:`~repro.wal.system_log.SystemLog.export_frames`), each carrying
its *own* frame CRC as a second, end-to-end layer.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import ConfigError, ReplicationError

#: Batch kinds.
KIND_RECORDS = 0  #: payload = raw stable-log frames [first_lsn, first_lsn+count)
KIND_DIGEST = 1  #: payload = u32-LE per-region digests for epoch ``first_lsn``

_HEADER = struct.Struct("<QBQII")  # seq, kind, first_lsn, count, payload_len
_CRC = struct.Struct("<I")

#: Faults the transport can be armed with (one-shot, applied to the next
#: :meth:`ShipTransport.send`).
FAULT_KINDS = ("drop", "duplicate", "reorder", "tear")


@dataclass(frozen=True)
class ShipBatch:
    """One unit of shipping: sequence-numbered, kind-tagged, CRC-framed."""

    seq: int
    kind: int
    #: RECORDS: LSN of the first frame in the payload.
    #: DIGEST: the epoch's ``CK_end``.
    first_lsn: int
    #: RECORDS: number of frames.  DIGEST: number of regions.
    record_count: int
    payload: bytes

    def encode(self) -> bytes:
        head = _HEADER.pack(
            self.seq, self.kind, self.first_lsn, self.record_count, len(self.payload)
        )
        crc = zlib.crc32(self.payload, zlib.crc32(head))
        return head + self.payload + _CRC.pack(crc)

    @staticmethod
    def decode(data: bytes) -> "ShipBatch":
        """Decode and verify one batch; raises on any damage.

        A failure here is *transport* corruption by definition: the
        sender computed the CRC over exactly what it meant to send.
        """
        if len(data) < _HEADER.size + _CRC.size:
            raise ReplicationError(
                f"ship batch truncated: {len(data)} bytes is below the "
                f"{_HEADER.size + _CRC.size}-byte minimum"
            )
        seq, kind, first_lsn, count, payload_len = _HEADER.unpack_from(data, 0)
        end = _HEADER.size + payload_len
        if len(data) != end + _CRC.size:
            raise ReplicationError(
                f"ship batch length mismatch: header declares {payload_len} "
                f"payload bytes, got {len(data) - _HEADER.size - _CRC.size}"
            )
        payload = data[_HEADER.size : end]
        (crc,) = _CRC.unpack_from(data, end)
        if crc != zlib.crc32(payload, zlib.crc32(data[: _HEADER.size])):
            raise ReplicationError(f"ship batch {seq} failed its CRC check")
        if kind not in (KIND_RECORDS, KIND_DIGEST):
            raise ReplicationError(f"unknown ship batch kind {kind}")
        return ShipBatch(seq, kind, first_lsn, count, payload)


class ShipTransport:
    """A one-way channel from shipper to replica, with armable faults.

    Delivery is pull-based: the shipper's pump calls :meth:`deliver` to
    hand everything currently "in the network" to the receiver.  Faults
    are one-shot and apply to the next :meth:`send`:

    * ``drop`` -- the batch vanishes (the retransmit timer recovers it);
    * ``duplicate`` -- the batch arrives twice (seq dedup absorbs it);
    * ``reorder`` -- the batch is held back and released *after* the next
      batch sent (the receiver's reorder buffer restores order; if no
      later batch comes, the hold degrades to a delay);
    * ``tear`` -- a truncated prefix arrives (the CRC frame rejects it,
      the retransmit timer recovers it).
    """

    def __init__(self) -> None:
        self._queue: list[bytes] = []
        self._plan: list[str] = []
        self._held: bytes | None = None
        self.sent = 0
        self.delivered = 0
        #: ``(fault_kind, seq)`` of every fault actually applied.
        self.faults_applied: list[tuple[str, int]] = []

    def arm_fault(self, kind: str) -> None:
        """Queue a one-shot fault for an upcoming :meth:`send`."""
        if kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown transport fault {kind!r}; known: {FAULT_KINDS}"
            )
        self._plan.append(kind)

    def send(self, batch: ShipBatch) -> None:
        data = batch.encode()
        self.sent += 1
        fault = self._plan.pop(0) if self._plan else None
        if self._held is not None:
            # Release the held batch *after* this one: the reorder.
            held, self._held = self._held, None
            self._apply_send(data, fault, batch.seq)
            self._queue.append(held)
            return
        self._apply_send(data, fault, batch.seq)

    def _apply_send(self, data: bytes, fault: str | None, seq: int) -> None:
        if fault is not None:
            self.faults_applied.append((fault, seq))
        if fault == "drop":
            return
        if fault == "duplicate":
            self._queue.append(data)
            self._queue.append(data)
            return
        if fault == "tear":
            self._queue.append(data[: max(1, len(data) // 2)])
            return
        if fault == "reorder":
            self._held = data
            return
        self._queue.append(data)

    def deliver(self) -> list[bytes]:
        """Drain everything currently deliverable, in network order.

        A batch still held for reordering stays held only while a later
        send can overtake it mid-pump; at delivery time it goes out too
        (the fault degrades to a delay of one pump).
        """
        out = self._queue
        self._queue = []
        if self._held is not None:
            out.append(self._held)
            self._held = None
        self.delivered += len(out)
        return out

    @property
    def in_network(self) -> int:
        return len(self._queue) + (1 if self._held is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShipTransport(sent={self.sent}, delivered={self.delivered}, "
            f"queued={self.in_network}, faults={self.faults_applied})"
        )
