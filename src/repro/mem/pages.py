"""Page geometry helpers and the dirty page table.

Dali is "only page-based to the extent that it is convenient for tracking
storage use" (Section 2): pages matter for dirty tracking, checkpoint
propagation and hardware protection granularity, not for record layout.
"""

from __future__ import annotations

from typing import Iterable

PAGE_SIZE_DEFAULT = 8192


def page_range(address: int, length: int, page_size: int) -> range:
    """Page ids covered by ``[address, address + length)``.

    A zero-length access still touches the page containing ``address`` --
    callers use this for protection checks where intent matters.
    """
    if length <= 0:
        first = address // page_size
        return range(first, first + 1)
    first = address // page_size
    last = (address + length - 1) // page_size
    return range(first, last + 1)


def page_span(address: int, length: int, page_size: int) -> int:
    """Number of pages covered by ``[address, address + length)``."""
    return len(page_range(address, length, page_size))


class DirtyPageTable:
    """Tracks pages dirtied since each checkpoint image was last written.

    Dali keeps two checkpoint images (``Ckpt_A``/``Ckpt_B``, Section 2.1)
    written alternately (ping-pong checkpointing), so a page must stay
    "dirty with respect to image X" until it has been propagated to X --
    even if it was already propagated to the other image.  The table
    therefore keeps one pending set per image, both of which receive every
    newly dirtied page.
    """

    IMAGES = ("A", "B")

    def __init__(self) -> None:
        self._pending: dict[str, set[int]] = {img: set() for img in self.IMAGES}

    def note_dirty(self, page_id: int) -> None:
        for pending in self._pending.values():
            pending.add(page_id)

    def note_dirty_range(self, address: int, length: int, page_size: int) -> None:
        for page_id in page_range(address, length, page_size):
            self.note_dirty(page_id)

    def pending_for(self, image: str) -> frozenset[int]:
        """Pages that must be written to checkpoint ``image``."""
        return frozenset(self._pending[image])

    def clear_for(self, image: str, pages: Iterable[int]) -> None:
        """Mark ``pages`` as propagated to checkpoint ``image``."""
        self._pending[image].difference_update(pages)

    def mark_all_dirty(self, page_ids: Iterable[int]) -> None:
        """Force pages dirty for both images (used after recovery)."""
        ids = list(page_ids)
        for pending in self._pending.values():
            pending.update(ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {img: len(p) for img, p in self._pending.items()}
        return f"DirtyPageTable(pending={sizes})"
