"""Simulated MMU: page protection bits and ``mprotect`` cost accounting.

The paper's Hardware Protection scheme (Section 3, after [21]) keeps
database pages write-protected, unprotecting them between ``beginUpdate``
and ``endUpdate``.  We do not have the paper's SPARC/HP/SGI hardware, so
the MMU is simulated:

* semantics are exact -- a write to a protected page raises
  :class:`~repro.errors.ProtectionFault` and the write is not performed,
  which is precisely how hardware protection *prevents* direct physical
  corruption;
* cost is modelled -- each ``mprotect`` call charges a per-syscall fixed
  cost plus a per-page PTE cost to the virtual clock, with per-platform
  constants calibrated from Table 1 of the paper
  (see :mod:`repro.bench.platforms`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, ProtectionFault
from repro.mem.memory import MemoryImage
from repro.mem.pages import page_range
from repro.sim.clock import Meter

PROT_READ = "r"
PROT_READWRITE = "rw"


@dataclass(frozen=True)
class MprotectCosts:
    """Per-platform cost of one ``mprotect`` system call.

    ``syscall_fixed_ns`` covers trap entry/exit and kernel bookkeeping;
    ``per_page_ns`` covers the PTE update and TLB shootdown per page in the
    protected range.
    """

    syscall_fixed_ns: int
    per_page_ns: int

    def call_ns(self, pages: int) -> int:
        return self.syscall_fixed_ns + pages * self.per_page_ns


class SimulatedMMU:
    """Per-page protection bits over a :class:`MemoryImage`.

    The MMU starts *disabled*: protection checks are a no-op until
    :meth:`enable` is called (the Hardware Protection scheme enables it;
    codeword schemes never do, which is exactly why wild writes succeed
    silently under them).
    """

    def __init__(self, memory: MemoryImage, costs: MprotectCosts, meter: Meter) -> None:
        self.memory = memory
        self.costs = costs
        self.meter = meter
        self.enforcing = False
        self._protected: set[int] = set()
        self.call_count = 0
        self.trap_count = 0
        memory.mmu = self

    # ------------------------------------------------------------ policy

    def enable(self) -> None:
        self.enforcing = True

    def disable(self) -> None:
        self.enforcing = False

    # ----------------------------------------------------------- syscall

    def mprotect(self, address: int, length: int, prot: str) -> None:
        """Change protection of the pages covering ``[address, address+length)``.

        Charges the platform syscall cost to the virtual clock whether or
        not the protection bits actually change, as the real call would.
        """
        if prot not in (PROT_READ, PROT_READWRITE):
            raise ConfigError(f"unknown protection {prot!r}")
        pages = page_range(address, length, self.memory.page_size)
        self.meter.charge_ns("mprotect_call", self.costs.call_ns(len(pages)))
        self.call_count += 1
        if prot == PROT_READ:
            self._protected.update(pages)
        else:
            self._protected.difference_update(pages)

    def protect_pages(self, page_ids: range | list[int], prot: str) -> None:
        """Protect/unprotect explicit pages (one syscall per contiguous run)."""
        ids = sorted(set(page_ids))
        run_start = None
        prev = None
        page_size = self.memory.page_size
        for page_id in ids + [None]:  # sentinel flushes the last run
            if run_start is None:
                run_start = page_id
            elif page_id is None or page_id != prev + 1:
                length = (prev - run_start + 1) * page_size
                self.mprotect(run_start * page_size, length, prot)
                run_start = page_id
            prev = page_id

    # ------------------------------------------------------------ checks

    def is_protected(self, page_id: int) -> bool:
        return page_id in self._protected

    def check_write(self, address: int, length: int) -> None:
        """Trap if any page covering the write is protected."""
        if not self.enforcing:
            return
        for page_id in page_range(address, length, self.memory.page_size):
            if page_id in self._protected:
                self.trap_count += 1
                raise ProtectionFault(address, length, page_id)

    @property
    def protected_page_count(self) -> int:
        return len(self._protected)
