"""Main-memory database image: segments, pages, allocation, simulated MMU."""

from repro.mem.memory import MemoryImage, Segment
from repro.mem.pages import PAGE_SIZE_DEFAULT, DirtyPageTable, page_range, page_span
from repro.mem.mprotect import MprotectCosts, SimulatedMMU, PROT_READ, PROT_READWRITE
from repro.mem.allocator import SlotAllocator

__all__ = [
    "MemoryImage",
    "Segment",
    "PAGE_SIZE_DEFAULT",
    "DirtyPageTable",
    "page_range",
    "page_span",
    "SimulatedMMU",
    "MprotectCosts",
    "PROT_READ",
    "PROT_READWRITE",
    "SlotAllocator",
]
