"""Slot allocator with off-page control information.

Dali does not store allocation information on the same page as tuple data
(Section 2).  The allocator therefore keeps its header and bitmap in a
*control* segment while the slots themselves live in a *data* segment.
This separation is load-bearing for the performance study: every insert
dirties control pages far from the tuple page, which is why an operation
touches ~11 pages and why page-granular hardware protection is expensive
(Section 5.3).

All allocator state changes go through a :class:`MemoryAccessor` -- in
production that is a transaction's prescribed ``read``/``update``
interface, so allocation updates are logged, recoverable and
codeword-maintained exactly like tuple updates.
"""

from __future__ import annotations

import struct
from typing import Protocol

from repro.errors import ConfigError, OutOfSpaceError

_HEADER = struct.Struct("<IIII")  # next_free_hint, allocated, slot_count, slot_size


class MemoryAccessor(Protocol):
    """The prescribed data access interface the allocator runs on."""

    def read(self, address: int, length: int) -> bytes: ...

    def update(self, address: int, new_bytes: bytes) -> None: ...


class SlotAllocator:
    """Fixed-size slot allocation over a contiguous data area.

    The header keeps a ``next_free_hint`` so the common allocation path
    reads one header and one bitmap byte; a wrap-around scan handles the
    case where the hint is stale (e.g. after frees or recovery).
    """

    HEADER_SIZE = _HEADER.size

    def __init__(
        self,
        control_base: int,
        data_base: int,
        slot_count: int,
        slot_size: int,
    ) -> None:
        if slot_count <= 0 or slot_size <= 0:
            raise ConfigError(
                f"slot_count and slot_size must be positive: {slot_count}, {slot_size}"
            )
        self.control_base = control_base
        self.data_base = data_base
        self.slot_count = slot_count
        self.slot_size = slot_size
        self.bitmap_base = control_base + self.HEADER_SIZE
        self.bitmap_bytes = (slot_count + 7) // 8

    @property
    def control_size(self) -> int:
        """Bytes of control-segment space this allocator occupies."""
        return self.HEADER_SIZE + self.bitmap_bytes

    @property
    def data_size(self) -> int:
        return self.slot_count * self.slot_size

    # ----------------------------------------------------------- format

    def format(self, ctx: MemoryAccessor) -> None:
        """Initialize the header (bitmap is born all-zero)."""
        header = _HEADER.pack(0, 0, self.slot_count, self.slot_size)
        ctx.update(self.control_base, header)

    # ------------------------------------------------------- operations

    def allocate(self, ctx: MemoryAccessor) -> int:
        """Allocate a free slot and return its id."""
        hint, allocated, _count, _size = _HEADER.unpack(
            ctx.read(self.control_base, self.HEADER_SIZE)
        )
        if allocated >= self.slot_count:
            raise OutOfSpaceError(
                f"allocator at {self.control_base:#x} is full "
                f"({self.slot_count} slots)"
            )
        slot = self._find_free(ctx, hint)
        self._set_bit(ctx, slot, True)
        next_hint = (slot + 1) % self.slot_count
        ctx.update(
            self.control_base,
            _HEADER.pack(next_hint, allocated + 1, self.slot_count, self.slot_size),
        )
        return slot

    def allocate_at(self, ctx: MemoryAccessor, slot: int) -> None:
        """Allocate a specific slot (logical undo of a delete re-inserts here)."""
        self._check_slot(slot)
        if self.is_allocated(ctx, slot):
            raise ConfigError(f"slot {slot} is already allocated")
        hint, allocated, _count, _size = _HEADER.unpack(
            ctx.read(self.control_base, self.HEADER_SIZE)
        )
        self._set_bit(ctx, slot, True)
        ctx.update(
            self.control_base,
            _HEADER.pack(hint, allocated + 1, self.slot_count, self.slot_size),
        )

    def free(self, ctx: MemoryAccessor, slot: int) -> None:
        self._check_slot(slot)
        if not self.is_allocated(ctx, slot):
            raise ConfigError(f"slot {slot} is not allocated")
        self._set_bit(ctx, slot, False)
        hint, allocated, _count, _size = _HEADER.unpack(
            ctx.read(self.control_base, self.HEADER_SIZE)
        )
        new_hint = min(hint, slot)
        ctx.update(
            self.control_base,
            _HEADER.pack(new_hint, allocated - 1, self.slot_count, self.slot_size),
        )

    def is_allocated(self, ctx: MemoryAccessor, slot: int) -> bool:
        self._check_slot(slot)
        byte = ctx.read(self.bitmap_base + slot // 8, 1)[0]
        return bool(byte & (1 << (slot % 8)))

    def allocated_count(self, ctx: MemoryAccessor) -> int:
        _hint, allocated, _count, _size = _HEADER.unpack(
            ctx.read(self.control_base, self.HEADER_SIZE)
        )
        return allocated

    def slot_address(self, slot: int) -> int:
        self._check_slot(slot)
        return self.data_base + slot * self.slot_size

    def slot_for_address(self, address: int) -> int:
        if not self.data_base <= address < self.data_base + self.data_size:
            raise ConfigError(f"address {address:#x} is outside this allocator's data")
        return (address - self.data_base) // self.slot_size

    def iter_allocated(self, ctx: MemoryAccessor):
        """Yield allocated slot ids (used by recovery-time index rebuild)."""
        for base in range(0, self.bitmap_bytes, 512):
            chunk = ctx.read(self.bitmap_base + base, min(512, self.bitmap_bytes - base))
            for i, byte in enumerate(chunk):
                if not byte:
                    continue
                for bit in range(8):
                    slot = (base + i) * 8 + bit
                    if slot < self.slot_count and byte & (1 << bit):
                        yield slot

    # --------------------------------------------------------- internals

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.slot_count:
            raise ConfigError(f"slot {slot} out of range [0, {self.slot_count})")

    def _find_free(self, ctx: MemoryAccessor, hint: int) -> int:
        """Scan the bitmap starting at ``hint``, wrapping once."""
        for probe in range(self.slot_count):
            slot = (hint + probe) % self.slot_count
            byte = ctx.read(self.bitmap_base + slot // 8, 1)[0]
            if not byte & (1 << (slot % 8)):
                return slot
            # Skip the rest of a fully-set byte to bound scan cost.
            if byte == 0xFF and slot % 8 == 0 and probe + 8 <= self.slot_count:
                continue
        raise OutOfSpaceError("no free slot found despite header count")

    def _set_bit(self, ctx: MemoryAccessor, slot: int, value: bool) -> None:
        address = self.bitmap_base + slot // 8
        byte = ctx.read(address, 1)[0]
        mask = 1 << (slot % 8)
        byte = (byte | mask) if value else (byte & ~mask)
        ctx.update(address, bytes([byte]))
