"""The flat in-memory database image.

The image is a set of named :class:`Segment` objects laid out in one flat
address space.  Following Dali's layout (Section 2), *control* information
(allocation bitmaps, table headers) lives in segments separate from tuple
data -- this is what makes a TPC-B operation touch many more pages than
tuples and is load-bearing for the hardware-protection results.

Three write paths exist, mirroring the paper's threat model:

* :meth:`MemoryImage.write` -- the prescribed path used by the storage
  manager.  Subject to the simulated MMU (a protected page traps) and
  noted in the dirty page table.
* :meth:`MemoryImage.poke` -- an *addressing error*: a wild write that
  bypasses logging and dirty tracking entirely.  It still traps on a
  hardware-protected page, because the MMU does not care about intent.
* checkpoint restore -- bulk replacement of segment contents during
  recovery, below the MMU.

Segment storage is pluggable: the default keeps each segment in a
``bytearray`` (heap backing), while ``backing="mmap"`` maps each segment
onto a sparse file so images larger than RAM stay usable.  An ``mmap``
object satisfies the same buffer protocol a ``bytearray`` does -- slice
assignment, ``memoryview``, ``np.frombuffer`` -- so every consumer
(audit kernel, fault injector, checkpointer) works unchanged on either
backing.  The backing file models *swap*, not durable storage: it is
recreated zeroed whenever the image is rebuilt, and recovery still loads
state from the checkpoint, never from the backing file.
"""

from __future__ import annotations

import mmap
import os
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, BinaryIO, Iterator

from repro.errors import ConfigError, MemoryError_
from repro.mem.pages import DirtyPageTable, PAGE_SIZE_DEFAULT

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.mprotect import SimulatedMMU

MEMORY_BACKINGS = ("heap", "mmap")


@dataclass
class Segment:
    """A contiguous named slice of the database address space."""

    name: str
    base: int
    size: int
    kind: str  # "data" or "control"
    data: "bytearray | mmap.mmap" = field(repr=False, default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + max(length, 1) <= self.end


class MemoryImage:
    """Flat address space composed of page-aligned segments."""

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        backing: str = "heap",
        backing_dir: str | None = None,
    ) -> None:
        if page_size <= 0 or page_size % 8 != 0:
            raise ConfigError(f"page size must be a positive multiple of 8: {page_size}")
        if backing not in MEMORY_BACKINGS:
            raise ConfigError(
                f"memory backing must be one of {MEMORY_BACKINGS}: {backing!r}"
            )
        if backing == "mmap" and not backing_dir:
            raise ConfigError("mmap backing needs a backing_dir for segment files")
        self.page_size = page_size
        self.backing = backing
        self.backing_dir = backing_dir
        self.dirty_pages = DirtyPageTable()
        self.mmu: "SimulatedMMU | None" = None
        self._segments: list[Segment] = []
        self._by_name: dict[str, Segment] = {}
        # Segment bases, sorted ascending (segments are allocated
        # contiguously), so address -> segment is a bisect, not a scan.
        self._bases: list[int] = []
        self._next_base = 0
        # Open backing files, by segment name (mmap backing only).  Kept
        # open so the checkpointer can copy_file_range straight from the
        # backing file into a checkpoint image without staging the bytes
        # through Python.
        self._backing_files: dict[str, BinaryIO] = {}

    # ------------------------------------------------------------ layout

    def add_segment(self, name: str, size: int, kind: str = "data") -> Segment:
        """Create a new page-aligned segment at the end of the space."""
        if name in self._by_name:
            raise ConfigError(f"segment {name!r} already exists")
        if kind not in ("data", "control"):
            raise ConfigError(f"segment kind must be 'data' or 'control': {kind!r}")
        if size <= 0:
            raise ConfigError(f"segment size must be positive: {size}")
        # Round up to whole pages so a segment never shares a page with
        # another segment (page-granular protection stays per-segment).
        size = -(-size // self.page_size) * self.page_size
        data: bytearray | mmap.mmap = bytearray()
        if self.backing == "mmap":
            data = self._map_segment_file(name, size)
        segment = Segment(name=name, base=self._next_base, size=size, kind=kind, data=data)
        self._segments.append(segment)
        self._by_name[name] = segment
        self._bases.append(segment.base)
        self._next_base += size
        return segment

    def _map_segment_file(self, name: str, size: int) -> mmap.mmap:
        """Create a zeroed sparse backing file for a segment and map it.

        An existing file (a previous incarnation of this database) is
        unlinked rather than truncated in place: truncation would yank the
        pages out from under any still-live mapping of the old image and
        turn later accesses into SIGBUS.  Unlinking leaves the old inode
        alive for old mappings while this image gets a fresh, fully sparse
        file -- exactly the semantics of volatile memory that did not
        survive the crash.
        """
        assert self.backing_dir is not None
        os.makedirs(self.backing_dir, exist_ok=True)
        path = os.path.join(self.backing_dir, f"{name}.seg")
        if os.path.exists(path):
            os.unlink(path)
        handle = open(path, "w+b")
        handle.truncate(size)
        self._backing_files[name] = handle
        return mmap.mmap(handle.fileno(), size)

    def backing_range(self, address: int, length: int) -> tuple[BinaryIO, int] | None:
        """``(backing_file, file_offset)`` for an in-segment range.

        Returns ``None`` on heap backing or when the range straddles a
        segment boundary; the caller (checkpoint page propagation) then
        falls back to copying the bytes through Python.
        """
        if self.backing != "mmap":
            return None
        segment = self._segment_at(address)
        if address + length > segment.end:
            return None
        return self._backing_files[segment.name], address - segment.base

    def flush_backing(self) -> None:
        """msync every mapped segment to its backing file (test helper;
        on Linux the unified page cache makes file reads coherent with
        mmap stores even without this)."""
        for segment in self._segments:
            if isinstance(segment.data, mmap.mmap):
                segment.data.flush()

    def segment(self, name: str) -> Segment:
        try:
            return self._by_name[name]
        except KeyError:
            raise MemoryError_(f"no segment named {name!r}") from None

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments)

    @property
    def size(self) -> int:
        return self._next_base

    @property
    def page_count(self) -> int:
        return self._next_base // self.page_size

    def _segment_at(self, address: int) -> Segment:
        """Segment containing ``address`` (bisect; segments are sorted)."""
        if address < 0 or address >= self._next_base:
            raise MemoryError_(f"address {address:#x} is not mapped")
        return self._segments[bisect_right(self._bases, address) - 1]

    def segment_for(self, address: int, length: int = 1) -> Segment:
        """Locate the segment containing ``[address, address + length)``."""
        segment = self._segment_at(address)
        if address + max(length, 1) > segment.end:
            raise MemoryError_(
                f"access of {length} bytes at {address:#x} crosses the "
                f"end of segment {segment.name!r}"
            )
        return segment

    def _spans(self, address: int, length: int):
        """Yield ``(segment, seg_offset, chunk_len)`` covering a flat range.

        Segments are laid out contiguously, so a range may legitimately
        cross segment boundaries (e.g. a large protection region folding
        several small segments at once).
        """
        if length < 0:
            raise MemoryError_(f"negative access length: {length}")
        if address < 0 or address + length > self._next_base:
            raise MemoryError_(
                f"access of {length} bytes at {address:#x} is outside the "
                f"{self._next_base}-byte address space"
            )
        remaining = length
        position = address
        while remaining > 0:
            segment = self._segment_at(position)
            offset = position - segment.base
            chunk = min(remaining, segment.size - offset)
            yield segment, offset, chunk
            position += chunk
            remaining -= chunk

    # ------------------------------------------------------------ access

    def read(self, address: int, length: int) -> bytes:
        """Raw read; protection-scheme hooks live above this layer."""
        if length == 0:
            # Validate the address even for empty reads.
            self._segment_at(address)
            return b""
        if length > 0 and address >= 0 and address + length <= self._next_base:
            # Fast path: the whole range lies within one segment (the
            # overwhelmingly common case -- reads rarely straddle).
            segment = self._segments[bisect_right(self._bases, address) - 1]
            if address + length <= segment.end:
                offset = address - segment.base
                return bytes(segment.data[offset : offset + length])
        chunks = [
            bytes(seg.data[off : off + n]) for seg, off, n in self._spans(address, length)
        ]
        return chunks[0] if len(chunks) == 1 else b"".join(chunks)

    def view(self, address: int, length: int) -> memoryview | None:
        """Zero-copy ``memoryview`` of a flat range within one segment.

        Returns ``None`` when the range straddles a segment boundary (the
        caller falls back to a copying :meth:`read`); raises
        :class:`MemoryError_` when the range is not mapped at all.  Used by
        the vectorized audit kernel and read prechecking so folding a
        region does not copy its bytes.
        """
        if length < 0:
            raise MemoryError_(f"negative access length: {length}")
        segment = self._segment_at(address)
        if address + length > self._next_base:
            raise MemoryError_(
                f"access of {length} bytes at {address:#x} is outside the "
                f"{self._next_base}-byte address space"
            )
        if address + length > segment.end:
            return None
        offset = address - segment.base
        return memoryview(segment.data)[offset : offset + length]

    def write(self, address: int, data: bytes) -> None:
        """Prescribed-path write: MMU-checked and dirty-tracked."""
        if self.mmu is not None:
            self.mmu.check_write(address, len(data))
        self._store(address, data)
        self.dirty_pages.note_dirty_range(address, len(data), self.page_size)

    def poke(self, address: int, data: bytes) -> None:
        """A wild write: bypasses dirty tracking but not the MMU.

        This is the fault-injection entry point -- an addressing error does
        not announce the pages it touched, but it cannot write through a
        hardware-protected page either.
        """
        if self.mmu is not None:
            self.mmu.check_write(address, len(data))
        self._store(address, data)

    def restore(self, address: int, data: bytes) -> None:
        """Recovery-path write: below the MMU, still dirty-tracked.

        Used when loading checkpoint images and applying redo at restart.
        """
        self._store(address, data)
        self.dirty_pages.note_dirty_range(address, len(data), self.page_size)

    def _store(self, address: int, data: bytes) -> None:
        length = len(data)
        if length > 0 and address >= 0 and address + length <= self._next_base:
            # Fast path: single-segment store without the span generator.
            segment = self._segments[bisect_right(self._bases, address) - 1]
            if address + length <= segment.end:
                offset = address - segment.base
                segment.data[offset : offset + length] = data
                return
        consumed = 0
        for segment, offset, chunk in self._spans(address, length):
            segment.data[offset : offset + chunk] = data[consumed : consumed + chunk]
            consumed += chunk

    # -------------------------------------------------------- page views

    def page_bytes(self, page_id: int) -> bytes:
        address = page_id * self.page_size
        return self.read(address, self.page_size)

    def load_page(self, page_id: int, content: bytes) -> None:
        if len(content) != self.page_size:
            raise MemoryError_(
                f"page content must be exactly {self.page_size} bytes, got "
                f"{len(content)}"
            )
        self.restore(page_id * self.page_size, content)

    def iter_pages(self) -> Iterator[int]:
        return iter(range(self.page_count))

    def snapshot_segments(self) -> dict[str, bytes]:
        """Deep copy of all segment contents (test/verification helper)."""
        return {seg.name: bytes(seg.data) for seg in self._segments}
