"""Runtime subsystem: the explicit task scheduler.

See :mod:`repro.runtime.scheduler` for the model (tick tasks, background
handles, drain steps) and ``docs/serving.md`` for the task taxonomy.
"""

from repro.runtime.scheduler import (
    DETERMINISTIC,
    THREADED,
    InlineHandle,
    Scheduler,
    TaskHandle,
    TaskInfo,
    ThreadHandle,
    resolve_scheduler_mode,
)

__all__ = [
    "DETERMINISTIC",
    "THREADED",
    "InlineHandle",
    "Scheduler",
    "TaskHandle",
    "TaskInfo",
    "ThreadHandle",
    "resolve_scheduler_mode",
]
