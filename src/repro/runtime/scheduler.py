"""The task scheduler: one owner for every deferred activity.

Before this subsystem existed, "who runs when" was scattered: the
group-commit window flushed itself from inside ``TransactionManager.commit``,
background full-sweep folds managed a private worker thread
(:mod:`repro.core.background`), and shutdown/crash each re-implemented
their own join/flush ordering.  The scheduler centralizes all of it:

* **Tick tasks** run at named trigger points (``"commit"``,
  ``"checkpoint"``, ``"interval"``): the group-commit size trigger and
  the optional group-commit deadline are tick tasks, not inline code.
* **Background work** is spawned through :meth:`Scheduler.spawn`, which
  returns a :class:`TaskHandle`.  In ``threaded`` mode the work runs on
  a worker thread; in ``deterministic`` mode it is *deferred* and runs
  inline at join -- same results, same meter charges, no threads.
* **Drain steps** give shutdown and crash one fixed order (flush the
  group-commit window, then settle in-flight sweeps, then the caller
  closes the log) instead of scattered joins.

Deterministic mode is the default and is observably pure: every task
fires at exactly the program point where the pre-scheduler code ran
inline, so meter snapshots are bit-identical (property-tested in
``tests/test_scheduler.py``).  Threaded mode is what the serving
front-end (:mod:`repro.serve`) runs on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError

DETERMINISTIC = "deterministic"
THREADED = "threaded"

#: Trigger points a tick task may subscribe to.  ``"interval"`` only
#: fires in threaded mode (from the ticker thread) -- deterministic mode
#: has no wall-clock, so interval tasks are inert there by design.
#: ``"replay"`` fires on a replica after each applied ship batch (its
#: commits happen on the primary, so replayed work needs its own program
#: point for audit cadence and ship-pump tasks).
TICK_EVENTS = ("commit", "checkpoint", "interval", "replay")


class TaskHandle:
    """Completion handle for one unit of background work.

    ``result()`` is idempotent: the first call produces (or waits for)
    the value, later calls return the cached value.  ``abandon()`` waits
    the work out and discards the value -- the crash/close path.
    """

    def result(self):  # pragma: no cover - interface
        raise NotImplementedError

    def abandon(self) -> None:
        self.result()

    @property
    def done(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class ThreadHandle(TaskHandle):
    """Background work on a real worker thread (threaded mode)."""

    def __init__(self, name: str, fn: Callable[[], object]) -> None:
        self._value: object = None
        self._error: BaseException | None = None
        self._joined = False

        def run() -> None:
            try:
                self._value = fn()
            except BaseException as exc:  # pragma: no cover - defensive
                self._error = exc

        self._thread = threading.Thread(target=run, name=name, daemon=True)
        self._thread.start()

    @property
    def done(self) -> bool:
        return not self._thread.is_alive()

    def result(self):
        self._thread.join()
        self._joined = True
        if self._error is not None:  # pragma: no cover - defensive
            raise self._error
        return self._value

    def abandon(self) -> None:
        self._thread.join()
        self._joined = True


class InlineHandle(TaskHandle):
    """Deferred background work (deterministic mode).

    The work function runs inline, on the joining thread, the first time
    ``result()`` is called.  ``abandon()`` discards the work without
    running it at all -- nothing was in flight, so there is nothing to
    wait out.
    """

    def __init__(self, name: str, fn: Callable[[], object]) -> None:
        self.name = name
        self._fn: Callable[[], object] | None = fn
        self._value: object = None

    @property
    def done(self) -> bool:
        return self._fn is None

    def result(self):
        if self._fn is not None:
            fn, self._fn = self._fn, None
            self._value = fn()
        return self._value

    def abandon(self) -> None:
        self._fn = None
        self._value = None


@dataclass
class _TickTask:
    name: str
    events: frozenset[str]
    fn: Callable[[str], None]
    runs: int = 0


@dataclass
class _DrainStep:
    name: str
    on_close: Callable[[], None] | None
    on_crash: Callable[[], None] | None
    runs: int = 0


@dataclass
class TaskInfo:
    """One row of :meth:`Scheduler.tasks` -- the task taxonomy snapshot."""

    name: str
    kind: str  # "tick" | "drain" | "background"
    detail: str = ""
    runs: int = 0
    live: bool = False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "detail": self.detail,
            "runs": self.runs,
            "live": self.live,
        }


class Scheduler:
    """Owns every deferred/background activity of one database.

    Parameters
    ----------
    mode:
        ``"deterministic"`` (no threads; background work defers to its
        join point; meter-identical to inline execution) or
        ``"threaded"`` (worker threads for background work, plus an
        optional ticker thread driving ``"interval"`` tick tasks).
    tick_interval_s:
        Period of the ticker thread in threaded mode.  The ticker only
        starts when at least one task subscribes to ``"interval"``.
    """

    def __init__(self, mode: str = DETERMINISTIC, tick_interval_s: float = 0.01) -> None:
        if mode not in (DETERMINISTIC, THREADED):
            raise ConfigError(
                f"scheduler mode must be 'deterministic' or 'threaded': {mode!r}"
            )
        self.mode = mode
        self.tick_interval_s = tick_interval_s
        self._tick_tasks: list[_TickTask] = []
        self._drain_steps: list[_DrainStep] = []
        # Live background handles by name; completed/abandoned handles
        # are reaped opportunistically on the next spawn/drain.
        self._live: dict[str, TaskHandle] = {}
        self._guard = threading.RLock()
        self._ticker: threading.Thread | None = None
        self._ticker_stop = threading.Event()
        self._shutdown = False
        self.spawn_count = 0
        self.tick_count = 0

    # ---------------------------------------------------------- registry

    def register_tick(
        self, name: str, events, fn: Callable[[str], None]
    ) -> None:
        """Register a task that runs whenever one of ``events`` ticks.

        Tasks run synchronously on the ticking thread, in registration
        order -- a tick is a program point, not a context switch, which
        is what keeps deterministic mode deterministic.
        """
        events = frozenset(events)
        unknown = events.difference(TICK_EVENTS)
        if unknown:
            raise ConfigError(
                f"unknown tick event(s) {sorted(unknown)}; valid: {TICK_EVENTS}"
            )
        with self._guard:
            if any(t.name == name for t in self._tick_tasks):
                raise ConfigError(f"tick task {name!r} already registered")
            self._tick_tasks.append(_TickTask(name, events, fn))
            if "interval" in events:
                self._maybe_start_ticker()

    def add_drain_step(
        self,
        name: str,
        on_close: Callable[[], None] | None,
        on_crash: Callable[[], None] | None = None,
    ) -> None:
        """Register one step of the fixed shutdown/crash drain order.

        Steps run in registration order; ``on_close`` runs on clean
        shutdown, ``on_crash`` on crash (``None`` skips the step on that
        path).  Steps must be idempotent -- the drain itself may run
        more than once (close after crash, double close).
        """
        with self._guard:
            if any(s.name == name for s in self._drain_steps):
                raise ConfigError(f"drain step {name!r} already registered")
            self._drain_steps.append(_DrainStep(name, on_close, on_crash))

    # -------------------------------------------------------------- tick

    def tick(self, event: str) -> None:
        """Run every tick task subscribed to ``event``, in order."""
        self.tick_count += 1
        for task in self._tick_tasks:
            if event in task.events:
                task.runs += 1
                task.fn(event)

    def _maybe_start_ticker(self) -> None:
        if self.mode != THREADED or self._ticker is not None or self._shutdown:
            return

        def loop() -> None:
            while not self._ticker_stop.wait(self.tick_interval_s):
                self.tick("interval")

        self._ticker = threading.Thread(target=loop, name="scheduler-ticker", daemon=True)
        self._ticker.start()

    # -------------------------------------------------------- background

    def spawn(self, name: str, fn: Callable[[], object]) -> TaskHandle:
        """Run ``fn`` as background work; returns its handle.

        Threaded mode starts a worker thread immediately; deterministic
        mode returns a deferred handle whose work runs inline at
        ``result()``.  The handle stays registered (visible in
        :meth:`tasks`, settled by :meth:`drain`) until it completes or
        is abandoned.
        """
        with self._guard:
            self._reap()
            if name in self._live:
                raise ConfigError(f"background task {name!r} already in flight")
            if self.mode == THREADED:
                handle: TaskHandle = ThreadHandle(name, fn)
            else:
                handle = InlineHandle(name, fn)
            self._live[name] = handle
            self.spawn_count += 1
            return handle

    def forget(self, handle: TaskHandle) -> None:
        """Deregister a handle its owner has already joined/abandoned."""
        with self._guard:
            for name, live in list(self._live.items()):
                if live is handle:
                    del self._live[name]

    def _reap(self) -> None:
        for name, handle in list(self._live.items()):
            if handle.done and getattr(handle, "_joined", True):
                del self._live[name]

    @property
    def live_background(self) -> tuple[str, ...]:
        with self._guard:
            return tuple(self._live)

    # -------------------------------------------------------------- drain

    def drain(self, crash: bool = False) -> list[str]:
        """Run the registered drain steps in their fixed order.

        Returns the names of the steps that ran.  Any background handle
        still live afterwards is abandoned (waited out, result
        discarded) -- by the time the drain finishes, no scheduler-owned
        work is in flight.  Safe to call repeatedly.
        """
        ran: list[str] = []
        for step in self._drain_steps:
            fn = step.on_crash if crash else step.on_close
            if fn is None:
                continue
            step.runs += 1
            fn()
            ran.append(step.name)
        with self._guard:
            leftovers = list(self._live.values())
            self._live.clear()
        for handle in leftovers:
            handle.abandon()
        return ran

    def shutdown(self, crash: bool = False) -> list[str]:
        """Drain and stop: after this, no scheduler activity remains."""
        self._shutdown = True
        self._ticker_stop.set()
        ticker = self._ticker
        if ticker is not None:
            ticker.join(timeout=5)
            self._ticker = None
        return self.drain(crash=crash)

    # ------------------------------------------------------------- status

    def tasks(self) -> list[TaskInfo]:
        """Snapshot of the task taxonomy (for reports and docs examples)."""
        with self._guard:
            rows = [
                TaskInfo(t.name, "tick", ",".join(sorted(t.events)), t.runs)
                for t in self._tick_tasks
            ]
            rows += [
                TaskInfo(
                    s.name,
                    "drain",
                    "close" + ("/crash" if s.on_crash is not None else ""),
                    s.runs,
                )
                for s in self._drain_steps
            ]
            rows += [
                TaskInfo(name, "background", type(h).__name__, 1, live=True)
                for name, h in self._live.items()
            ]
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scheduler(mode={self.mode!r}, ticks={self.tick_count}, "
            f"spawned={self.spawn_count}, live={list(self._live)})"
        )


def resolve_scheduler_mode(requested: str, background_sweeps: bool) -> str:
    """Map the DBConfig knob to a concrete mode.

    ``"auto"`` keeps pre-scheduler behaviour: databases that opted into
    background sweeps get worker threads, everything else runs fully
    deterministic.
    """
    if requested == "auto":
        return THREADED if background_sweeps else DETERMINISTIC
    if requested not in (DETERMINISTIC, THREADED):
        raise ConfigError(
            "scheduler_mode must be 'auto', 'deterministic' or 'threaded': "
            f"{requested!r}"
        )
    return requested


__all__ = [
    "DETERMINISTIC",
    "THREADED",
    "InlineHandle",
    "Scheduler",
    "TaskHandle",
    "TaskInfo",
    "ThreadHandle",
    "resolve_scheduler_mode",
]
