"""Latches: short-duration shared/exclusive synchronization primitives.

The paper uses three latch roles: the per-region *protection latch*
(Section 3.1), the *codeword latch* guarding codeword values under the
Data Codeword scheme (Section 3.2), and the *system log latch* serializing
flushes (Section 2.1).

Latches here are real (thread-safe, blocking) so multi-threaded tests can
exercise them, but the performance study -- like the paper's -- runs a
single process, so only their *cost* (charged by callers per
acquire/release pair) shows up in the benchmark, never contention.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.errors import LatchError

SHARED = "S"
EXCLUSIVE = "X"


class Latch:
    """A shared/exclusive latch, reentrant for its current owner thread."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._waiters = 0
        self._shared_holders: dict[int, int] = {}  # thread id -> depth
        self._exclusive_owner: int | None = None
        self._exclusive_depth = 0
        self.acquire_count = 0

    # ---------------------------------------------------------- acquire

    def acquire(self, mode: str, timeout: float | None = 10.0) -> None:
        if mode not in (SHARED, EXCLUSIVE):
            raise LatchError(f"bad latch mode {mode!r}")
        me = threading.get_ident()
        # Take the raw lock directly: latch acquisition is on the
        # per-update hot path, and ``Condition.__enter__`` is a
        # Python-level wrapper around this same lock.
        self._lock.acquire()
        try:
            if not self._grantable(mode, me):
                deadline = None if timeout is None else (
                    threading.TIMEOUT_MAX if timeout <= 0 else timeout
                )
                self._waiters += 1
                try:
                    while not self._grantable(mode, me):
                        if not self._cond.wait(timeout=deadline):
                            raise LatchError(
                                f"timeout acquiring latch {self.name!r} "
                                f"in mode {mode}"
                            )
                finally:
                    self._waiters -= 1
            self._grant(mode, me)
            self.acquire_count += 1
        finally:
            self._lock.release()

    def _grantable(self, mode: str, me: int) -> bool:
        if self._exclusive_owner == me:
            return True  # reentrant: exclusive owner may nest either mode
        if mode == SHARED:
            return self._exclusive_owner is None
        # Exclusive request: grantable if free, or if we are the sole
        # shared holder (upgrade).
        if self._exclusive_owner is not None:
            return False
        if not self._shared_holders:
            return True
        return set(self._shared_holders) == {me}

    def _grant(self, mode: str, me: int) -> None:
        if self._exclusive_owner == me:
            self._exclusive_depth += 1
            return
        if mode == SHARED:
            self._shared_holders[me] = self._shared_holders.get(me, 0) + 1
            return
        # Exclusive grant; fold any shared depth we held into exclusive depth
        # so releases pair up (upgrade path).
        upgraded_depth = self._shared_holders.pop(me, 0)
        self._exclusive_owner = me
        self._exclusive_depth = 1 + upgraded_depth

    # ---------------------------------------------------------- release

    def release(self) -> None:
        me = threading.get_ident()
        self._lock.acquire()
        try:
            if self._exclusive_owner == me:
                self._exclusive_depth -= 1
                if self._exclusive_depth == 0:
                    self._exclusive_owner = None
            elif me in self._shared_holders:
                self._shared_holders[me] -= 1
                if self._shared_holders[me] == 0:
                    del self._shared_holders[me]
            else:
                raise LatchError(
                    f"thread releasing latch {self.name!r} it does not hold"
                )
            if self._waiters:
                self._cond.notify_all()
        finally:
            self._lock.release()

    # ------------------------------------------------------------ views

    def held_exclusive(self) -> bool:
        return self._exclusive_owner is not None

    def held(self) -> bool:
        return self._exclusive_owner is not None or bool(self._shared_holders)

    @contextmanager
    def shared(self):
        self.acquire(SHARED)
        try:
            yield self
        finally:
            self.release()

    @contextmanager
    def exclusive(self):
        self.acquire(EXCLUSIVE)
        try:
            yield self
        finally:
            self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Latch({self.name!r})"


class LatchTable:
    """Lazily-created named latches (one protection latch per region)."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._latches: dict[int, Latch] = {}
        self._guard = threading.Lock()

    def latch(self, key: int) -> Latch:
        # Double-checked fast path: dict reads are atomic under the GIL,
        # and this lookup is on the per-update hot path.  The guard is
        # only taken to serialize creation of a missing latch.
        latch = self._latches.get(key)
        if latch is not None:
            return latch
        with self._guard:
            latch = self._latches.get(key)
            if latch is None:
                latch = Latch(f"{self.prefix}[{key}]")
                self._latches[key] = latch
            return latch

    def any_held(self) -> bool:
        """Whether any latch in the table is currently held.

        Used by the batch audit fast path: when nothing is in flight, a
        whole-table scan may fold every region in one vectorized kernel
        instead of latching region by region.
        """
        with self._guard:
            return any(latch.held() for latch in self._latches.values())

    def __len__(self) -> int:
        return len(self._latches)
