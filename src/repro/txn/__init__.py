"""Transactions, latches, logical locks, and the prescribed update interface."""

from repro.txn.latches import Latch, LatchTable
from repro.txn.locks import LockManager, LockMode
from repro.txn.transaction import ActiveTransactionTable, Operation, Transaction, TxnStatus
from repro.txn.manager import TransactionManager

__all__ = [
    "Latch",
    "LatchTable",
    "LockManager",
    "LockMode",
    "Transaction",
    "Operation",
    "TxnStatus",
    "ActiveTransactionTable",
    "TransactionManager",
]
