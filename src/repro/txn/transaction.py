"""Transaction and operation state, and the active transaction table.

A transaction is an operation at the highest level of the multi-level
model (Section 2.1); nested operations form a stack.  Each transaction
carries its *local* undo and redo logs; the ATT (with the local undo logs)
is written out with every checkpoint so restart recovery can roll back
transactions that were in progress at checkpoint time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import TransactionError
from repro.wal.local_log import LocalRedoLog, UndoLog


class TxnStatus(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Operation:
    """An open multi-level operation (level >= 1)."""

    op_id: int
    level: int
    object_key: str
    redo_mark: int  # local redo log position at operation begin
    undo_mark: int = 0  # undo log position at operation begin


@dataclass
class PendingUpdate:
    """State of an open ``begin_update``/``end_update`` window."""

    address: int
    length: int
    undo_image: bytes
    undo_index: int  # position of the PhysicalUndo entry in the undo log


class Transaction:
    """A transaction with local logging (Section 2)."""

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        self.status = TxnStatus.ACTIVE
        self.undo_log = UndoLog()
        self.redo_log = LocalRedoLog()
        self.op_stack: list[Operation] = []
        self.pending_update: PendingUpdate | None = None
        # Scratch space for protection schemes (precheck dedup cache,
        # latches held across an update window, ...).
        self.scheme_state: dict = {}

    @property
    def current_op(self) -> Operation:
        if not self.op_stack:
            raise TransactionError(
                f"transaction {self.txn_id} has no open operation; all updates "
                "must happen inside begin_operation/commit_operation"
            )
        return self.op_stack[-1]

    @property
    def depth(self) -> int:
        return len(self.op_stack)

    def require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status.value}, not active"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(id={self.txn_id}, status={self.status.value}, "
            f"ops={len(self.op_stack)}, undo={len(self.undo_log)})"
        )


@dataclass
class CheckpointedTxn:
    """A transaction's recovery-relevant state as stored in a checkpoint."""

    txn_id: int
    undo_log: UndoLog
    # (op_id, level, object_key, undo_mark) per open operation
    open_ops: list[tuple[int, int, str, int]] = field(default_factory=list)


class ActiveTransactionTable:
    """The ATT: all transactions currently in progress."""

    def __init__(self) -> None:
        self._table: dict[int, Transaction] = {}

    def add(self, txn: Transaction) -> None:
        if txn.txn_id in self._table:
            raise TransactionError(f"transaction {txn.txn_id} already in ATT")
        self._table[txn.txn_id] = txn

    def remove(self, txn_id: int) -> None:
        self._table.pop(txn_id, None)

    def get(self, txn_id: int) -> Transaction | None:
        return self._table.get(txn_id)

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self._table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self):
        return iter(self._table.values())

    def clear(self) -> None:
        self._table.clear()

    # ------------------------------------------------- checkpoint codec

    def encode(self) -> bytes:
        """Serialize every active transaction's undo state."""
        parts = [struct.pack("<I", len(self._table))]
        for txn in self._table.values():
            parts.append(struct.pack("<Q", txn.txn_id))
            parts.append(struct.pack("<H", len(txn.op_stack)))
            for op in txn.op_stack:
                key = op.object_key.encode("utf-8")
                parts.append(
                    struct.pack("<QBIH", op.op_id, op.level, op.undo_mark, len(key))
                    + key
                )
            parts.append(txn.undo_log.encode())
        return b"".join(parts)

    @staticmethod
    def decode(data: bytes) -> dict[int, CheckpointedTxn]:
        (count,) = struct.unpack_from("<I", data, 0)
        offset = 4
        result: dict[int, CheckpointedTxn] = {}
        for _ in range(count):
            (txn_id,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            (op_count,) = struct.unpack_from("<H", data, offset)
            offset += 2
            ops: list[tuple[int, int, str, int]] = []
            for _ in range(op_count):
                op_id, level, undo_mark, key_len = struct.unpack_from(
                    "<QBIH", data, offset
                )
                offset += 15
                key = data[offset : offset + key_len].decode("utf-8")
                offset += key_len
                ops.append((op_id, level, key, undo_mark))
            undo_log, offset = UndoLog.decode(data, offset)
            result[txn_id] = CheckpointedTxn(txn_id, undo_log, ops)
        return result
