"""Transaction and operation state, and the active transaction table.

A transaction is an operation at the highest level of the multi-level
model (Section 2.1); nested operations form a stack.  Each transaction
carries its *local* undo and redo logs; the ATT (with the local undo logs)
is written out with every checkpoint so restart recovery can roll back
transactions that were in progress at checkpoint time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import TransactionError
from repro.wal.local_log import LocalRedoLog, UndoLog


class TxnStatus(Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(slots=True)
class Operation:
    """An open multi-level operation (level >= 1)."""

    op_id: int
    level: int
    object_key: str
    redo_mark: int  # local redo log position at operation begin
    undo_mark: int = 0  # undo log position at operation begin


@dataclass(slots=True)
class WindowRegion:
    """One contiguous range of an open update window.

    ``new_image`` accumulates the bytes written into the range (seeded
    from the undo image), so ``end_update`` can log the redo image
    without re-reading the window from memory.
    """

    address: int
    length: int
    undo_image: bytes
    undo_index: int  # position of the PhysicalUndo entry in the undo log
    new_image: bytearray = field(repr=False, default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.new_image and self.length:
            self.new_image = bytearray(self.undo_image)


@dataclass
class PendingUpdate:
    """State of an open ``begin_update``/``end_update`` window.

    A window covers one or more target ranges (``begin_updates`` opens a
    multi-region window; the scalar ``begin_update`` is the one-region
    special case).  ``coalescing`` marks windows the manager opened
    implicitly to batch consecutive ``update()`` calls under
    ``DBConfig(update_batch=N)``; such windows are flushed automatically
    before any read, operation commit or explicit window open.
    """

    regions: list[WindowRegion]
    coalescing: bool = False
    # Begin-side meter charges owed by coalescing extensions, paid in
    # bulk when the window closes (``TxnManager.end_update``).
    uncharged_ranges: int = 0
    uncharged_bytes: int = 0

    def __post_init__(self) -> None:
        # (address, length) -> latest region with exactly that range; the
        # fast path for whole-range writes (how update() and the storage
        # layer write).  "Latest wins" matches the sequential-delta rule
        # for coalescing windows that revisit an address.
        self._by_range = {(r.address, r.length): r for r in self.regions}

    def add_region(self, region: WindowRegion) -> None:
        self.regions.append(region)
        self._by_range[(region.address, region.length)] = region

    def exact_region(self, address: int, length: int) -> WindowRegion | None:
        return self._by_range.get((address, length))

    @property
    def address(self) -> int:
        return self.regions[0].address

    @property
    def length(self) -> int:
        return self.regions[0].length

    @property
    def undo_image(self) -> bytes:
        return self.regions[0].undo_image

    @property
    def undo_index(self) -> int:
        return self.regions[0].undo_index


class Transaction:
    """A transaction with local logging (Section 2)."""

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        self.status = TxnStatus.ACTIVE
        self.undo_log = UndoLog()
        self.redo_log = LocalRedoLog()
        self.op_stack: list[Operation] = []
        self.pending_update: PendingUpdate | None = None
        # Global transaction id when this txn is a 2PC participant branch;
        # set by TransactionManager.prepare().
        self.gid: str | None = None
        # Scratch space for protection schemes (precheck dedup cache,
        # latches held across an update window, ...).
        self.scheme_state: dict = {}

    @property
    def current_op(self) -> Operation:
        if not self.op_stack:
            raise TransactionError(
                f"transaction {self.txn_id} has no open operation; all updates "
                "must happen inside begin_operation/commit_operation"
            )
        return self.op_stack[-1]

    @property
    def depth(self) -> int:
        return len(self.op_stack)

    def require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status.value}, not active"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(id={self.txn_id}, status={self.status.value}, "
            f"ops={len(self.op_stack)}, undo={len(self.undo_log)})"
        )


@dataclass
class CheckpointedTxn:
    """A transaction's recovery-relevant state as stored in a checkpoint."""

    txn_id: int
    undo_log: UndoLog
    # (op_id, level, object_key, undo_mark) per open operation
    open_ops: list[tuple[int, int, str, int]] = field(default_factory=list)


class ActiveTransactionTable:
    """The ATT: all transactions currently in progress."""

    def __init__(self) -> None:
        self._table: dict[int, Transaction] = {}

    def add(self, txn: Transaction) -> None:
        if txn.txn_id in self._table:
            raise TransactionError(f"transaction {txn.txn_id} already in ATT")
        self._table[txn.txn_id] = txn

    def remove(self, txn_id: int) -> None:
        self._table.pop(txn_id, None)

    def get(self, txn_id: int) -> Transaction | None:
        return self._table.get(txn_id)

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self._table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self):
        return iter(self._table.values())

    def clear(self) -> None:
        self._table.clear()

    # ------------------------------------------------- checkpoint codec

    def encode(self) -> bytes:
        """Serialize every active transaction's undo state."""
        parts = [struct.pack("<I", len(self._table))]
        for txn in self._table.values():
            parts.append(struct.pack("<Q", txn.txn_id))
            parts.append(struct.pack("<H", len(txn.op_stack)))
            for op in txn.op_stack:
                key = op.object_key.encode("utf-8")
                parts.append(
                    struct.pack("<QBIH", op.op_id, op.level, op.undo_mark, len(key))
                    + key
                )
            parts.append(txn.undo_log.encode())
        return b"".join(parts)

    @staticmethod
    def decode(data: bytes) -> dict[int, CheckpointedTxn]:
        (count,) = struct.unpack_from("<I", data, 0)
        offset = 4
        result: dict[int, CheckpointedTxn] = {}
        for _ in range(count):
            (txn_id,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            (op_count,) = struct.unpack_from("<H", data, offset)
            offset += 2
            ops: list[tuple[int, int, str, int]] = []
            for _ in range(op_count):
                op_id, level, undo_mark, key_len = struct.unpack_from(
                    "<QBIH", data, offset
                )
                offset += 15
                key = data[offset : offset + key_len].decode("utf-8")
                offset += key_len
                ops.append((op_id, level, key, undo_mark))
            undo_log, offset = UndoLog.decode(data, offset)
            result[txn_id] = CheckpointedTxn(txn_id, undo_log, ops)
        return result
