"""Logical lock manager for multi-level transactions.

Locks are keyed by logical object keys (``"account:123"``) and come in two
durations, following multi-level recovery (Section 2.1):

* ``txn`` -- held to transaction end (strict two-phase locking at the
  transaction level);
* ``op``  -- lower-level locks released when the enclosing operation
  commits, after its redo records have moved to the system log and its
  undo has been replaced by a logical undo record.

The manager is non-blocking: a conflicting request raises
:class:`~repro.errors.LockError` immediately instead of waiting.  The
paper's benchmark runs one transaction at a time, where a conflict
indicates a bug; the serving front-end (:mod:`repro.serve`) turns the
same fail-fast conflict into a per-session abort-and-retry.

Release is O(locks held by the transaction), not O(lock table): a
reverse index maps each transaction to the keys it holds, so
``release_all``/``release_operation`` never scan keys owned by other
sessions (the before/after numbers are in ``BENCH_txn.json`` under
``lock_release``).  All public methods take an internal mutex --
concurrent serving sessions share one lock table, and check-then-act
sequences like conflict detection must be atomic against them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum

from repro.errors import LockError


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class _Grant:
    txn_id: int
    mode: LockMode
    duration: str  # "txn" or "op"
    op_id: int | None
    depth: int = 1


class LockManager:
    """Conflict-detecting, non-blocking logical lock table."""

    def __init__(self) -> None:
        self._table: dict[str, list[_Grant]] = {}
        #: Reverse index: txn_id -> keys it holds at least one grant on.
        #: Invariant: ``key in self._txn_keys[t]`` iff ``self._table[key]``
        #: contains a grant with ``txn_id == t`` (there is at most one
        #: such grant per (txn, key); re-acquisition nests its depth).
        self._txn_keys: dict[int, set[str]] = {}
        self._mutex = threading.RLock()
        self.acquire_count = 0

    def acquire(
        self,
        txn_id: int,
        key: str,
        mode: LockMode,
        duration: str = "txn",
        op_id: int | None = None,
    ) -> None:
        if duration not in ("txn", "op"):
            raise LockError(f"bad lock duration {duration!r}")
        with self._mutex:
            grants = self._table.setdefault(key, [])
            mine = None
            for grant in grants:
                if grant.txn_id == txn_id:
                    mine = grant
                    continue
                if not mode.compatible_with(grant.mode):
                    raise LockError(
                        f"transaction {txn_id} requests {mode.value} on {key!r} "
                        f"held {grant.mode.value} by transaction {grant.txn_id}",
                        holder_txn_id=grant.txn_id,
                    )
            self.acquire_count += 1
            if mine is not None:
                mine.depth += 1
                if mode is LockMode.EXCLUSIVE:
                    mine.mode = LockMode.EXCLUSIVE  # upgrade
                if duration == "txn":
                    mine.duration = "txn"  # op lock escalates to txn duration
                return
            grants.append(_Grant(txn_id, mode, duration, op_id))
            self._txn_keys.setdefault(txn_id, set()).add(key)

    def holds(self, txn_id: int, key: str, mode: LockMode | None = None) -> bool:
        with self._mutex:
            for grant in self._table.get(key, ()):
                if grant.txn_id != txn_id:
                    continue
                if (
                    mode is None
                    or grant.mode is mode
                    or grant.mode is LockMode.EXCLUSIVE
                ):
                    return True
            return False

    def would_conflict(self, txn_id: int, key: str, mode: LockMode) -> bool:
        """Check without acquiring (used by corruption-recovery conflict tests)."""
        with self._mutex:
            for grant in self._table.get(key, ()):
                if grant.txn_id != txn_id and not mode.compatible_with(grant.mode):
                    return True
            return False

    def release_operation(self, txn_id: int, op_id: int) -> None:
        """Release the op-duration locks of one committed operation.

        Scans only the keys this transaction holds (reverse index), not
        the whole table -- under concurrent sessions the table holds
        every session's grants, and an O(table) scan per operation
        commit would make operation cost grow with the session count.
        """
        with self._mutex:
            keys = self._txn_keys.get(txn_id)
            if not keys:
                return
            for key in list(keys):
                grants = self._table[key]
                for i, grant in enumerate(grants):
                    if grant.txn_id != txn_id:
                        continue
                    if grant.duration == "op" and grant.op_id == op_id:
                        del grants[i]
                        keys.discard(key)
                        if not grants:
                            del self._table[key]
                    break
            if not keys:
                del self._txn_keys[txn_id]

    def release_all(self, txn_id: int) -> None:
        """Release every lock of a finished transaction: O(locks held)."""
        with self._mutex:
            keys = self._txn_keys.pop(txn_id, None)
            if not keys:
                return
            for key in keys:
                grants = self._table[key]
                for i, grant in enumerate(grants):
                    if grant.txn_id == txn_id:
                        del grants[i]
                        break
                if not grants:
                    del self._table[key]

    def locks_held(self, txn_id: int) -> list[str]:
        with self._mutex:
            return sorted(self._txn_keys.get(txn_id, ()))

    def clear(self) -> None:
        with self._mutex:
            self._table.clear()
            self._txn_keys.clear()
