"""Logical lock manager for multi-level transactions.

Locks are keyed by logical object keys (``"account:123"``) and come in two
durations, following multi-level recovery (Section 2.1):

* ``txn`` -- held to transaction end (strict two-phase locking at the
  transaction level);
* ``op``  -- lower-level locks released when the enclosing operation
  commits, after its redo records have moved to the system log and its
  undo has been replaced by a logical undo record.

The benchmark runs one transaction at a time (as in the paper), so a
conflicting request indicates a bug or a deliberately concurrent test; the
manager raises :class:`~repro.errors.LockError` rather than blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import LockError


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class _Grant:
    txn_id: int
    mode: LockMode
    duration: str  # "txn" or "op"
    op_id: int | None
    depth: int = 1


class LockManager:
    """Conflict-detecting, non-blocking logical lock table."""

    def __init__(self) -> None:
        self._table: dict[str, list[_Grant]] = {}
        self.acquire_count = 0

    def acquire(
        self,
        txn_id: int,
        key: str,
        mode: LockMode,
        duration: str = "txn",
        op_id: int | None = None,
    ) -> None:
        if duration not in ("txn", "op"):
            raise LockError(f"bad lock duration {duration!r}")
        grants = self._table.setdefault(key, [])
        mine = next((g for g in grants if g.txn_id == txn_id), None)
        for grant in grants:
            if grant.txn_id == txn_id:
                continue
            if not mode.compatible_with(grant.mode):
                raise LockError(
                    f"transaction {txn_id} requests {mode.value} on {key!r} "
                    f"held {grant.mode.value} by transaction {grant.txn_id}"
                )
        self.acquire_count += 1
        if mine is not None:
            mine.depth += 1
            if mode is LockMode.EXCLUSIVE:
                mine.mode = LockMode.EXCLUSIVE  # upgrade
            if duration == "txn":
                mine.duration = "txn"  # op lock escalates to txn duration
            return
        grants.append(_Grant(txn_id, mode, duration, op_id))

    def holds(self, txn_id: int, key: str, mode: LockMode | None = None) -> bool:
        for grant in self._table.get(key, ()):
            if grant.txn_id != txn_id:
                continue
            if mode is None or grant.mode is mode or grant.mode is LockMode.EXCLUSIVE:
                return True
        return False

    def would_conflict(self, txn_id: int, key: str, mode: LockMode) -> bool:
        """Check without acquiring (used by corruption-recovery conflict tests)."""
        for grant in self._table.get(key, ()):
            if grant.txn_id != txn_id and not mode.compatible_with(grant.mode):
                return True
        return False

    def release_operation(self, txn_id: int, op_id: int) -> None:
        """Release the op-duration locks of one committed operation."""
        for key in list(self._table):
            grants = self._table[key]
            grants[:] = [
                g
                for g in grants
                if not (g.txn_id == txn_id and g.duration == "op" and g.op_id == op_id)
            ]
            if not grants:
                del self._table[key]

    def release_all(self, txn_id: int) -> None:
        for key in list(self._table):
            grants = self._table[key]
            grants[:] = [g for g in grants if g.txn_id != txn_id]
            if not grants:
                del self._table[key]

    def locks_held(self, txn_id: int) -> list[str]:
        return [
            key
            for key, grants in self._table.items()
            if any(g.txn_id == txn_id for g in grants)
        ]

    def clear(self) -> None:
        self._table.clear()
