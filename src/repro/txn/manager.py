"""The transaction manager: multi-level transactions over the memory image.

This is the paper's *update model* (Section 1): all updates are in place,
and correct updates are ones that use the prescribed interface --
``begin_update``/``end_update`` brackets around every physical write, with
reads going through :meth:`TransactionManager.read`.  Protection schemes
hook these three points; anything that writes memory without them (a wild
write through :meth:`~repro.mem.memory.MemoryImage.poke`) is by definition
an addressing error.

The manager dispatches only to the hook interface, never to a concrete
scheme: since the pipeline refactor the object handed in by ``Database``
is a :class:`~repro.core.pipeline.ProtectionPipeline`, which fans each
hook out across its (possibly stacked) members.

Multi-level structure follows Section 2.1: physical updates (level 0)
happen inside operations (level >= 1) which happen inside transactions.
On operation commit the operation's redo records move from the local redo
log to the system log tail and its physical undo records are replaced by a
logical undo record -- both before its operation-duration locks release.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.errors import TransactionError
from repro.mem.memory import MemoryImage
from repro.sim.clock import Meter
from repro.txn.locks import LockManager, LockMode
from repro.txn.transaction import (
    ActiveTransactionTable,
    Operation,
    PendingUpdate,
    Transaction,
    TxnStatus,
    WindowRegion,
)
from repro.wal.local_log import LogicalUndoEntry, PhysicalUndo
from repro.wal.records import (
    LogicalUndo,
    OpBeginRecord,
    OpCommitRecord,
    TxnAbortRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    TxnPrepareRecord,
    UpdateRecord,
)
from repro.wal.system_log import SystemLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.schemes import ProtectionScheme
    from repro.runtime.scheduler import Scheduler


class TransactionManager:
    """Coordinates transactions, operations, locking, logging and schemes."""

    def __init__(
        self,
        memory: MemoryImage,
        system_log: SystemLog,
        locks: LockManager,
        scheme: "ProtectionScheme",
        meter: Meter,
        group_commit_size: int = 1,
        update_batch: int = 1,
        scheduler: "Scheduler | None" = None,
    ) -> None:
        self.memory = memory
        self.system_log = system_log
        self.locks = locks
        self.scheme = scheme
        self.meter = meter
        #: Write batching (opt-in): with N > 1, consecutive :meth:`update`
        #: calls inside one operation coalesce into a multi-region window
        #: that closes as one batch -- one bulk codeword delta-fold, bulk
        #: meter charges with the *same* event counts as N scalar windows.
        #: The window flushes before any read, operation boundary or
        #: explicit window open, so visibility and recovery semantics are
        #: unchanged.
        self.update_batch = max(1, int(update_batch))
        #: Group commit (opt-in): one latch/flush pair covers up to this
        #: many committers.  1 keeps the paper's flush-per-commit
        #: behaviour, bit-for-bit and meter-identical.  With N > 1 a
        #: crash can lose the last N-1 *reported* commits -- restart
        #: recovery rolls them back, exactly like commits torn mid-flush.
        self.group_commit_size = max(1, int(group_commit_size))
        self._commits_since_flush = 0
        #: Guards the group-commit window counter.  The flush itself is
        #: serialized by the system log latch; this mutex only keeps the
        #: counter exact when serving sessions commit concurrently.
        self._gc_lock = threading.Lock()
        #: Guards txn/op/seq id assignment and the commit/abort tallies.
        self._id_lock = threading.Lock()
        #: When a scheduler is installed, the group-commit size trigger is
        #: a tick task fired from :meth:`commit` -- the same program point
        #: where the pre-scheduler code flushed inline, so deterministic
        #: mode is meter-identical to the ``scheduler=None`` fallback
        #: (which keeps the historical inline flush for exactly that
        #: property test).
        self.scheduler = scheduler
        if scheduler is not None:
            scheduler.register_tick(
                "group_commit.flush", ("commit",), self._on_commit_tick
            )
        self.att = ActiveTransactionTable()
        # The storage layer installs an executor that interprets logical
        # undo descriptions by running the inverse operation through the
        # normal operation machinery.
        self.undo_executor: Callable[[Transaction, LogicalUndo], None] | None = None
        # The storage layer installs a guard when corrupt-region
        # quarantine is enabled; it vetoes (or repairs ahead of) reads
        # that overlap quarantined regions.
        self.quarantine_guard: Callable[[Transaction, int, int], None] | None = None
        self._next_txn_id = 1
        self._next_op_id = 1
        self._next_seq = 1
        self.committed_count = 0
        self.aborted_count = 0

    # ----------------------------------------------------- transactions

    def begin(self, is_recovery: bool = False) -> Transaction:
        """Start a transaction.  ``is_recovery`` marks compensation
        transactions spawned by restart recovery (see TxnBeginRecord)."""
        with self._id_lock:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
        txn = Transaction(txn_id)
        self.att.add(txn)
        self.system_log.append(TxnBeginRecord(txn.txn_id, is_recovery))
        self.meter.charge("txn_begin")
        return txn

    def commit(self, txn: Transaction) -> None:
        txn.require_active()
        if txn.op_stack:
            raise TransactionError(
                f"transaction {txn.txn_id} still has {len(txn.op_stack)} open "
                "operation(s) at commit"
            )
        if txn.pending_update is not None:
            raise TransactionError(
                f"transaction {txn.txn_id} has an open update window at commit"
            )
        # Reads performed outside any operation are still sitting in the
        # local redo log; migrate them so the audit trail is complete.
        self.system_log.extend(txn.redo_log.take_from(0), charge=False)
        self.system_log.append(TxnCommitRecord(txn.txn_id))
        with self._gc_lock:
            self._commits_since_flush += 1
        if self.scheduler is not None:
            self.scheduler.tick("commit")
        elif self._commits_since_flush >= self.group_commit_size:
            # Scheduler-less fallback: the historical inline flush.  This
            # path is the meter-identity reference the scheduler property
            # tests compare against.
            self.system_log.flush()
            self._commits_since_flush = 0
        self.meter.charge("txn_commit")
        txn.status = TxnStatus.COMMITTED
        self._release_txn_locks(txn)
        self.att.remove(txn.txn_id)
        with self._id_lock:
            self.committed_count += 1

    def abort(self, txn: Transaction) -> None:
        """Roll the transaction back completely (normal processing path)."""
        txn.require_active()
        self._rollback_pending_update(txn)
        while txn.op_stack:
            self.abort_operation(txn)
        # What remains in the undo log are logical undos of committed
        # operations; execute their inverses newest-first.
        entries = list(txn.undo_log.entries)
        txn.undo_log.entries.clear()
        for entry in reversed(entries):
            if not isinstance(entry, LogicalUndoEntry):  # pragma: no cover
                raise TransactionError(
                    "physical undo entry outside any open operation"
                )
            self._execute_logical_undo(txn, entry.undo)
        # The inverse operations appended their own undo entries; the
        # transaction is ending, so they are discarded.
        txn.undo_log.entries.clear()
        self.system_log.append(TxnAbortRecord(txn.txn_id))
        # An abort always flushes (its compensations must be stable), and
        # the flush covers any commits a group-commit window was holding.
        self.system_log.flush()
        with self._gc_lock:
            self._commits_since_flush = 0
        txn.status = TxnStatus.ABORTED
        self._release_txn_locks(txn)
        self.att.remove(txn.txn_id)
        with self._id_lock:
            self.aborted_count += 1

    # ------------------------------------------- two-phase commit branch

    def prepare(self, txn: Transaction, gid: str) -> None:
        """Phase one of presumed-abort 2PC: vote yes and make it stable.

        The branch's redo records migrate to the system log exactly as in
        :meth:`commit`, followed by a :class:`TxnPrepareRecord` carrying
        the global transaction id, and the tail is flushed
        unconditionally -- the prepare vote is a durability promise.  The
        transaction keeps its locks and stays in the ATT with status
        ``PREPARED``; only the coordinator's decision (or restart
        recovery's in-doubt resolution) releases it.
        """
        txn.require_active()
        if txn.op_stack:
            raise TransactionError(
                f"transaction {txn.txn_id} still has {len(txn.op_stack)} open "
                "operation(s) at prepare"
            )
        if txn.pending_update is not None:
            raise TransactionError(
                f"transaction {txn.txn_id} has an open update window at prepare"
            )
        self.system_log.crashpoints.reach("twopc.pre_prepare")
        self.system_log.extend(txn.redo_log.take_from(0), charge=False)
        self.system_log.append(TxnPrepareRecord(txn.txn_id, gid))
        # A prepare always flushes, and the flush covers any commits a
        # group-commit window was holding (they precede it in the log).
        self.system_log.flush()
        with self._gc_lock:
            self._commits_since_flush = 0
        self.meter.charge("txn_prepare")
        txn.gid = gid
        txn.status = TxnStatus.PREPARED
        self.system_log.crashpoints.reach("twopc.after_prepare")

    def commit_prepared(self, txn: Transaction) -> None:
        """Phase two, commit decision: finish a prepared branch."""
        if txn.status is not TxnStatus.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.status.value}, not prepared"
            )
        self.system_log.append(TxnCommitRecord(txn.txn_id))
        # The decision is already durable at the coordinator; flushing here
        # just shrinks the in-doubt window the resolver must cover.
        self.system_log.flush()
        with self._gc_lock:
            self._commits_since_flush = 0
        self.meter.charge("txn_commit")
        txn.status = TxnStatus.COMMITTED
        self._release_txn_locks(txn)
        self.att.remove(txn.txn_id)
        with self._id_lock:
            self.committed_count += 1

    def abort_prepared(self, txn: Transaction) -> None:
        """Phase two, abort decision: roll back a prepared branch.

        The branch's undo log is intact (prepare only migrated redo), so
        flipping the status back to ``ACTIVE`` lets the normal
        :meth:`abort` path do the rollback and write the abort record.
        """
        if txn.status is not TxnStatus.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.status.value}, not prepared"
            )
        txn.status = TxnStatus.ACTIVE
        self.abort(txn)

    def flush_commits(self) -> None:
        """Make commits held back by a group-commit window durable.

        A no-op (not even a latch) when nothing is pending, so the
        default flush-per-commit configuration never reaches the meter
        through here.
        """
        with self._gc_lock:
            if self._commits_since_flush:
                self.system_log.flush()
                self._commits_since_flush = 0

    def _on_commit_tick(self, _event: str) -> None:
        """Tick task ``group_commit.flush`` -- the size trigger.

        Flushes once the window holds ``group_commit_size`` commits.
        Fired from :meth:`commit` right where the pre-scheduler code
        flushed inline; also safe to fire from an ``"interval"`` deadline
        tick, since a short window simply stays open.
        """
        with self._gc_lock:
            if self._commits_since_flush >= self.group_commit_size:
                self.system_log.flush()
                self._commits_since_flush = 0

    def _release_txn_locks(self, txn: Transaction) -> None:
        for _key in self.locks.locks_held(txn.txn_id):
            self.meter.charge("lock_release")
        self.locks.release_all(txn.txn_id)

    # ------------------------------------------------------- operations

    def begin_operation(self, txn: Transaction, object_key: str) -> Operation:
        txn.require_active()
        # A coalescing window belongs to the enclosing operation; close it
        # before a nested operation opens so its undo entries stay inside
        # the right operation scope.
        if txn.pending_update is not None and txn.pending_update.coalescing:
            self.end_update(txn)
        with self._id_lock:
            op_id = self._next_op_id
            self._next_op_id += 1
        op = Operation(
            op_id=op_id,
            level=txn.depth + 1,
            object_key=object_key,
            redo_mark=txn.redo_log.mark(),
            undo_mark=len(txn.undo_log.entries),
        )
        txn.op_stack.append(op)
        self.meter.charge("op_begin")
        return op

    def commit_operation(self, txn: Transaction, logical_undo: LogicalUndo) -> None:
        txn.require_active()
        op = txn.current_op
        if txn.pending_update is not None:
            if txn.pending_update.coalescing:
                # Implicit batch window: flush it so its redo records are
                # in the local log before they migrate with this commit.
                self.end_update(txn)
            else:
                raise TransactionError(
                    f"operation {op.op_id} commits with an open update window"
                )
        # Move redo records to the system log tail bracketed by OpBegin /
        # OpCommit, then replace physical undo with the logical undo --
        # all before lock release.  The OpBegin record is synthesized here
        # rather than at begin_operation so it carries the operation's
        # final object key (an insert only knows its slot after
        # allocation); order in the system log is unchanged since local
        # records only migrate at commit anyway.
        migrated = txn.redo_log.take_from(op.redo_mark)
        self.system_log.append(
            OpBeginRecord(txn.txn_id, op.op_id, op.level, op.object_key)
        )
        self.system_log.extend(migrated, charge=False)
        self.system_log.append(
            OpCommitRecord(txn.txn_id, op.op_id, op.level, op.object_key, logical_undo)
        )
        # Replace the operation's undo entries with one logical undo.
        del txn.undo_log.entries[op.undo_mark :]
        txn.undo_log.entries.append(
            LogicalUndoEntry(
                seq=self._take_seq(),
                op_id=op.op_id,
                level=op.level,
                object_key=op.object_key,
                undo=logical_undo,
            )
        )
        txn.op_stack.pop()
        self.locks.release_operation(txn.txn_id, op.op_id)
        self.scheme.on_operation_end(txn)
        self.meter.charge("op_commit")

    def abort_operation(self, txn: Transaction) -> None:
        """Roll back the innermost open operation."""
        txn.require_active()
        op = txn.current_op
        self._rollback_pending_update(txn)
        tail = txn.undo_log.entries[op.undo_mark :]
        del txn.undo_log.entries[op.undo_mark :]
        for entry in reversed(tail):
            if isinstance(entry, PhysicalUndo):
                self._apply_physical_undo(txn, entry)
            else:
                self._execute_logical_undo(txn, entry.undo)
        # Inverse operations appended fresh undo entries; this operation's
        # scope is fully compensated, so drop them.
        del txn.undo_log.entries[op.undo_mark :]
        txn.redo_log.discard_from(op.redo_mark)
        txn.op_stack.pop()
        self.locks.release_operation(txn.txn_id, op.op_id)
        self.scheme.on_operation_end(txn)

    def _execute_logical_undo(self, txn: Transaction, undo: LogicalUndo) -> None:
        if undo.op_name == "noop":
            return
        if self.undo_executor is None:
            raise TransactionError(
                f"no undo executor installed; cannot run logical undo "
                f"{undo.op_name!r}"
            )
        self.undo_executor(txn, undo)

    def _apply_physical_undo(self, txn: Transaction, entry: PhysicalUndo) -> None:
        """Restore a before-image; the scheme handles codeword/MMU details."""
        self.scheme.apply_physical_undo(txn, entry)
        self.meter.charge("undo_apply")

    def _rollback_pending_update(self, txn: Transaction) -> None:
        """Close an update window left open by an error path.

        A multi-region window rolls back every captured range,
        newest-first; none of its codewords moved (``end_update`` never
        ran), so the physical undos restore bytes only.
        """
        if txn.pending_update is None:
            return
        pending = txn.pending_update
        txn.pending_update = None
        first = pending.regions[0].undo_index
        entries = txn.undo_log.entries[first:]
        if len(entries) != len(pending.regions) or not all(
            isinstance(entry, PhysicalUndo) for entry in entries
        ):  # pragma: no cover
            raise TransactionError("pending update lost its undo entries")
        del txn.undo_log.entries[first:]
        if len(pending.regions) == 1:
            self.scheme.close_update_window(txn, pending.address, pending.length)
        else:
            self.scheme.close_update_window_batch(
                txn, [(r.address, r.length) for r in pending.regions]
            )
        for entry in reversed(entries):
            self._apply_physical_undo(txn, entry)

    # ------------------------------------------------------------ locks

    def lock(
        self,
        txn: Transaction,
        key: str,
        mode: LockMode = LockMode.EXCLUSIVE,
        duration: str = "txn",
    ) -> None:
        op_id = txn.op_stack[-1].op_id if txn.op_stack else None
        self.locks.acquire(txn.txn_id, key, mode, duration, op_id)
        self.meter.charge("lock_acquire")

    # -------------------------------------------------- prescribed I/O

    def read(self, txn: Transaction, address: int, length: int) -> bytes:
        """Prescribed read; protection schemes hook here (precheck, read log)."""
        txn.require_active()
        if txn.pending_update is not None and txn.pending_update.coalescing:
            # Close the implicit batch window before the read hooks run: a
            # precheck would need the window's protection latches, and read
            # logging must see the update records in order.
            self.end_update(txn)
        if self.quarantine_guard is not None:
            self.quarantine_guard(txn, address, length)
        self.scheme.on_read(txn, address, length)
        if not txn.op_stack and txn.redo_log.records:
            # A read outside any operation has no operation commit to ride
            # to the system log; migrate its read record immediately so
            # the log preserves read-before-subsequent-write order, which
            # delete-transaction recovery relies on for tracing.
            self.system_log.extend(txn.redo_log.take_from(0), charge=False)
        return self.memory.read(address, length)

    def begin_update(self, txn: Transaction, address: int, length: int) -> None:
        """Open an update window: capture the undo image, notify the scheme."""
        self._open_window(txn, [(address, length)], coalescing=False)

    def begin_updates(
        self, txn: Transaction, regions: list[tuple[int, int]]
    ) -> None:
        """Open one update window covering several ``(address, length)``
        ranges at once.

        The batch window is the multi-region generalisation of
        ``begin_update``: one scheme notification latches every spanned
        protection region, the undo images are captured range by range,
        and the matching ``end_update`` folds the whole batch's codeword
        deltas through the vectorized kernel in a single call.  Meter
        charges are identical, event for event, to opening and closing the
        same ranges as individual scalar windows (``Meter.charge`` is
        linear, so bulk charging cannot move any Table 2 number).
        """
        self._open_window(txn, [(int(a), int(n)) for a, n in regions], coalescing=False)

    def _open_window(
        self,
        txn: Transaction,
        regions: list[tuple[int, int]],
        coalescing: bool,
    ) -> None:
        txn.require_active()
        op = txn.current_op  # updates must happen inside an operation
        if txn.pending_update is not None:
            if txn.pending_update.coalescing and not coalescing:
                # An explicit window open flushes the implicit batch first.
                self.end_update(txn)
            else:
                raise TransactionError(
                    f"transaction {txn.txn_id} already has an open update window"
                )
        if not regions:
            raise TransactionError("begin_updates needs at least one region")
        if len(regions) > 1 and not coalescing:
            # Explicit batch windows capture every undo image up front, so
            # overlapping ranges would double-count codeword deltas and
            # replay stale bytes on redo; a coalescing window may revisit
            # an address because its undo images are captured sequentially.
            ordered = sorted(regions)
            for (a, n), (b, _m) in zip(ordered, ordered[1:]):
                if a + n > b:
                    raise TransactionError(
                        f"begin_updates ranges overlap at {b:#x}; batch "
                        "window ranges must be pairwise disjoint"
                    )
        if len(regions) == 1:
            self.scheme.on_begin_update(txn, regions[0][0], regions[0][1])
        else:
            self.scheme.on_begin_update_batch(txn, regions)
        window: list[WindowRegion] = []
        total = 0
        for address, length in regions:
            undo_image = self.memory.read(address, length)
            entry = PhysicalUndo(
                seq=self._take_seq(),
                op_id=op.op_id,
                address=address,
                image=undo_image,
                codeword_applied=False,
            )
            txn.undo_log.append_physical(entry)
            window.append(
                WindowRegion(
                    address=address,
                    length=length,
                    undo_image=undo_image,
                    undo_index=len(txn.undo_log.entries) - 1,
                )
            )
            total += length
        txn.pending_update = PendingUpdate(regions=window, coalescing=coalescing)
        count = len(regions)
        self.meter.charge("begin_update", count)
        self.meter.charge("log_record", count)
        self.meter.charge("log_byte", total)

    def _extend_window(self, txn: Transaction, address: int, length: int) -> None:
        """Add one more range to an open coalescing window."""
        pending = txn.pending_update
        assert pending is not None and pending.coalescing
        op = txn.current_op
        # The scalar hook latches the new range's regions; latches are
        # reentrant, so a region already covered by the window simply
        # nests (and still pays its per-range latch_pair, as N scalar
        # windows would).
        self.scheme.on_begin_update(txn, address, length)
        undo_image = self.memory.read(address, length)
        entry = PhysicalUndo(
            seq=self._take_seq(),
            op_id=op.op_id,
            address=address,
            image=undo_image,
            codeword_applied=False,
        )
        txn.undo_log.append_physical(entry)
        pending.add_region(
            WindowRegion(
                address=address,
                length=length,
                undo_image=undo_image,
                undo_index=len(txn.undo_log.entries) - 1,
            )
        )
        # The begin-side charges (begin_update/log_record/log_byte, same
        # events the scalar path charges per window) are deferred to the
        # window close and paid in bulk there -- Meter.charge is linear,
        # so the totals are identical on every committed path.  A window
        # rolled back while still open skips them, consistent with the
        # documented abort divergence (the fold charges are skipped too).
        pending.uncharged_ranges += 1
        pending.uncharged_bytes += length

    def write(self, txn: Transaction, address: int, data: bytes) -> None:
        """Write inside the currently open update window.

        The bytes are tracked in exactly one range of the window -- the
        *latest* one fully containing the write.  That keeps the
        per-region codeword delta chain sequential when a coalescing
        window revisits an address (each region's ``undo_image`` was
        captured after the previous region's writes, so its delta must
        see only its own writes; folding the final bytes into every
        intersecting region would double-count the delta).
        """
        pending = self._require_pending(txn)
        length = len(data)
        end = address + length
        regions = pending.regions
        # Fast path: the write covers a whole range exactly (how
        # ``update()`` and the record-level storage code write).
        target = pending.exact_region(address, length)
        if target is None:
            for region in reversed(regions):
                if region.address <= address and end <= region.address + region.length:
                    target = region
                    break
        if target is None:
            raise TransactionError(
                f"write of {length} bytes at {address:#x} is outside the "
                f"open update window"
            )
        target.new_image[address - target.address : end - target.address] = data
        self.memory.write(address, data)

    def end_update(self, txn: Transaction) -> None:
        """Close the update window: maintain codewords, log the redo images.

        The redo image of each range comes from the bytes tracked by
        :meth:`write` (byte-identical to re-reading the window from
        memory, without the copy).  A multi-region window folds all its
        codeword deltas through one batch scheme hook.
        """
        pending = self._require_pending(txn)
        regions = pending.regions
        if pending.uncharged_ranges:
            # Begin-side charges deferred by coalescing extensions.
            self.meter.charge("begin_update", pending.uncharged_ranges)
            self.meter.charge("log_record", pending.uncharged_ranges)
            self.meter.charge("log_byte", pending.uncharged_bytes)
        if len(regions) == 1:
            region = regions[0]
            new_image = bytes(region.new_image)
            old_checksum = self.scheme.on_end_update(
                txn, region.address, region.undo_image, new_image
            )
            entry = txn.undo_log.entries[region.undo_index]
            if isinstance(entry, PhysicalUndo):
                entry.codeword_applied = True
            txn.redo_log.append(
                UpdateRecord(txn.txn_id, region.address, new_image, old_checksum)
            )
            txn.pending_update = None
            self.meter.charge("end_update")
            self.meter.charge("log_record")
            self.meter.charge("log_byte", len(new_image))
            return
        items = [(r.address, r.undo_image, bytes(r.new_image)) for r in regions]
        checksums = self.scheme.on_end_update_batch(txn, items)
        total = 0
        for region, (address, _old, new_image), checksum in zip(
            regions, items, checksums
        ):
            entry = txn.undo_log.entries[region.undo_index]
            if isinstance(entry, PhysicalUndo):
                entry.codeword_applied = True
            txn.redo_log.append(
                UpdateRecord(txn.txn_id, address, new_image, checksum)
            )
            total += len(new_image)
        txn.pending_update = None
        count = len(regions)
        self.meter.charge("end_update", count)
        self.meter.charge("log_record", count)
        self.meter.charge("log_byte", total)

    def update(self, txn: Transaction, address: int, data: bytes) -> None:
        """Convenience: begin_update + write + end_update.

        With ``update_batch > 1`` consecutive calls coalesce into one
        multi-region window that closes after every ``update_batch``-th
        range (or at the next read/operation boundary), batching the undo
        capture and the codeword folds.
        """
        if self.update_batch > 1:
            pending = txn.pending_update
            if pending is not None and pending.coalescing:
                self._extend_window(txn, address, len(data))
            else:
                self._open_window(txn, [(address, len(data))], coalescing=True)
            self.write(txn, address, data)
            if len(txn.pending_update.regions) >= self.update_batch:
                self.end_update(txn)
            return
        self.begin_update(txn, address, len(data))
        self.write(txn, address, data)
        self.end_update(txn)

    def _require_pending(self, txn: Transaction) -> PendingUpdate:
        txn.require_active()
        if txn.pending_update is None:
            raise TransactionError(
                f"transaction {txn.txn_id} has no open update window; writes "
                "must be bracketed by begin_update/end_update"
            )
        return txn.pending_update

    def _take_seq(self) -> int:
        with self._id_lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq
