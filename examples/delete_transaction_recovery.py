"""Tracing indirect corruption with read logging (Section 4).

An inventory system takes orders.  A wild write corrupts one product's
stock count; a replenishment transaction *reads* the corrupt count and
writes a purchase order based on it -- indirect, transaction-carried
corruption.  A later audit catches the direct corruption, the system
crashes into delete-transaction recovery, and the read-log audit trail
traces exactly which committed transactions carried the corruption.
Those transactions are deleted from history and reported to the operator
for manual compensation; everything else survives.

Run:  python examples/delete_transaction_recovery.py
"""

import shutil
import tempfile

from repro import Database, DBConfig, FaultInjector, Field, FieldType, Schema

DB_DIR = tempfile.mkdtemp(prefix="repro-inventory-")

PRODUCT = Schema(
    [
        Field("sku", FieldType.INT64),
        Field("stock", FieldType.INT64),
        Field("name", FieldType.CHAR, 20),
    ]
)
ORDER = Schema(
    [
        Field("order_id", FieldType.INT64),
        Field("sku", FieldType.INT64),
        Field("quantity", FieldType.INT64),
    ]
)

# cw_read_logging: read records carry checksums, so recovery is precise
# (view-consistent): only transactions that actually read corrupted
# values are deleted.
config = DBConfig(dir=DB_DIR, scheme="cw_read_logging")
db = Database(config)
db.create_table("product", PRODUCT, capacity=1000, key_field="sku")
db.create_table("purchase_order", ORDER, capacity=1000, key_field="order_id")
db.start()

products = db.table("product")
orders = db.table("purchase_order")

txn = db.begin()
for sku in range(20):
    products.insert(txn, {"sku": sku, "stock": 50, "name": f"widget-{sku}"})
db.commit(txn)
db.checkpoint()

# --- normal business ---------------------------------------------------
txn = db.begin()
products.update(txn, products.lookup(txn, 3), {"stock": lambda s: s - 5})
db.commit(txn)
sale_txn = txn.txn_id
print(f"T{sale_txn}: sold 5 of widget-3 (clean)")

# --- the addressing error ----------------------------------------------
slot_7 = 7  # widget-7's slot
stock_field = PRODUCT.offset_of("stock")
event = FaultInjector(db, seed=2).wild_write(
    products.record_address(slot_7) + stock_field, 8
)
print(f"wild write corrupted widget-7's stock count at {event.address:#x}")

# --- a transaction CARRIES the corruption -------------------------------
txn = db.begin()
bogus_stock = products.read(txn, products.lookup(txn, 7))["stock"]
orders.insert(
    txn, {"order_id": 1, "sku": 7, "quantity": max(0, 100 - bogus_stock) % 1000}
)
db.commit(txn)
replenish_txn = txn.txn_id
print(f"T{replenish_txn}: read bogus stock {bogus_stock}, wrote a purchase order")

# --- an unrelated transaction stays clean --------------------------------
txn = db.begin()
products.update(txn, products.lookup(txn, 12), {"stock": lambda s: s + 10})
db.commit(txn)
restock_txn = txn.txn_id
print(f"T{restock_txn}: restocked widget-12 (clean)")

# --- audit, crash, recover ----------------------------------------------
report = db.audit()
print(f"\naudit clean: {report.clean}; corrupt regions: {report.corrupt_regions}")
db.crash_with_corruption(report)

db2, recovery = Database.recover(config)
print(f"recovery mode: {recovery.mode}")
print(f"deleted committed transactions: {sorted(recovery.deleted_set)}")
print(f"recruitment reasons: {recovery.recruited}")
print(f"writes suppressed during redo: {recovery.writes_suppressed}")

assert recovery.deleted_set == {replenish_txn}, "only the carrier is deleted"

txn = db2.begin()
p = db2.table("product")
o = db2.table("purchase_order")
print("\nafter recovery:")
print("  widget-7 stock :", p.read(txn, p.lookup(txn, 7))["stock"], "(restored)")
print("  widget-3 stock :", p.read(txn, p.lookup(txn, 3))["stock"], "(sale kept)")
print("  widget-12 stock:", p.read(txn, p.lookup(txn, 12))["stock"], "(restock kept)")
print("  purchase order :", o.lookup(txn, 1), "(carried write removed)")
assert p.read(txn, p.lookup(txn, 7))["stock"] == 50
assert p.read(txn, p.lookup(txn, 3))["stock"] == 45
assert p.read(txn, p.lookup(txn, 12))["stock"] == 60
assert o.lookup(txn, 1) is None
db2.commit(txn)

print(
    f"\noperator action required: manually compensate transaction(s) "
    f"{sorted(recovery.deleted_set)} (e.g. cancel the purchase order sent "
    f"to the supplier)"
)

db2.close()
shutil.rmtree(DB_DIR)
print("ok")
