"""Banking under Read Prechecking: corruption is *prevented*, not just found.

Scenario (the paper's motivating setting): a performance-critical banking
application is linked into the same address space as the storage manager.
A bug in the application scribbles over an account record.  With Read
Prechecking, the next transaction that tries to read that account fails
its codeword precheck -- the corrupt balance is never served, never used
to compute an interest payment, never written anywhere else.  Cache
recovery then repairs the region in place from the checkpoint + log, with
no downtime.

Run:  python examples/banking_prevention.py
"""

import shutil
import tempfile

from repro import Database, DBConfig, FaultInjector, Field, FieldType, Schema
from repro.errors import CorruptionDetected
from repro.recovery.cache_recovery import repair_regions

DB_DIR = tempfile.mkdtemp(prefix="repro-banking-")

ACCOUNT = Schema(
    [
        Field("acct_no", FieldType.INT64),
        Field("balance_cents", FieldType.INT64),
        Field("owner", FieldType.CHAR, 32),
    ]
)

# 64-byte protection regions: 6.25% space overhead, ~12% throughput cost
# (Table 2), in exchange for a hard guarantee that corrupt data is never
# read by a transaction.
config = DBConfig(dir=DB_DIR, scheme="precheck", scheme_params={"region_size": 64})
db = Database(config)
db.create_table("account", ACCOUNT, capacity=10_000, key_field="acct_no")
db.start()

accounts = db.table("account")
txn = db.begin()
for acct_no in range(100):
    accounts.insert(
        txn,
        {"acct_no": acct_no, "balance_cents": 1_000_00, "owner": f"customer-{acct_no}"},
    )
db.commit(txn)
db.checkpoint()


def transfer(db, src_no: int, dst_no: int, cents: int) -> bool:
    """A transfer transaction; prechecks guard every read it performs."""
    txn = db.begin()
    try:
        src = accounts.lookup(txn, src_no)
        dst = accounts.lookup(txn, dst_no)
        accounts.update(txn, src, {"balance_cents": lambda b: b - cents})
        accounts.update(txn, dst, {"balance_cents": lambda b: b + cents})
        db.commit(txn)
        return True
    except CorruptionDetected as exc:
        print(f"  transfer blocked: {exc}")
        db.abort(txn)
        # Online repair: reload the region from the certified checkpoint
        # and replay the log over it.  No crash, no restart.
        repaired = repair_regions(db, exc.region_ids)
        print(f"  cache recovery repaired {repaired} region(s) in place")
        return False


# Normal operation.
assert transfer(db, 1, 2, 25_00)
txn = db.begin()
print("acct 2 balance:", accounts.read(txn, accounts.lookup(txn, 2)))
db.commit(txn)

# The co-resident application scribbles over account 7's record.
event = FaultInjector(db, seed=4).corrupt_record("account", 7)
print(f"\napplication bug wrote {event.length} bytes over account 7")

# The transfer touching account 7 is BLOCKED -- the corrupt balance is
# never used -- and the region is repaired online.
assert not transfer(db, 7, 2, 10_00)

# After repair the same transfer succeeds with the correct balance.
assert transfer(db, 7, 2, 10_00)
txn = db.begin()
row = accounts.read(txn, accounts.lookup(txn, 7))
db.commit(txn)
print(f"\naccount 7 after repair + transfer: {row}")
assert row["balance_cents"] == 1_000_00 - 10_00

# Money never leaked: total balance is conserved.
txn = db.begin()
total = sum(
    accounts.read(txn, slot)["balance_cents"] for slot in accounts.scan_slots(txn)
)
db.commit(txn)
assert total == 100 * 1_000_00
print(f"total deposits conserved: {total / 100:,.2f}")

db.close()
shutil.rmtree(DB_DIR)
print("ok")
