"""Regenerate the paper's tables at a reduced scale.

Prints Table 1 (mprotect performance across platforms) and Table 2 (cost
of corruption protection on the TPC-B workload), with the paper's
published numbers alongside.  Scale and output are controlled by two
environment variables:

  REPRO_SCALE   fraction of the paper's database/operation count
                (default 0.02; 1.0 = the full 100k-account setup)

Run:  python examples/scheme_comparison.py
"""

import os
import shutil
import tempfile
import time

from repro.bench.harness import TABLE2_ROWS, run_scheme
from repro.bench.platforms import PLATFORMS, mprotect_microbenchmark
from repro.bench.reporting import render_table1, render_table2
from repro.bench.tpcb import TPCBConfig

SCALE = float(os.environ.get("REPRO_SCALE", "0.02"))

# ---------------------------------------------------------- Table 1
print("Reproducing Table 1 (protect/unprotect microbenchmark)...\n")
measured = {
    name: mprotect_microbenchmark(profile) for name, profile in PLATFORMS.items()
}
print(render_table1(measured))

# ---------------------------------------------------------- Table 2
workload = TPCBConfig().scaled(SCALE)
print(
    f"\nReproducing Table 2 at scale {SCALE} "
    f"({workload.accounts:,} accounts, {workload.operations:,} operations; "
    f"set REPRO_SCALE=1.0 for the paper's full configuration)...\n"
)

workdir = tempfile.mkdtemp(prefix="repro-table2-")
results = []
baseline = None
for spec in TABLE2_ROWS:
    started = time.time()
    result = run_scheme(spec, workload, os.path.join(workdir, spec.scheme_dir()))
    if baseline is None:
        baseline = result.ops_per_sec
        result.slowdown_pct = 0.0
    else:
        result.slowdown_pct = 100.0 * (1.0 - result.ops_per_sec / baseline)
    results.append(result)
    print(f"  {spec.label:32s} done in {time.time() - started:5.1f}s wall")

print()
print(render_table2(results))

print(
    "\nOps/Sec above is virtual-time throughput from the calibrated cost "
    "model\n(event counts measured from the real implementation; see "
    "DESIGN.md)."
)
shutil.rmtree(workdir)
