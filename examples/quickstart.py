"""Quickstart: a protected main-memory database in ~60 lines.

Creates a database with codeword protection and read logging, runs a few
transactions, detects an injected wild write with an audit, and recovers.

Run:  python examples/quickstart.py
"""

import shutil
import tempfile

from repro import Database, DBConfig, FaultInjector, Field, FieldType, Schema

DB_DIR = tempfile.mkdtemp(prefix="repro-quickstart-")

# 1. Define and start a database.  "cw_read_logging" is the paper's most
# capable scheme: codeword detection of direct corruption plus a read-log
# audit trail precise enough for view-consistent corruption recovery.
config = DBConfig(dir=DB_DIR, scheme="cw_read_logging")
db = Database(config)
db.create_table(
    "user",
    Schema(
        [
            Field("uid", FieldType.INT64),
            Field("karma", FieldType.INT64),
            Field("name", FieldType.CHAR, 24),
        ]
    ),
    capacity=1000,
    key_field="uid",
)
db.start()

# 2. Transactions: every update goes through the prescribed interface
# (begin_update/end_update under the hood), so codewords stay consistent.
users = db.table("user")
txn = db.begin()
for uid, name in enumerate(["ada", "grace", "edsger"]):
    users.insert(txn, {"uid": uid, "karma": 100, "name": name})
db.commit(txn)

txn = db.begin()
slot = users.lookup(txn, 1)
users.update(txn, slot, {"karma": lambda k: k + 42})
print("grace:", users.read(txn, slot))
db.commit(txn)

# 3. Checkpoints are audited before the anchor toggles, so the disk image
# is certified free of corruption.
result = db.checkpoint()
print(f"checkpoint image {result.image} certified: {result.certified}")

# 4. An addressing error (wild write) bypasses the prescribed interface...
event = FaultInjector(db, seed=0).corrupt_record("user", slot)
print(f"wild write of {event.length} bytes at {event.address:#x}")

# ...and the next audit catches it.
report = db.audit()
print(f"audit clean: {report.clean}, corrupt regions: {report.corrupt_regions}")

# 5. Note the corruption, crash, and let delete-transaction recovery
# produce a consistent image (here nothing read the corrupt data, so no
# committed transaction needs to be deleted).
db.crash_with_corruption(report)
db2, recovery = Database.recover(config)
print(f"recovery mode: {recovery.mode}, deleted committed txns: "
      f"{sorted(recovery.deleted_set)}")

txn = db2.begin()
print("grace after recovery:", db2.table("user").read(txn, slot))
db2.commit(txn)
assert db2.audit().clean

db2.close()
shutil.rmtree(DB_DIR)
print("ok")
