"""Repairing a fat-fingered transaction with the read-log audit trail.

The paper's abstract: read logging "may also prove useful when resolving
problems caused by incorrect data entry and other logical errors."  No
codeword can catch a *legitimate* transaction that entered wrong data --
but once a human identifies it, the read log traces everything it
tainted, and the delete-transaction machinery removes the lot.

Scenario: a payroll clerk types a salary of 8,000,000 instead of 80,000.
A bonus-calculation transaction reads the bad salary and writes a bonus
based on it.  The operator first *queries* the audit trail to see the
blast radius, then deletes the bad transaction and its taint.

Run:  python examples/logical_repair.py
"""

import shutil
import tempfile

from repro import Database, DBConfig, Field, FieldType, Schema
from repro.recovery.logical import delete_transactions, trace_readers

DB_DIR = tempfile.mkdtemp(prefix="repro-payroll-")

EMPLOYEE = Schema(
    [
        Field("emp_id", FieldType.INT64),
        Field("salary", FieldType.INT64),
        Field("bonus", FieldType.INT64),
        Field("name", FieldType.CHAR, 20),
    ]
)

config = DBConfig(dir=DB_DIR, scheme="read_logging")
db = Database(config)
db.create_table("employee", EMPLOYEE, capacity=1000, key_field="emp_id")
db.start()

employees = db.table("employee")
txn = db.begin()
for emp_id, name in enumerate(["amara", "boris", "chen", "divya"]):
    employees.insert(
        txn, {"emp_id": emp_id, "salary": 80_000, "bonus": 0, "name": name}
    )
db.commit(txn)
db.checkpoint()

# --- the fat-fingered data entry -----------------------------------------
txn = db.begin()
slot_boris = employees.lookup(txn, 1)
employees.update(txn, slot_boris, {"salary": 8_000_000})  # oops: 100x
db.commit(txn)
bad_txn = txn.txn_id
print(f"T{bad_txn}: clerk set boris's salary to 8,000,000 (meant 80,000)")

# --- downstream work based on the bad value -------------------------------
txn = db.begin()
salary = employees.read(txn, slot_boris)["salary"]
employees.update(txn, slot_boris, {"bonus": salary // 10})
db.commit(txn)
bonus_txn = txn.txn_id
print(f"T{bonus_txn}: bonus run computed boris's bonus from the bad salary")

txn = db.begin()
slot_chen = employees.lookup(txn, 2)
employees.update(txn, slot_chen, {"bonus": 8_000})
db.commit(txn)
clean_txn = txn.txn_id
print(f"T{clean_txn}: chen's bonus set independently (clean)")

# --- step 1: query the audit trail ----------------------------------------
boris_range = [(employees.record_address(slot_boris), EMPLOYEE.record_size)]
readers = trace_readers(db, boris_range)
print(
    f"\naudit trail: transactions that read boris's record: "
    f"{sorted(t for t in readers if t != bad_txn)}"
)

# --- step 2: delete the bad transaction and its taint ---------------------
db.crash()
db2, report = delete_transactions(config, [bad_txn])
print(f"\nrecovery mode: {report.mode}")
print(f"deleted from history: {sorted(report.deleted_set)}")
print(f"reasons: {report.recruited}")

txn = db2.begin()
e = db2.table("employee")
boris = e.read(txn, e.lookup(txn, 1))
chen = e.read(txn, e.lookup(txn, 2))
db2.commit(txn)
print(f"\nboris after repair: salary={boris['salary']:,} bonus={boris['bonus']:,}")
print(f"chen  after repair: bonus={chen['bonus']:,} (untouched)")
assert boris["salary"] == 80_000 and boris["bonus"] == 0
assert chen["bonus"] == 8_000
assert report.deleted_set == {bad_txn, bonus_txn}

print(
    "\noperator action: re-enter boris's salary correctly and re-run the "
    "bonus calculation for him."
)
db2.close()
shutil.rmtree(DB_DIR)
print("ok")
