"""Event accounting: the benchmark's decomposability guarantee.

Every Table 2 slowdown must be explainable as "N events of kind K at C ns
each"; these tests pin down the per-operation event counts that the cost
model multiplies.
"""

from repro import DBConfig
from repro.bench.tpcb import TPCBConfig, TPCBWorkload, build_tpcb_database, load_tpcb

TINY = TPCBConfig(accounts=200, tellers=40, branches=4, operations=40, ops_per_txn=10)


def run_workload(tmp_path, scheme, subdir=None, **params):
    db = build_tpcb_database(
        DBConfig(
            dir=str(tmp_path / (subdir or scheme)),
            scheme=scheme,
            scheme_params=params,
        ),
        TINY,
    )
    load_tpcb(db, TINY)
    db.meter.reset()
    TPCBWorkload(db, TINY).run()
    events = db.meter.snapshot()
    db.close()
    return {k: c / TINY.operations for k, (c, _ns) in events.items()}


class TestBaselineCounts:
    def test_per_operation_event_profile(self, tmp_path):
        per_op = run_workload(tmp_path, "baseline")
        # One TPC-B operation = 3 balance updates + 1 history insert.
        assert per_op["base_operation"] == 1.0
        assert per_op["op_begin"] == per_op["op_commit"] == 4.0
        # 3 record updates x 1 field + history record + index entry +
        # bucket head + allocator bitmap + 2 header updates = 9 windows.
        assert per_op["begin_update"] == per_op["end_update"] == 9.0
        assert per_op["record_read"] == 3.0
        assert per_op["record_write"] == 4.0
        assert per_op["index_probe"] == 3.0
        assert per_op["index_update"] == 1.0

    def test_pages_touched_matches_paper_order_of_magnitude(self, tmp_path):
        """The paper observed ~11 pages updated per operation."""
        per_op = run_workload(tmp_path, "hardware")
        calls = per_op["mprotect_call"]
        # one expose + one cover per update window
        assert calls == 18.0
        windows = calls / 2
        assert 7 <= windows <= 13


class TestSchemeCounts:
    def test_data_cw_maintains_once_per_window(self, tmp_path):
        per_op = run_workload(tmp_path, "data_cw")
        assert per_op["cw_maint_fixed"] == per_op["end_update"] == 9.0
        # Small updates (8-byte balances) and a 100-byte insert: the fold
        # touches old+new images, tens of words per operation.
        assert 60 <= per_op["cw_maint_word"] <= 140

    def test_precheck_checks_scale_with_region_span(self, tmp_path):
        per_64 = run_workload(tmp_path, "precheck", subdir="p64", region_size=64)
        per_8k = run_workload(tmp_path, "precheck", subdir="p8k", region_size=8192)
        # Smaller regions -> a 100-byte record spans more regions -> more
        # checks; larger regions -> fewer checks but each folds more words.
        assert per_64["cw_check_fixed"] > per_8k["cw_check_fixed"]
        assert per_8k["cw_check_word"] > 10 * per_64["cw_check_word"]

    def test_read_logging_records_per_operation(self, tmp_path):
        per_op = run_workload(tmp_path, "read_logging")
        # 3 record reads + 3 index probes (2 reads each) + allocator and
        # index-internal reads: ~15-25 prescribed reads per operation.
        assert 12 <= per_op["readlog_record"] <= 28

    def test_checksummed_variant_adds_checksum_words(self, tmp_path):
        plain = run_workload(tmp_path, "read_logging")
        checksummed = run_workload(tmp_path, "cw_read_logging")
        assert "checksum_word" not in plain
        assert checksummed["checksum_word"] > 50
        # Same number of read records either way.
        assert checksummed["readlog_record"] == plain["readlog_record"]

    def test_virtual_time_equals_sum_of_event_times(self, tmp_path):
        db = build_tpcb_database(
            DBConfig(dir=str(tmp_path / "sum"), scheme="data_cw"), TINY
        )
        load_tpcb(db, TINY)
        db.meter.reset()
        start = db.clock.now_ns
        TPCBWorkload(db, TINY).run()
        elapsed = db.clock.now_ns - start
        accounted = sum(ns for _c, ns in db.meter.snapshot().values())
        assert elapsed == accounted
        db.close()
