"""Virtual clock, meter and cost model."""

import pytest

from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import CostModel, DEFAULT_COSTS


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(5)
        clock.advance(7)
        assert clock.now_ns == 12

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_now_seconds(self):
        clock = VirtualClock()
        clock.advance(2_500_000_000)
        assert clock.now_seconds == pytest.approx(2.5)


class TestMeter:
    def test_charge_advances_clock_by_unit_cost(self):
        clock = VirtualClock()
        meter = Meter(clock, DEFAULT_COSTS)
        meter.charge("latch_pair")
        assert clock.now_ns == DEFAULT_COSTS.unit_ns("latch_pair")

    def test_charge_count_multiplies(self):
        clock = VirtualClock()
        meter = Meter(clock, DEFAULT_COSTS)
        meter.charge("log_byte", 100)
        assert clock.now_ns == 100 * DEFAULT_COSTS.unit_ns("log_byte")
        assert meter.counts["log_byte"] == 100

    def test_unknown_event_raises(self):
        meter = Meter(VirtualClock(), DEFAULT_COSTS)
        with pytest.raises(KeyError):
            meter.charge("no_such_event")

    def test_charge_ns_explicit_duration(self):
        clock = VirtualClock()
        meter = Meter(clock, DEFAULT_COSTS)
        meter.charge_ns("mprotect_call", 12_345)
        assert clock.now_ns == 12_345
        assert meter.counts["mprotect_call"] == 1

    def test_snapshot_and_reset(self):
        meter = Meter(VirtualClock(), DEFAULT_COSTS)
        meter.charge("latch_pair", 3)
        snap = meter.snapshot()
        assert snap["latch_pair"] == (3, 3 * DEFAULT_COSTS.unit_ns("latch_pair"))
        meter.reset()
        assert meter.snapshot() == {}


class TestCostModel:
    def test_override_returns_new_model(self):
        derived = DEFAULT_COSTS.override(latch_pair=99)
        assert derived.unit_ns("latch_pair") == 99
        assert DEFAULT_COSTS.unit_ns("latch_pair") != 99

    def test_override_unknown_event_rejected(self):
        with pytest.raises(KeyError):
            DEFAULT_COSTS.override(bogus=1)

    def test_free_model_charges_nothing(self):
        clock = VirtualClock()
        meter = Meter(clock, CostModel.free())
        meter.charge("base_operation", 100)
        assert clock.now_ns == 0

    def test_free_model_covers_every_event(self):
        free = CostModel.free()
        for event in DEFAULT_COSTS.unit_costs:
            assert free.unit_ns(event) == 0
