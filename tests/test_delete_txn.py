"""Delete-transaction corruption recovery (Section 4.3)."""

import pytest

from repro import Database, FaultInjector
from repro.recovery.history import (
    check_conflict_consistent,
    check_view_consistent,
    expected_final_state,
)
from repro.recovery.restart import CorruptDataTable

from tests.conftest import insert_accounts


class TestCorruptDataTable:
    def test_empty_overlaps_nothing(self):
        assert not CorruptDataTable().overlaps(0, 100)

    def test_basic_overlap(self):
        cdt = CorruptDataTable()
        cdt.add(100, 50)
        assert cdt.overlaps(120, 10)
        assert cdt.overlaps(90, 20)
        assert cdt.overlaps(149, 1)
        assert not cdt.overlaps(150, 10)
        assert not cdt.overlaps(0, 100)

    def test_merge_adjacent(self):
        cdt = CorruptDataTable()
        cdt.add(0, 10)
        cdt.add(10, 10)
        assert len(cdt) == 1
        assert cdt.ranges == [(0, 20)]

    def test_merge_overlapping_and_swallowing(self):
        cdt = CorruptDataTable()
        cdt.add(0, 10)
        cdt.add(30, 10)
        cdt.add(5, 30)  # bridges both
        assert cdt.ranges == [(0, 40)]

    def test_disjoint_ranges_stay_separate(self):
        cdt = CorruptDataTable()
        cdt.add(0, 10)
        cdt.add(100, 10)
        assert len(cdt) == 2

    def test_zero_length_ignored(self):
        cdt = CorruptDataTable()
        cdt.add(5, 0)
        assert len(cdt) == 0
        assert not cdt.overlaps(5, 0)


def corrupted_db(db_factory, scheme, n_accounts=12, region_size=None):
    params = {} if region_size is None else {"region_size": region_size}
    db = db_factory(scheme=scheme, **params)
    slots = insert_accounts(db, n_accounts)
    db.checkpoint()
    return db, slots


def run_carrier_scenario(db, slots):
    """Wild write on account 1; T_carrier reads it and writes account 2."""
    table = db.table("acct")
    injector = FaultInjector(db, seed=7)
    injector.wild_write(table.record_address(slots[1]) + 8, 8)
    txn = db.begin()
    bad_balance = table.read(txn, slots[1])["balance"]
    table.update(txn, slots[2], {"balance": bad_balance})
    db.commit(txn)
    return txn.txn_id


class TestViewConsistentRecovery:
    """The checksum extension: precise, view-consistent delete histories."""

    def recover(self, db):
        report = db.audit()
        assert not report.clean
        db.crash_with_corruption(report)
        return Database.recover(db.config)

    def test_only_carrier_deleted(self, db_factory):
        db, slots = corrupted_db(db_factory, "cw_read_logging")
        table = db.table("acct")
        carrier = run_carrier_scenario(db, slots)
        txn = db.begin()
        table.update(txn, slots[5], {"balance": 555})  # clean bystander
        db.commit(txn)
        clean_txn = txn.txn_id
        db2, report = self.recover(db)
        assert report.mode == "delete-transaction-view"
        assert report.deleted_set == {carrier}
        assert clean_txn not in report.deleted_set
        txn = db2.begin()
        t2 = db2.table("acct")
        assert t2.read(txn, slots[2])["balance"] == 100  # carried write undone
        assert t2.read(txn, slots[5])["balance"] == 555  # bystander survives
        assert t2.read(txn, slots[1])["balance"] == 100  # direct corruption gone
        db2.commit(txn)

    def test_transitive_corruption_traced(self, db_factory):
        """T2 reads what the carrier wrote -> T2 is deleted too."""
        db, slots = corrupted_db(db_factory, "cw_read_logging")
        table = db.table("acct")
        carrier = run_carrier_scenario(db, slots)
        txn = db.begin()
        v = table.read(txn, slots[2])["balance"]  # reads carried corruption
        table.update(txn, slots[3], {"balance": v + 1})
        db.commit(txn)
        second_carrier = txn.txn_id
        db2, report = self.recover(db)
        assert report.deleted_set == {carrier, second_carrier}
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[3])["balance"] == 100
        db2.commit(txn)

    def test_history_oracles_hold(self, db_factory):
        db, slots = corrupted_db(db_factory, "cw_read_logging")
        table = db.table("acct")
        run_carrier_scenario(db, slots)
        txn = db.begin()
        table.update(txn, slots[6], {"balance": 606})
        db.commit(txn)
        history = db.history
        _db2, report = self.recover(db)
        # The checksum variant guarantees view-consistency (Section 4.3);
        # in this particular schedule conflict-consistency holds too.
        assert check_view_consistent(history, report.deleted_set) == []
        assert check_conflict_consistent(history, report.deleted_set) == []

    def test_final_state_matches_delete_history(self, db_factory):
        db, slots = corrupted_db(db_factory, "cw_read_logging")
        table = db.table("acct")
        run_carrier_scenario(db, slots)
        history = db.history
        db2, report = self.recover(db)
        expected = expected_final_state(history, report.deleted_set)
        txn = db2.begin()
        t2 = db2.table("acct")
        for (tbl, slot), value in expected.items():
            if tbl != "acct" or value is None:
                continue
            assert t2.read_bytes(txn, slot) == value
        db2.commit(txn)

    def test_recovery_runs_even_without_corruption_note(self, db_factory):
        """With checksummed read logs, every restart traces corruption."""
        db, slots = corrupted_db(db_factory, "cw_read_logging")
        carrier = run_carrier_scenario(db, slots)
        db.crash()  # a 'true' crash: no failed audit, no note
        db2, report = Database.recover(db.config)
        assert report.mode == "delete-transaction-view"
        assert carrier in report.deleted_set
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[2])["balance"] == 100
        db2.commit(txn)

    def test_post_recovery_database_is_certified(self, db_factory):
        db, slots = corrupted_db(db_factory, "cw_read_logging")
        run_carrier_scenario(db, slots)
        db2, _report = self.recover(db)
        assert db2.audit().clean
        # and the corruption note is gone
        import os

        assert not os.path.exists(db2.path("corruption.note"))


class TestViewNotConflictConsistent:
    """Section 4.3, last paragraph: the checksum algorithm produces a
    schedule that is view-consistent but NOT conflict-consistent -- it
    does not propagate deletion "when the corrupt transaction wrote the
    same data to a data item as it would have had in the delete-history".
    """

    def test_same_value_writer_does_not_recruit_reader(self, db_factory):
        db = db_factory(scheme="cw_read_logging")
        slots = insert_accounts(db, 4)
        db.checkpoint()
        table = db.table("acct")
        # Direct corruption on account 0's balance.
        FaultInjector(db, seed=1).wild_write(table.record_address(slots[0]) + 8, 8)
        # T_w reads corrupt account 0 (recruited later) but writes the
        # value account 1 ALREADY holds -- the same value it would have in
        # the delete history.
        txn = db.begin()
        table.read(txn, slots[0])
        table.update(txn, slots[1], {"balance": 100})  # writes 100 over 100
        db.commit(txn)
        writer = txn.txn_id
        # T_r reads account 1: conflict-wise it read from T_w, value-wise
        # it read exactly what the delete history holds.
        txn = db.begin()
        value = table.read(txn, slots[1])["balance"]
        table.update(txn, slots[2], {"balance": value + 1})
        db.commit(txn)
        reader = txn.txn_id
        report = db.audit()
        db.crash_with_corruption(report)
        _db2, recovery = Database.recover(db.config)
        assert writer in recovery.deleted_set
        assert reader not in recovery.deleted_set  # kept: view-consistent
        history = db.history
        from repro.recovery.history import (
            check_conflict_consistent as conflict_check,
            check_view_consistent as view_check,
        )

        assert view_check(history, recovery.deleted_set) == []
        # ...and the schedule genuinely violates conflict-consistency,
        # which is the paper's point, not a bug.
        assert conflict_check(history, recovery.deleted_set) != []


class TestConflictConsistentRecovery:
    """Plain read logging: region-granular CorruptDataTable tracing."""

    def recover(self, db):
        report = db.audit()
        assert not report.clean
        db.crash_with_corruption(report)
        return Database.recover(db.config)

    def test_carrier_deleted_conservatively(self, db_factory):
        # Small regions keep the corrupt range focused on one record.
        db, slots = corrupted_db(db_factory, "read_logging", region_size=32)
        carrier = run_carrier_scenario(db, slots)
        db2, report = self.recover(db)
        assert report.mode == "delete-transaction"
        assert carrier in report.deleted_set
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[2])["balance"] == 100
        db2.commit(txn)

    def test_conflict_consistency_oracle_holds(self, db_factory):
        db, slots = corrupted_db(db_factory, "read_logging", region_size=32)
        table = db.table("acct")
        run_carrier_scenario(db, slots)
        txn = db.begin()
        table.update(txn, slots[8], {"balance": 808})
        db.commit(txn)
        history = db.history
        _db2, report = self.recover(db)
        assert check_conflict_consistent(history, report.deleted_set) == []

    def test_reader_of_untouched_region_survives(self, db_factory):
        db, slots = corrupted_db(db_factory, "read_logging", region_size=32)
        table = db.table("acct")
        carrier = run_carrier_scenario(db, slots)
        txn = db.begin()
        table.update(txn, slots[9], {"balance": 909})
        db.commit(txn)
        bystander = txn.txn_id
        _db2, report = self.recover(db)
        assert carrier in report.deleted_set
        assert bystander not in report.deleted_set

    def test_writes_of_corrupt_txn_suppressed(self, db_factory):
        db, slots = corrupted_db(db_factory, "read_logging", region_size=32)
        carrier = run_carrier_scenario(db, slots)
        _db2, report = self.recover(db)
        assert report.writes_suppressed > 0
        assert report.recruited[carrier].startswith("read data")


class TestConflictRecruitment:
    def test_op_conflicting_with_corrupt_undo_recruited(self, db_factory):
        """A later op on the same object as a corrupt txn's undone op must
        be recruited, or the corrupt op could not be rolled back."""
        db, slots = corrupted_db(db_factory, "read_logging", region_size=32)
        table = db.table("acct")
        injector = FaultInjector(db, seed=9)
        injector.wild_write(table.record_address(slots[1]) + 8, 8)
        # T_carrier reads corrupt account 1, writes account 2, stays open
        # long enough for T_bystander to also write account 2?  Locks
        # prevent that; instead: carrier writes acct 2 and commits, then a
        # clean txn operates on acct 2 WITHOUT reading the corrupt value
        # region...  write_fields reads the bytes it overwrites, so use an
        # insert-style conflict: carrier deletes a record; a later txn
        # re-inserts into the freed slot.
        txn = db.begin()
        table.read(txn, slots[1])  # becomes corrupt at recovery
        table.delete(txn, slots[4])
        db.commit(txn)
        carrier = txn.txn_id
        txn = db.begin()
        new_slot = table.insert(txn, {"id": 200, "balance": 7})
        db.commit(txn)
        reuser = txn.txn_id
        assert new_slot == slots[4]  # allocator reused the freed slot
        report = db.audit()
        db.crash_with_corruption(report)
        db2, rec = Database.recover(db.config)
        assert carrier in rec.deleted_set
        assert reuser in rec.deleted_set
        reason = rec.recruited[reuser]
        assert "conflict" in reason or "read data" in reason
        # account 4 is back (delete was deleted from history)
        txn = db2.begin()
        assert db2.table("acct").lookup(txn, 4) == slots[4]
        db2.commit(txn)


class TestHardwareNeedsNoRecovery:
    def test_trap_leaves_nothing_to_recover(self, db_factory):
        from repro.errors import ProtectionFault

        db = db_factory(scheme="hardware")
        slots = insert_accounts(db, 3)
        db.checkpoint()
        injector = FaultInjector(db, seed=3)
        with pytest.raises(ProtectionFault):
            injector.wild_write(db.table("acct").record_address(slots[1]), 8)
        db.crash()
        db2, report = Database.recover(db.config)
        assert report.mode == "normal"
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[1])["balance"] == 100
        db2.commit(txn)
