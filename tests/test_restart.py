"""Normal restart recovery: crash at every interesting moment."""

import pytest

from repro import Database

from tests.conftest import insert_accounts


def reopen(db):
    return Database.recover(db.config)


def balances(db, slots):
    table = db.table("acct")
    txn = db.begin()
    result = {i: table.read(txn, slot)["balance"] for i, slot in slots.items()}
    db.commit(txn)
    return result


class TestCommittedWorkSurvives:
    def test_committed_after_checkpoint(self, db):
        slots = insert_accounts(db, 3)
        db.checkpoint()
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 777})
        db.commit(txn)
        db.crash()
        db2, report = reopen(db)
        assert report.mode == "normal"
        assert balances(db2, slots)[0] == 777
        assert report.redo_applied > 0

    def test_committed_without_any_explicit_checkpoint(self, db):
        """start() takes checkpoint 0; commits after it must replay."""
        slots = insert_accounts(db, 2)
        db.crash()
        db2, _report = reopen(db)
        assert balances(db2, slots) == {0: 100, 1: 100}

    def test_inserts_and_deletes_survive(self, db):
        slots = insert_accounts(db, 4)
        txn = db.begin()
        db.table("acct").delete(txn, slots[3])
        db.table("acct").insert(txn, {"id": 40, "balance": 40})
        db.commit(txn)
        db.crash()
        db2, _ = reopen(db)
        txn = db2.begin()
        table = db2.table("acct")
        assert table.lookup(txn, 3) is None
        assert table.read(txn, table.lookup(txn, 40))["balance"] == 40
        db2.commit(txn)

    def test_multiple_checkpoints_then_crash(self, db):
        slots = insert_accounts(db, 2)
        for value in (10, 20, 30):
            txn = db.begin()
            db.table("acct").update(txn, slots[0], {"balance": value})
            db.commit(txn)
            db.checkpoint()
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 40})
        db.commit(txn)
        db.crash()
        db2, _ = reopen(db)
        assert balances(db2, slots)[0] == 40

    def test_recovered_db_is_fully_usable(self, db):
        slots = insert_accounts(db, 2)
        db.crash()
        db2, _ = reopen(db)
        txn = db2.begin()
        table = db2.table("acct")
        table.update(txn, slots[0], {"balance": 1})
        table.insert(txn, {"id": 90, "balance": 9})
        db2.commit(txn)
        db2.checkpoint()
        db2.crash()
        db3, _ = reopen(db2)
        assert balances(db3, slots)[0] == 1


class TestInFlightWorkRolledBack:
    def test_uncommitted_txn_rolled_back(self, db):
        slots = insert_accounts(db, 2)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 999})
        # no commit -- but the operation committed, so its records reached
        # the system log only if a flush happened; force one via checkpoint
        db.checkpoint()
        db.crash()
        db2, report = reopen(db)
        assert balances(db2, slots)[0] == 100
        assert txn.txn_id in report.rolled_back

    def test_txn_open_across_checkpoint_rolled_back_from_att(self, db):
        """The checkpointed ATT's undo log drives rollback."""
        slots = insert_accounts(db, 2)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 555})
        db.checkpoint()  # txn open here; its undo log is in the checkpoint
        txn2 = db.begin()
        db.table("acct").update(txn2, slots[1], {"balance": 666})
        db.commit(txn2)
        db.crash()
        db2, report = reopen(db)
        result = balances(db2, slots)
        assert result[0] == 100   # rolled back
        assert result[1] == 666   # committed work preserved
        assert txn.txn_id in report.rolled_back

    def test_unflushed_commit_is_lost(self, db):
        """Commit flushes; but operations without commit may be unflushed."""
        slots = insert_accounts(db, 1)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 123})
        # operation committed into the tail, never flushed, txn never
        # committed; crash loses the tail entirely.
        db.crash()
        db2, report = reopen(db)
        assert balances(db2, slots)[0] == 100

    def test_open_update_window_at_checkpoint(self, db):
        """codeword_applied=False path through checkpointed undo."""
        slots = insert_accounts(db, 1)
        address = db.table("acct").record_address(slots[0])
        txn = db.begin()
        db.manager.begin_operation(txn, "w")
        db.manager.begin_update(txn, address, 8)
        db.manager.write(txn, address, b"\xaa" * 8)
        db.checkpoint()
        db.crash()
        db2, _ = reopen(db)
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["id"] == 0
        db2.commit(txn)


class TestCodewordsAfterRecovery:
    @pytest.mark.parametrize("scheme", ["data_cw", "precheck", "cw_read_logging"])
    def test_audit_clean_after_recovery(self, db_factory, scheme):
        db = db_factory(scheme=scheme)
        slots = insert_accounts(db, 5)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 1})
        db.commit(txn)
        db.crash()
        db2, _ = Database.recover(db.config)
        assert db2.audit().clean

    def test_hardware_reprotects_after_recovery(self, db_factory):
        db = db_factory(scheme="hardware")
        insert_accounts(db, 2)
        db.crash()
        db2, _ = Database.recover(db.config)
        assert db2.scheme.mmu.enforcing
        assert db2.scheme.mmu.protected_page_count == db2.memory.page_count


class TestLogContinuation:
    def test_lsns_continue_after_recovery(self, db):
        insert_accounts(db, 1)
        db.crash()
        db2, _ = reopen(db)
        lsns = [lsn for lsn, _ in db2.system_log.scan()]
        assert lsns == sorted(set(lsns))
        insert_accounts(db2, 1)  # triggers appends + flush
        lsns2 = [lsn for lsn, _ in db2.system_log.scan()]
        assert lsns2 == sorted(set(lsns2))
        assert len(lsns2) > len(lsns)

    def test_txn_ids_do_not_collide_after_recovery(self, db):
        txn = db.begin()
        db.commit(txn)
        db.crash()
        db2, _ = reopen(db)
        txn2 = db2.begin()
        assert txn2.txn_id > txn.txn_id
        db2.commit(txn2)
