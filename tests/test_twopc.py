"""Two-phase commit: prepare records, prepared-transaction API, and the
crash matrix over every coordinator/participant crash point.

The protocol is presumed-abort: a participant's prepare is durable on its
own WAL (a ``TxnPrepareRecord`` behind the normal codec), the
coordinator's only durable state is the fsync'd decision log of committed
gids, and recovery resolves in-doubt branches by asking "is this gid in
the decision log?".  A crash anywhere must leave the two shards
consistent: either both branches of a transfer applied or neither --
never lost or doubled funds.
"""

from __future__ import annotations

import os

import pytest

from repro import CrashPointRegistry, Database, DBConfig, Field, FieldType, Schema
from repro.errors import (
    ShardError,
    ShardUnavailableError,
    SimulatedCrash,
    TransactionError,
    TwoPhaseCommitError,
)
from repro.faults.crashpoints import CRASH_POINTS, TWOPC_CRASH_POINTS
from repro.shard import DecisionLog, ShardedConfig, ShardedDatabase
from repro.shard.core import ShardCore
from repro.txn.transaction import TxnStatus
from repro.wal.records import (
    RECORD_TYPE_CODES,
    RecordType,
    TxnPrepareRecord,
    decode_record,
    encode_record,
)

ACCOUNT_SCHEMA = Schema(
    [
        Field("aid", FieldType.INT64),
        Field("balance", FieldType.INT64),
    ]
)


class TestPrepareRecordCodec:
    def test_roundtrip(self):
        record = TxnPrepareRecord(txn_id=77, gid="g123")
        decoded, offset = decode_record(bytes(encode_record(record)))
        assert isinstance(decoded, TxnPrepareRecord)
        assert decoded.txn_id == 77
        assert decoded.gid == "g123"
        assert offset > 0

    def test_empty_gid_roundtrip(self):
        record = TxnPrepareRecord(txn_id=1, gid="")
        decoded, _ = decode_record(bytes(encode_record(record)))
        assert decoded.gid == ""

    def test_registered_in_type_codes(self):
        assert RECORD_TYPE_CODES[TxnPrepareRecord] == RecordType.TXN_PREPARE

    def test_twopc_points_are_registered(self):
        assert set(TWOPC_CRASH_POINTS) <= set(CRASH_POINTS)


class TestPrepareAPI:
    """Direct Database.prepare / commit_prepared / abort_prepared."""

    def _make(self, tmp_path, name: str) -> tuple[Database, DBConfig]:
        config = DBConfig(dir=str(tmp_path / name), scheme="data_codeword")
        db = Database(config)
        db.create_table("account", ACCOUNT_SCHEMA, 32, key_field="aid")
        db.start()
        return db, config

    def _insert(self, db: Database, aid: int, balance: int) -> int:
        txn = db.begin()
        slot = db.table("account").insert(txn, {"aid": aid, "balance": balance})
        db.commit(txn)
        return slot

    def test_prepare_then_commit(self, tmp_path):
        db, _ = self._make(tmp_path, "commit")
        slot = self._insert(db, 1, 100)
        txn = db.begin()
        db.table("account").update(txn, slot, {"balance": 130})
        db.prepare(txn, "g1")
        assert txn.status is TxnStatus.PREPARED
        assert txn.gid == "g1"
        db.commit_prepared(txn)
        assert txn.status is TxnStatus.COMMITTED
        check = db.begin()
        assert db.table("account").read(check, slot)["balance"] == 130
        db.commit(check)
        db.close()

    def test_prepare_then_abort(self, tmp_path):
        db, _ = self._make(tmp_path, "abort")
        slot = self._insert(db, 1, 100)
        txn = db.begin()
        db.table("account").update(txn, slot, {"balance": 999})
        db.prepare(txn, "g1")
        db.abort_prepared(txn)
        check = db.begin()
        assert db.table("account").read(check, slot)["balance"] == 100
        db.commit(check)
        db.close()

    def test_commit_prepared_requires_prepare(self, tmp_path):
        db, _ = self._make(tmp_path, "req")
        txn = db.begin()
        with pytest.raises(TransactionError):
            db.commit_prepared(txn)
        db.abort(txn)
        db.close()

    def test_recovery_commits_resolved_gid(self, tmp_path):
        db, config = self._make(tmp_path, "recov-commit")
        slot = self._insert(db, 1, 100)
        txn = db.begin()
        db.table("account").update(txn, slot, {"balance": 170})
        db.prepare(txn, "g9")
        db.crash()
        recovered, report = Database.recover(
            config, in_doubt_resolver=lambda gid: gid == "g9"
        )
        assert txn.txn_id in report.resolved_committed
        check = recovered.begin()
        assert recovered.table("account").read(check, slot)["balance"] == 170
        recovered.commit(check)
        recovered.close()

    def test_recovery_presumes_abort_without_decision(self, tmp_path):
        db, config = self._make(tmp_path, "recov-abort")
        slot = self._insert(db, 1, 100)
        txn = db.begin()
        db.table("account").update(txn, slot, {"balance": 170})
        db.prepare(txn, "g9")
        db.crash()
        recovered, report = Database.recover(config)  # no resolver: abort
        assert txn.txn_id in report.resolved_aborted
        check = recovered.begin()
        assert recovered.table("account").read(check, slot)["balance"] == 100
        recovered.commit(check)
        recovered.close()

    def test_recovery_is_idempotent_for_resolved_commit(self, tmp_path):
        db, config = self._make(tmp_path, "recov-twice")
        slot = self._insert(db, 1, 100)
        txn = db.begin()
        db.table("account").update(txn, slot, {"balance": 170})
        db.prepare(txn, "g9")
        db.crash()
        first, _ = Database.recover(
            config, in_doubt_resolver=lambda gid: gid == "g9"
        )
        first.crash()
        second, report = Database.recover(
            config, in_doubt_resolver=lambda gid: gid == "g9"
        )
        assert report.resolved_committed == ()  # already ended on the log
        check = second.begin()
        assert second.table("account").read(check, slot)["balance"] == 170
        second.commit(check)
        second.close()


def _build_sharded(
    tmp_path,
    name: str,
    shard_registries: list[CrashPointRegistry] | None = None,
) -> tuple[ShardedDatabase, ShardedConfig]:
    config = ShardedConfig(
        dir=str(tmp_path / name),
        n_shards=2,
        mode="inproc",
        branches=2,
        scheme="data_codeword",
    )
    db = ShardedDatabase.create(
        config,
        [("account", ACCOUNT_SCHEMA, 32, "aid")],
        shard_crashpoints=shard_registries,
    )
    # aid 0 -> branch 0 -> shard 0; aid 1 -> branch 1 -> shard 1.
    db.submit_txn([("insert", "account", {"aid": 0, "balance": 100})])
    db.submit_txn([("insert", "account", {"aid": 1, "balance": 100})])
    return db, config


TRANSFER = [
    ("add", "account", 0, "balance", -30),
    ("add", "account", 1, "balance", 30),
]


def _balances(db: ShardedDatabase) -> tuple[int, int]:
    a = db.submit_txn([("query", "account", 0)])[0]["balance"]
    b = db.submit_txn([("query", "account", 1)])[0]["balance"]
    return a, b


class TestCrossShardTransfer:
    def test_transfer_moves_funds(self, tmp_path):
        db, _ = _build_sharded(tmp_path, "ok")
        db.submit_txn(TRANSFER)
        assert _balances(db) == (70, 130)
        assert len(db.decisions) == 1
        db.close()

    def test_vote_no_aborts_prepared_branch(self, tmp_path):
        db, _ = _build_sharded(tmp_path, "voteno")
        bad = [
            ("add", "account", 0, "balance", -30),
            ("add", "account", 999, "balance", 30),  # no such key: vote no
        ]
        with pytest.raises(TwoPhaseCommitError):
            db.submit_txn(bad)
        # Presumed abort: the prepared shard-0 branch rolled back and
        # nothing durable names the gid.
        assert _balances(db) == (100, 100)
        assert len(db.decisions) == 0
        db.close()

    def test_single_shard_txns_skip_2pc(self, tmp_path):
        db, _ = _build_sharded(tmp_path, "local")
        db.submit_txn([("add", "account", 0, "balance", 5)])
        assert len(db.decisions) == 0
        db.close()


class TestTwoPcCrashMatrix:
    """Crash at every 2PC crash point, on every side that reaches it.

    ``twopc.pre_prepare`` / ``twopc.after_prepare`` are participant
    moments (armed per shard); ``twopc.pre_decide`` / ``after_decide`` /
    ``after_first_commit`` are coordinator moments (armed on the
    router).  After each crash the node is recovered and must show
    atomicity: total funds conserved AND the outcome agrees with the
    decision log (committed gid => both branches, absent => neither).
    """

    PARTICIPANT_POINTS = ("twopc.pre_prepare", "twopc.after_prepare")
    COORDINATOR_POINTS = (
        "twopc.pre_decide",
        "twopc.after_decide",
        "twopc.after_first_commit",
    )

    def _run_crash(self, tmp_path, name, point, side):
        registries = [CrashPointRegistry(), CrashPointRegistry()]
        db, config = _build_sharded(tmp_path, name, shard_registries=registries)
        if side == "router":
            db.crashpoints.arm(point)
        else:
            registries[side].arm(point)
        with pytest.raises(SimulatedCrash):
            db.submit_txn(TRANSFER)
        db.crash()
        committed = DecisionLog.load_committed(
            os.path.join(config.dir, "2pc.decisions")
        )
        recovered, _reports = ShardedDatabase.recover(config)
        balances = _balances(recovered)
        assert sum(balances) == 200, f"{point} on {side}: funds not conserved"
        if committed:
            assert balances == (70, 130), f"{point} on {side}: lost commit"
        else:
            assert balances == (100, 100), f"{point} on {side}: partial apply"
        recovered.close()

    @pytest.mark.parametrize("point", PARTICIPANT_POINTS)
    @pytest.mark.parametrize("shard", [0, 1])
    def test_participant_crash(self, tmp_path, point, shard):
        self._run_crash(tmp_path, f"{point}-{shard}", point, shard)

    @pytest.mark.parametrize("point", COORDINATOR_POINTS)
    def test_coordinator_crash(self, tmp_path, point):
        self._run_crash(tmp_path, f"{point}-router", point, "router")

    def test_after_decide_crash_preserves_the_commit(self, tmp_path):
        """The decision hit the log before any participant committed;
        recovery must drive BOTH branches forward from the prepare
        records alone."""
        db, config = _build_sharded(tmp_path, "decided")
        db.crashpoints.arm("twopc.after_decide")
        with pytest.raises(SimulatedCrash):
            db.submit_txn(TRANSFER)
        db.crash()
        recovered, reports = ShardedDatabase.recover(config)
        assert _balances(recovered) == (70, 130)
        # Each shard's recovery resolved exactly one in-doubt branch.
        assert [len(r.resolved_committed) for r in reports] == [1, 1]
        recovered.close()


class TestTwoPcHardening:
    """Regression tests for the 2PC hardening fixes: gid uniqueness
    across coordinator incarnations, exception-safe session prepare,
    guarded decide fan-out, and the closed-router nowait check."""

    def test_gids_survive_coordinator_restart(self, tmp_path):
        """A restarted coordinator must never mint a gid that collides
        with a committed gid from a prior life: a crashed transaction's
        in-doubt branch would resolve against the stale decision-log
        entry and COMMIT, half-applying a transfer nobody decided."""
        db, config = _build_sharded(tmp_path, "epoch")
        db.submit_txn(TRANSFER)  # incarnation 1 commits a gid durably
        assert len(db.decisions) == 1
        db.close()

        # Incarnation 2: shard 0 prepares, then shard 1 dies before its
        # prepare -- the classic in-doubt single branch.
        registries = [CrashPointRegistry(), CrashPointRegistry()]
        registries[1].arm("twopc.pre_prepare")
        second, _ = ShardedDatabase.recover(config, shard_crashpoints=registries)
        with pytest.raises(SimulatedCrash):
            second.submit_txn(TRANSFER)
        second.crash()

        # Nothing durable decided the second transfer, so recovery must
        # presume abort.  With a reused gid it would instead find the
        # FIRST transfer's commit decision and apply only the debit.
        third, _ = ShardedDatabase.recover(config)
        assert _balances(third) == (70, 130)
        third.close()

    def test_incarnation_epoch_is_monotone(self, tmp_path):
        db, config = _build_sharded(tmp_path, "monotone")
        first_epoch = db._epoch
        db.close()
        second, _ = ShardedDatabase.recover(config)
        assert second._epoch > first_epoch
        second.close()

    def test_failed_session_prepare_releases_the_branch(
        self, tmp_path, monkeypatch
    ):
        """If ``("prepare", txn_id, gid)`` fails mid-call the branch must
        be aborted, not left ACTIVE in the ATT holding exclusive locks
        while reachable by neither abort-by-txn-id nor decide-by-gid."""
        config = DBConfig(dir=str(tmp_path / "prep-fail"), scheme="data_codeword")
        core = ShardCore.create(config, [("account", ACCOUNT_SCHEMA, 32, "aid")])
        setup = core.execute(("begin",))
        core.execute(("op", setup, ("insert", "account", {"aid": 1, "balance": 100})))
        core.execute(("commit", setup))

        txn_id = core.execute(("begin",))
        core.execute(("op", txn_id, ("update_key", "account", 1, {"balance": 50})))

        def boom(txn, gid):
            raise RuntimeError("prepare I/O failure")

        monkeypatch.setattr(core.db, "prepare", boom)
        with pytest.raises(RuntimeError):
            core.execute(("prepare", txn_id, "gX"))
        monkeypatch.undo()

        assert not core._txns and not core._prepared
        # Locks released and the update rolled back: a new transaction
        # can write the same key immediately (locks fail fast, so a
        # leaked lock would raise LockError here).
        redo = core.execute(("begin",))
        core.execute(("op", redo, ("update_key", "account", 1, {"balance": 75})))
        core.execute(("commit", redo))
        assert core.execute(("sum_field", "account", "balance")) == 75
        core.execute(("close",))

    def test_commit_decide_failure_still_commits_remaining(self, tmp_path):
        """A non-crash failure delivering one shard's commit decision
        must not strand the other prepared participants: they get their
        decision, the error reports the transaction as committed, and
        the failed shard completes its branch on restart recovery."""
        db, config = _build_sharded(tmp_path, "decide-fail")
        orig = db.shards[0].call

        def flaky(cmd):
            if cmd[0] == "decide":
                raise RuntimeError("lost response")
            return orig(cmd)

        db.shards[0].call = flaky
        with pytest.raises(TwoPhaseCommitError) as err:
            db.submit_txn(TRANSFER)
        assert "is committed" in str(err.value)
        db.shards[0].call = orig

        # The decision is durable and shard 1 applied its credit even
        # though shard 0's decide failed first.
        assert len(db.decisions) == 1
        assert db.submit_txn([("query", "account", 1)])[0]["balance"] == 130
        # Shard 0's prepared branch completes on restart recovery.
        db.crash()
        recovered, _ = ShardedDatabase.recover(config)
        assert _balances(recovered) == (70, 130)
        recovered.close()

    def test_abort_decide_failure_still_aborts_remaining(self, tmp_path):
        """In the vote-no path, one shard's failing abort must not skip
        aborting the other prepared branches (their locks would wedge
        later transactions until restart)."""
        config = ShardedConfig(
            dir=str(tmp_path / "abort-fail"),
            n_shards=3,
            mode="inproc",
            branches=3,
            scheme="data_codeword",
        )
        db = ShardedDatabase.create(config, [("account", ACCOUNT_SCHEMA, 32, "aid")])
        for aid in range(3):
            db.submit_txn([("insert", "account", {"aid": aid, "balance": 100})])
        orig = db.shards[0].call

        def flaky(cmd):
            if cmd[0] == "decide":
                raise RuntimeError("lost response")
            return orig(cmd)

        db.shards[0].call = flaky
        bad = [
            ("add", "account", 0, "balance", -30),
            ("add", "account", 1, "balance", 15),
            ("add", "account", 1001, "balance", 15),  # shard 2: vote no
        ]
        with pytest.raises(TwoPhaseCommitError):
            db.submit_txn(bad)
        db.shards[0].call = orig

        assert len(db.decisions) == 0
        # Shard 1's branch was aborted despite shard 0's failure: its
        # key is immediately writable and its balance unchanged.
        db.submit_txn([("add", "account", 1, "balance", 1)])
        assert db.submit_txn([("query", "account", 1)])[0]["balance"] == 101
        db.close()

    def test_nowait_after_close_raises(self, tmp_path):
        db, _ = _build_sharded(tmp_path, "closed-nowait")
        db.close()
        with pytest.raises(ShardError):
            db.submit_txn_nowait([("add", "account", 0, "balance", 1)])


class TestSupervisedDelivery:
    """Under a supervisor, "committed but undelivered" self-heals: the
    caller sees SUCCESS, the supervisor owns completing the branch."""

    def test_kill_after_decision_fsync_self_heals(self, tmp_path):
        from repro.faults.workers import kill_after_decision
        from repro.shard import ShardSupervisor

        db, _ = _build_sharded(tmp_path, "supervised-gap")
        supervisor = ShardSupervisor(db).attach()
        # Arm the exact gap PR 9 surfaced as a terminal error: the
        # participant dies AFTER the commit decision is fsync'd but
        # BEFORE its decide message arrives.
        kill_after_decision(db, 1)

        db.submit_txn(TRANSFER)  # no exception: the caller sees SUCCESS

        # The decision is durable and its delivery is queued, not lost.
        assert len(db.decisions) == 1
        assert len(supervisor.pending_decisions) == 1
        # Degraded mode: the victim fails fast with a retryable error
        # while the survivor serves.
        with pytest.raises(ShardUnavailableError) as err:
            db.submit_txn([("query", "account", 1)])
        assert err.value.retryable
        assert db.submit_txn([("query", "account", 0)])[0]["balance"] == 70

        # One tick restarts shard 1; its restart recovery resolves the
        # prepared branch against the decision log, so the pending
        # delivery is satisfied and funds are conserved.
        supervisor.tick()
        assert supervisor.pending_decisions == {}
        assert _balances(db) == (70, 130)
        assert sum(_balances(db)) == 200
        supervisor.detach()
        db.close()

    def test_unsupervised_gap_still_needs_manual_recovery(self, tmp_path):
        """Without a supervisor the same kill surfaces as an exception
        (the PR-9 contract: the caller owns recovery) and only a restart
        completes the committed branch -- the before/after picture of
        what the supervisor automates."""
        from repro.faults.workers import kill_after_decision
        from repro.shard.shard import ShardCrashed

        db, config = _build_sharded(tmp_path, "unsupervised-gap")
        kill_after_decision(db, 1)
        with pytest.raises(ShardCrashed):
            db.submit_txn(TRANSFER)
        # The decision IS durable; the caller just has to recover to
        # learn that (outcome-check discipline, docs/errors.md).
        assert len(db.decisions) == 1
        db.crash()
        recovered, _ = ShardedDatabase.recover(config)
        assert _balances(recovered) == (70, 130)
        recovered.close()
