"""Hardware Protection: trap-based prevention of direct corruption."""

import pytest

from repro import FaultInjector
from repro.errors import ProtectionFault
from repro.mem.mprotect import MprotectCosts

from tests.conftest import insert_accounts


@pytest.fixture
def hdb(db_factory):
    return db_factory(scheme="hardware")


class TestPrevention:
    def test_wild_write_trapped_and_prevented(self, hdb):
        slots = insert_accounts(hdb, 3)
        table = hdb.table("acct")
        address = table.record_address(slots[1])
        before = hdb.memory.read(address, 8)
        injector = FaultInjector(hdb, seed=1)
        with pytest.raises(ProtectionFault):
            injector.wild_write(address, 8)
        assert hdb.memory.read(address, 8) == before

    def test_prescribed_updates_still_work(self, hdb):
        slots = insert_accounts(hdb, 2)
        table = hdb.table("acct")
        txn = hdb.begin()
        table.update(txn, slots[0], {"balance": 555})
        hdb.commit(txn)
        txn = hdb.begin()
        assert table.read(txn, slots[0])["balance"] == 555
        hdb.commit(txn)

    def test_whole_image_protected_after_startup(self, hdb):
        mmu = hdb.scheme.mmu
        assert mmu.enforcing
        assert mmu.protected_page_count == hdb.memory.page_count

    def test_pages_reprotected_after_update(self, hdb):
        slots = insert_accounts(hdb, 1)
        table = hdb.table("acct")
        txn = hdb.begin()
        table.update(txn, slots[0], {"balance": 1})
        hdb.commit(txn)
        assert hdb.scheme.mmu.protected_page_count == hdb.memory.page_count

    def test_corruption_during_open_window_not_prevented(self, hdb):
        """The Ng/Chen residual-risk window (Section 4): while a page is
        exposed for a legitimate update, a wild write to it succeeds."""
        slots = insert_accounts(hdb, 1)
        table = hdb.table("acct")
        address = table.record_address(slots[0])
        txn = hdb.begin()
        hdb.manager.begin_operation(txn, "w")
        hdb.manager.begin_update(txn, address, 8)
        injector = FaultInjector(hdb, seed=2)
        event = injector.wild_write(address, 4)  # same page, exposed
        assert hdb.memory.read(address, 4) == event.new
        hdb.manager.end_update(txn)
        from repro.wal.records import LogicalUndo

        hdb.manager.commit_operation(txn, LogicalUndo("noop"))
        hdb.commit(txn)

    def test_rollback_goes_through_expose_cover(self, hdb):
        slots = insert_accounts(hdb, 1)
        table = hdb.table("acct")
        txn = hdb.begin()
        table.update(txn, slots[0], {"balance": 9})
        hdb.abort(txn)  # undo must expose pages to restore the image
        txn = hdb.begin()
        assert table.read(txn, slots[0])["balance"] == 100
        hdb.commit(txn)
        assert hdb.scheme.mmu.protected_page_count == hdb.memory.page_count


class TestCosts:
    def test_update_charges_two_calls_and_penalties(self, hdb):
        slots = insert_accounts(hdb, 1)
        table = hdb.table("acct")
        hdb.meter.reset()
        txn = hdb.begin()
        table.update(txn, slots[0], {"balance": 1})
        hdb.commit(txn)
        # One update window plus allocator is_allocated read: exactly one
        # begin_update/end_update pair for the balance field.
        assert hdb.meter.counts["mprotect_call"] >= 2
        assert (
            hdb.meter.counts["mprotect_workload_penalty"]
            == hdb.meter.counts["mprotect_call"]
        )

    def test_platform_costs_flow_through(self, db_factory):
        slow = MprotectCosts(syscall_fixed_ns=1_000_000, per_page_ns=0)
        db = db_factory(scheme="hardware", mprotect_costs=slow)
        slots = insert_accounts(db, 1)
        before = db.clock.now_ns
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 1})
        db.commit(txn)
        # Two syscalls at 1 ms each must dominate this tiny transaction.
        assert db.clock.now_ns - before > 2_000_000

    def test_audit_is_trivially_clean(self, hdb):
        insert_accounts(hdb, 1)
        assert hdb.audit().clean
        assert hdb.scheme.codeword_table is None
