"""Ping-pong checkpointing and corruption-free certification."""

import os

import pytest

from repro.errors import CheckpointError

from tests.conftest import insert_accounts


class TestPingPong:
    def test_images_alternate(self, db):
        insert_accounts(db, 1)
        first = db.checkpoint()
        second = db.checkpoint()
        third = db.checkpoint()
        # start() already wrote image A, so the sequence continues B, A, B.
        assert (first.image, second.image, third.image) == ("B", "A", "B")

    def test_anchor_tracks_last_certified(self, db):
        insert_accounts(db, 1)
        result = db.checkpoint()
        anchor = db.checkpointer.read_anchor()
        assert anchor["image"] == result.image
        assert anchor["ck_end"] == result.ck_end

    def test_only_dirty_pages_written(self, db):
        insert_accounts(db, 1)
        db.checkpoint()  # drains to B
        db.checkpoint()  # drains to A
        result = db.checkpoint()  # nothing dirtied since
        assert result.pages_written == 0

    def test_page_dirty_for_both_images_until_both_written(self, db):
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 5})
        db.commit(txn)
        first = db.checkpoint()
        second = db.checkpoint()
        page = table.record_address(slots[0]) // db.memory.page_size
        # the page went to both alternating images
        assert first.pages_written > 0 and second.pages_written > 0
        assert page not in db.memory.dirty_pages.pending_for("A")
        assert page not in db.memory.dirty_pages.pending_for("B")

    def test_both_image_files_exist_after_two_checkpoints(self, db):
        insert_accounts(db, 1)
        db.checkpoint()
        assert os.path.exists(db.path("ckpt_A.img"))
        assert os.path.exists(db.path("ckpt_B.img"))


class TestCertification:
    def test_corrupt_image_fails_certification(self, db_factory):
        db = db_factory(scheme="data_cw")
        insert_accounts(db, 2)
        db.memory.poke(db.table("acct").record_address(0), b"\x13\x37")
        result = db.checkpoint()
        assert not result.certified
        assert not result.audit_report.clean

    def test_failed_certification_keeps_old_anchor(self, db_factory):
        db = db_factory(scheme="data_cw")
        insert_accounts(db, 2)
        anchor_before = db.checkpointer.read_anchor()
        db.memory.poke(db.table("acct").record_address(0), b"\x13\x37")
        db.checkpoint()
        assert db.checkpointer.read_anchor() == anchor_before

    def test_baseline_checkpoints_certify_trivially(self, db):
        insert_accounts(db, 1)
        db.memory.poke(db.table("acct").record_address(0), b"\x13")
        # no codewords -> corruption invisible, checkpoint certifies
        assert db.checkpoint().certified

    def test_audit_can_be_skipped(self, db_factory):
        db = db_factory(scheme="data_cw")
        insert_accounts(db, 1)
        result = db.checkpoint() if True else None
        unaudited = db.checkpointer.checkpoint(audit=False)
        assert unaudited.certified and unaudited.audit_report is None
        assert result.audit_report is not None


class TestLoad:
    def test_load_latest_roundtrip(self, db):
        slots = insert_accounts(db, 3)
        db.checkpoint()
        address = db.table("acct").record_address(slots[1])
        expected = db.memory.read(address, 8)
        db.memory.poke(address, b"\x00" * 8)  # scribble over memory
        image, ck_end, _sn, att = db.checkpointer.load_latest()
        assert db.memory.read(address, 8) == expected
        assert ck_end > 0
        assert isinstance(att, bytes)

    def test_read_image_range(self, db):
        slots = insert_accounts(db, 1)
        db.checkpoint()
        address = db.table("acct").record_address(slots[0])
        from_image = db.checkpointer.read_image_range(address, 8)
        assert from_image == db.memory.read(address, 8)

    def test_load_without_anchor_rejected(self, tmp_path, db):
        os.remove(db.path("cur_ckpt"))
        with pytest.raises(CheckpointError):
            db.checkpointer.load_latest()

    def test_att_contains_open_transaction(self, db):
        slots = insert_accounts(db, 1)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 1})
        db.checkpoint()
        from repro.txn.transaction import ActiveTransactionTable

        _img, _ck, _sn, att = db.checkpointer.load_latest()
        decoded = ActiveTransactionTable.decode(att)
        assert txn.txn_id in decoded
        assert len(decoded[txn.txn_id].undo_log) >= 1
        db.commit(txn)
