"""Records larger than a page: a Dali design benefit (Section 2).

"Benefits of this approach include ... the ability to store objects
larger than a page contiguously, and thus access them directly without
reassembly and copying."
"""

import pytest

from repro import Database, DBConfig, FaultInjector, Field, FieldType, Schema

BLOB = Schema(
    [
        Field("oid", FieldType.INT64),
        Field("payload", FieldType.CHAR, 20_000),  # ~2.5 pages at 8 KB
    ]
)


@pytest.fixture
def blob_db(tmp_path):
    def make(scheme="data_cw", **params):
        db = Database(
            DBConfig(dir=str(tmp_path / scheme), scheme=scheme, scheme_params=params)
        )
        db.create_table("blob", BLOB, capacity=8, key_field="oid")
        db.start()
        return db

    return make


class TestMultiPageRecords:
    def test_insert_and_read_contiguously(self, blob_db):
        db = blob_db()
        payload = bytes(range(256)) * 78  # 19,968 bytes
        txn = db.begin()
        slot = db.table("blob").insert(txn, {"oid": 1, "payload": payload})
        row = db.table("blob").read(txn, slot)
        assert row["payload"].rstrip(b"\x00") == payload.rstrip(b"\x00")
        db.commit(txn)
        db.close()

    def test_record_really_spans_pages(self, blob_db):
        db = blob_db()
        table = db.table("blob")
        from repro.mem.pages import page_span

        assert page_span(table.record_address(0), BLOB.record_size, db.config.page_size) >= 3
        db.close()

    def test_codewords_cover_multi_page_update(self, blob_db):
        db = blob_db("data_cw", region_size=65536)
        txn = db.begin()
        db.table("blob").insert(txn, {"oid": 1, "payload": b"x" * 20_000})
        db.table("blob").update(txn, 0, {"payload": b"y" * 20_000})
        db.commit(txn)
        assert db.audit().clean

    def test_wild_write_deep_inside_blob_detected(self, blob_db):
        db = blob_db("data_cw", region_size=4096)
        txn = db.begin()
        db.table("blob").insert(txn, {"oid": 1, "payload": b"z" * 20_000})
        db.commit(txn)
        address = db.table("blob").record_address(0) + 15_000
        FaultInjector(db, seed=1).wild_write(address, 4)
        report = db.audit()
        assert not report.clean

    def test_hardware_unprotects_all_spanned_pages(self, blob_db):
        db = blob_db("hardware")
        txn = db.begin()
        db.table("blob").insert(txn, {"oid": 1, "payload": b"p" * 20_000})
        db.commit(txn)
        assert db.scheme.mmu.protected_page_count == db.memory.page_count
        txn = db.begin()
        assert db.table("blob").read(txn, 0)["oid"] == 1
        db.commit(txn)
        db.close()

    def test_recovery_of_multi_page_records(self, blob_db):
        db = blob_db()
        txn = db.begin()
        db.table("blob").insert(txn, {"oid": 1, "payload": b"q" * 20_000})
        db.commit(txn)
        db.crash()
        db2, _ = Database.recover(db.config)
        txn = db2.begin()
        row = db2.table("blob").read(txn, 0)
        assert row["payload"] == b"q" * 20_000
        db2.commit(txn)
        db2.close()
