"""The auditor: Audit_SN tracking and audit log records."""

import pytest

from repro.errors import ConfigError
from repro.wal.records import AuditBeginRecord, AuditEndRecord

from tests.conftest import insert_accounts


@pytest.fixture
def adb(db_factory):
    return db_factory(scheme="data_cw", region_size=4096)


class TestAuditRuns:
    def test_clean_audit_advances_audit_sn(self, adb):
        insert_accounts(adb, 3)
        before = adb.auditor.last_clean_audit_lsn
        report = adb.audit()
        assert report.clean
        assert adb.auditor.last_clean_audit_lsn == report.begin_lsn > before

    def test_failed_audit_does_not_advance_audit_sn(self, adb):
        insert_accounts(adb, 3)
        clean = adb.audit()
        adb.memory.poke(adb.table("acct").record_address(0), b"\x01\x02")
        failed = adb.audit()
        assert not failed.clean
        assert adb.auditor.last_clean_audit_lsn == clean.begin_lsn
        assert adb.auditor.failures == 1

    def test_audit_records_in_stable_log(self, adb):
        insert_accounts(adb, 1)
        report = adb.audit()
        records = [r for _l, r in adb.system_log.scan()]
        begins = [r for r in records if isinstance(r, AuditBeginRecord)]
        ends = [r for r in records if isinstance(r, AuditEndRecord)]
        assert any(r.txn_id == report.audit_id for r in begins)
        assert any(r.txn_id == report.audit_id and r.clean for r in ends)

    def test_failed_audit_end_record_names_regions(self, adb):
        insert_accounts(adb, 1)
        adb.memory.poke(adb.table("acct").record_address(0), b"\xff")
        report = adb.audit()
        ends = [
            r
            for _l, r in adb.system_log.scan()
            if isinstance(r, AuditEndRecord) and r.txn_id == report.audit_id
        ]
        assert ends[0].corrupt_regions == report.corrupt_regions
        assert ends[0].region_size == 4096

    def test_subset_audit(self, adb):
        insert_accounts(adb, 1)
        adb.memory.poke(adb.table("acct").record_address(0), b"\xff")
        corrupt_region = adb.scheme.codeword_table.region_of(
            adb.table("acct").record_address(0)
        )
        clean_subset = adb.auditor.run([corrupt_region + 1])
        assert clean_subset.clean
        dirty_subset = adb.auditor.run([corrupt_region])
        assert not dirty_subset.clean

    def test_corrupt_byte_ranges(self, adb):
        insert_accounts(adb, 1)
        adb.memory.poke(adb.table("acct").record_address(0), b"\xff")
        report = adb.audit()
        (start, length) = report.corrupt_byte_ranges[0]
        address = adb.table("acct").record_address(0)
        assert start <= address < start + length

    def test_corrupt_byte_ranges_fallback_clamps_last_region(self):
        """Regression: the fallback (no precomputed corrupt_ranges) must
        clamp the final ragged region to the image size, exactly like
        CodewordTable.region_bounds."""
        from repro.core.audit import AuditReport

        report = AuditReport(
            audit_id=1,
            begin_lsn=0,
            clean=False,
            corrupt_regions=(0, 2),
            region_size=4096,
            regions_checked=3,
            image_size=10_000,  # last region holds only 10_000 - 8192 bytes
        )
        assert report.corrupt_byte_ranges == ((0, 4096), (8192, 10_000 - 8192))

    def test_corrupt_byte_ranges_fallback_without_image_size(self):
        """With no image size the fallback keeps the old whole-region span."""
        from repro.core.audit import AuditReport

        report = AuditReport(
            audit_id=1,
            begin_lsn=0,
            clean=False,
            corrupt_regions=(2,),
            region_size=4096,
            regions_checked=3,
        )
        assert report.corrupt_byte_ranges == ((8192, 4096),)


class TestCrashWithCorruption:
    def test_refuses_clean_report(self, adb):
        insert_accounts(adb, 1)
        report = adb.audit()
        with pytest.raises(ConfigError):
            adb.crash_with_corruption(report)

    def test_note_written_and_db_unusable(self, adb, tmp_path):
        import json
        import os

        insert_accounts(adb, 1)
        adb.memory.poke(adb.table("acct").record_address(0), b"\xff")
        report = adb.audit()
        adb.crash_with_corruption(report)
        note_path = adb.path("corruption.note")
        assert os.path.exists(note_path)
        with open(note_path) as fh:
            note = json.load(fh)
        assert note["corrupt_ranges"]
        from repro.errors import TransactionError

        with pytest.raises(TransactionError):
            adb.begin()
