"""Session semantics over one image (``repro.serve``).

Every test in ``TestSessionSemantics`` runs in BOTH scheduler modes:
deterministic (requests execute inline on the submitting thread) and
threaded (worker pool behind a bounded admission queue).  The protocol,
per-session transactions and error containment must be mode-invariant.
"""

from __future__ import annotations

import threading

import pytest

from repro import Database, DBConfig
from repro.errors import BackpressureError, ServeError
from repro.faults.injector import FaultInjector
from repro.serve import Request, Server

from tests.conftest import ACCT_SCHEMA, insert_accounts

MODES = ("deterministic", "threaded")


def make_db(base, name, **config_kwargs) -> Database:
    config_kwargs.setdefault("scheme", "baseline")
    config = DBConfig(dir=str(base / name), **config_kwargs)
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 256, key_field="id")
    db.start()
    return db


@pytest.fixture(params=MODES)
def served(request, tmp_path):
    db = make_db(tmp_path, f"served-{request.param}", scheduler_mode=request.param)
    insert_accounts(db, 8)
    server = Server(db, queue_depth=32, workers=4)
    yield db, server
    server.close()
    db.close()


def ok(server, session, **kwargs):
    response = server.submit(session, Request(**kwargs))
    assert response.ok, f"{response.op}: {response.error}: {response.detail}"
    return response.value


class TestSessionSemantics:
    def test_protocol_round_trip(self, served):
        db, server = served
        session = server.open_session()
        txn_id = ok(server, session, op="begin")
        assert isinstance(txn_id, int)
        slot = ok(
            server,
            session,
            op="insert",
            table="acct",
            values={"id": 99, "balance": 500, "name": "new"},
        )
        assert ok(server, session, op="lookup", table="acct", key=99) == slot
        row = ok(server, session, op="query", table="acct", key=99)
        assert row["balance"] == 500
        ok(server, session, op="update", table="acct", slot=slot, values={"balance": 501})
        assert ok(server, session, op="read", table="acct", slot=slot)["balance"] == 501
        ok(server, session, op="commit")
        assert session.txn is None
        server.close_session(session)

    def test_conflicting_updates_serialize_via_locks(self, served):
        db, server = served
        a = server.open_session()
        b = server.open_session()
        ok(server, a, op="begin")
        ok(server, b, op="begin")
        ok(server, a, op="update", table="acct", slot=0, values={"balance": 111})
        # B hits A's txn-duration exclusive lock: fails alone, contained.
        denied = server.submit(
            b, Request(op="update", table="acct", slot=0, values={"balance": 222})
        )
        assert not denied.ok
        assert denied.error == "LockError"
        assert b.txn is None  # B's transaction rolled back
        assert a.txn is not None  # A is untouched
        ok(server, a, op="commit")
        # B retries after A's locks released and wins.
        ok(server, b, op="begin")
        ok(server, b, op="update", table="acct", slot=0, values={"balance": 222})
        ok(server, b, op="commit")
        check = server.open_session()
        ok(server, check, op="begin")
        assert ok(server, check, op="read", table="acct", slot=0)["balance"] == 222
        ok(server, check, op="commit")

    def test_session_abort_rolls_back_only_its_own_ops(self, served):
        db, server = served
        a = server.open_session()
        b = server.open_session()
        ok(server, a, op="begin")
        ok(server, b, op="begin")
        ok(server, a, op="update", table="acct", slot=0, values={"balance": 1000})
        ok(server, b, op="update", table="acct", slot=1, values={"balance": 2000})
        ok(server, a, op="abort")
        ok(server, b, op="commit")
        check = server.open_session()
        ok(server, check, op="begin")
        assert ok(server, check, op="read", table="acct", slot=0)["balance"] == 100
        assert ok(server, check, op="read", table="acct", slot=1)["balance"] == 2000
        ok(server, check, op="commit")

    def test_protocol_misuse_is_contained(self, served):
        db, server = served
        session = server.open_session()
        no_txn = server.submit(session, Request(op="commit"))
        assert not no_txn.ok and no_txn.error == "ServeError"
        unknown = server.submit(session, Request(op="frobnicate"))
        assert not unknown.ok and unknown.error == "ServeError"
        double = server.submit(session, Request(op="begin"))
        assert double.ok
        double2 = server.submit(session, Request(op="begin"))
        assert not double2.ok and double2.error == "ServeError"
        # The contained double-begin rolled the open transaction back;
        # the session keeps working.
        ok(server, session, op="begin")
        ok(server, session, op="commit")

    def test_closed_session_refuses_requests(self, served):
        db, server = served
        session = server.open_session()
        ok(server, session, op="begin")
        server.close_session(session)
        assert session.txn is None  # open transaction rolled back
        refused = server.submit(session, Request(op="begin"))
        assert not refused.ok and refused.error == "ServeError"


class TestQuarantineContainment:
    @pytest.mark.parametrize("mode", MODES)
    def test_quarantined_read_fails_one_session_only(self, mode, tmp_path):
        db = make_db(
            tmp_path,
            f"quarantine-{mode}",
            scheme="data_codeword",
            scheme_params={"region_size": 64},
            quarantine=True,
            scheduler_mode=mode,
        )
        slots = insert_accounts(db, 8)
        # Wild-write slot 0's record, then audit: the region quarantines
        # instead of crashing the system.
        address = db.table("acct").record_address(slots[0])
        FaultInjector(db, seed=7).wild_write(address, 8)
        report = db.audit()
        assert not report.clean
        assert db.quarantined_regions()
        server = Server(db, queue_depth=16, workers=2)
        poisoned = server.open_session()
        healthy = server.open_session()
        ok(server, poisoned, op="begin")
        ok(server, healthy, op="begin")
        denied = server.submit(poisoned, Request(op="read", table="acct", slot=slots[0]))
        assert not denied.ok
        assert denied.error == "QuarantinedRegionError"
        assert poisoned.txn is None  # contained: only this session aborted
        # The healthy session reads a different region and commits.
        assert ok(server, healthy, op="read", table="acct", slot=slots[7])["balance"] == 100
        ok(server, healthy, op="commit")
        server.close()
        db.close()


class TestThreadedServing:
    def test_backpressure_sheds_load_at_admission(self, tmp_path):
        db = make_db(tmp_path, "bp", scheduler_mode="threaded")
        insert_accounts(db, 4)
        server = Server(db, queue_depth=1, workers=1)
        blocked = server.open_session()
        other = server.open_session()
        # Jam the single worker: hold the session's serial lock so its
        # request parks inside execute(), then fill the depth-1 queue.
        blocked._serial.acquire()
        try:
            t1 = threading.Thread(
                target=server.submit, args=(blocked, Request(op="begin"))
            )
            t1.start()
            # Wait until the worker has dequeued t1's item and is parked.
            deadline = [server._queue.unfinished_tasks]
            for _ in range(1000):
                if server._queue.qsize() == 0 and deadline[0] >= 1:
                    break
                threading.Event().wait(0.005)
            t2 = threading.Thread(
                target=server.submit, args=(other, Request(op="begin"))
            )
            t2.start()
            for _ in range(1000):
                if server._queue.qsize() == 1:
                    break
                threading.Event().wait(0.005)
            with pytest.raises(BackpressureError):
                server.submit(other, Request(op="begin"))
            assert server.backpressure_rejections == 1
        finally:
            blocked._serial.release()
        t1.join(timeout=10)
        t2.join(timeout=10)
        server.close()
        db.close()

    def test_concurrent_sessions_commit_disjoint_updates(self, tmp_path):
        db = make_db(tmp_path, "fanout", scheme="data_codeword", scheduler_mode="threaded")
        slots = insert_accounts(db, 16)
        server = Server(db, queue_depth=64, workers=8)
        errors: list[str] = []
        n_clients, n_txns = 8, 10

        def client(client_id: int) -> None:
            session = server.open_session()
            slot = slots[client_id]
            for i in range(n_txns):
                for request in (
                    Request(op="begin"),
                    Request(
                        op="update",
                        table="acct",
                        slot=slot,
                        values={"balance": 1000 * client_id + i},
                    ),
                    Request(op="commit"),
                ):
                    response = server.submit(session, request)
                    if not response.ok:
                        errors.append(f"{client_id}/{i}: {response.error}")
                        return
            server.close_session(session)

        threads = [threading.Thread(target=client, args=(c,)) for c in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        server.close()
        # Every session's last write is in place and the image is clean.
        check = db.begin()
        for client_id in range(n_clients):
            row = db.table("acct").read(check, slots[client_id])
            assert row["balance"] == 1000 * client_id + (n_txns - 1)
        db.commit(check)
        assert db.audit().clean
        db.close()

    def test_readers_race_writer_without_corruption_reports(self, tmp_path):
        db = make_db(
            tmp_path,
            "race",
            scheme="precheck",
            scheme_params={"region_size": 64},
            scheduler_mode="threaded",
        )
        slots = insert_accounts(db, 4)
        server = Server(db, queue_depth=64, workers=6)
        outcomes: list[str] = []
        stop = threading.Event()

        def writer() -> None:
            session = server.open_session()
            i = 0
            while not stop.is_set():
                server.submit(session, Request(op="begin"))
                response = server.submit(
                    session,
                    Request(op="update", table="acct", slot=slots[i % 4],
                            values={"balance": 100 + i}),
                )
                if response.ok:
                    server.submit(session, Request(op="commit"))
                i += 1
            if session.txn is not None:
                server.submit(session, Request(op="abort"))

        def reader(reader_id: int) -> None:
            session = server.open_session()
            for i in range(50):
                server.submit(session, Request(op="begin"))
                response = server.submit(
                    session, Request(op="read", table="acct", slot=slots[i % 4])
                )
                if response.ok:
                    outcomes.append("ok")
                    server.submit(session, Request(op="commit"))
                else:
                    # The only legitimate failure is a lock conflict with
                    # the writer; a precheck mismatch would surface as
                    # CorruptionDetected and fail this test.
                    outcomes.append(response.error)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader, args=(r,)) for r in range(3)]
        writer_thread.start()
        for t in reader_threads:
            t.start()
        for t in reader_threads:
            t.join(timeout=60)
        stop.set()
        writer_thread.join(timeout=60)
        server.close()
        assert set(outcomes) <= {"ok", "LockError"}
        assert "ok" in outcomes
        assert db.scheme.precheck_count > 0
        db.close()
