"""Background full-sweep audits: off-thread folds with a tracked-touch
handshake, joined on cadence or at checkpoint certification.

Under ``DBConfig(audit_mode="incremental", background_sweeps=True)`` the
periodic full-sweep escalation of :meth:`Auditor.run_dirty` runs its
fold (one GIL-releasing numpy reduction) in a worker thread.  The
correctness core is the snapshot/epoch handshake: any region whose bytes
or stored codeword change while the fold is in flight lands in the
maintainer's touched set and is re-audited synchronously at join, so the
racing fold can neither convict an innocent region nor clear a guilty
one.  The join charges the meter exactly what a synchronous full sweep
charges -- wall-clock optimisation, not a cost-model change.
"""

from __future__ import annotations

import pytest

from repro import Database, DBConfig, Field, FieldType, Schema

ACCT_SCHEMA = Schema(
    [
        Field("id", FieldType.INT64),
        Field("balance", FieldType.INT64),
        Field("name", FieldType.CHAR, 16),
    ]
)


def _make_db(dirname: str, *, background: bool = True, **config_kwargs) -> Database:
    config = DBConfig(
        dir=dirname,
        scheme="data_cw",
        scheme_params={"region_size": 64},
        audit_mode="incremental",
        full_sweep_every=2,
        background_sweeps=background,
        **config_kwargs,
    )
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    db.start()
    txn = db.begin()
    table = db.table("acct")
    for i in range(24):
        table.insert(txn, {"id": i, "balance": 1000 + i, "name": f"a{i}"})
    db.commit(txn)
    # Startup certification already spent cadence ticks; reset so each
    # test counts escalations from a known point.
    db.auditor.abandon_background_sweep()
    db.auditor._dirty_audits_since_sweep = 0
    return db


def _touch(db: Database, slot: int, balance: int) -> None:
    txn = db.begin()
    db.table("acct").update(txn, slot, {"balance": balance})
    db.commit(txn)


class TestSweepCadence:
    def test_escalation_starts_then_joins(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        auditor = db.auditor
        table = db.scheme.codeword_table

        _touch(db, 0, 11)
        r1 = db.audit()  # dirty pass #1
        assert r1.clean and auditor._sweep is None
        assert r1.regions_checked < table.region_count

        _touch(db, 1, 22)
        r2 = db.audit()  # cadence hit: launches the sweep, serves a dirty pass
        assert r2.clean and auditor._sweep is not None
        assert r2.regions_checked < table.region_count

        _touch(db, 2, 33)
        r3 = db.audit()  # dirty pass again; the fold keeps running
        assert r3.clean and auditor._sweep is not None

        r4 = db.audit()  # cadence hit with a sweep in flight: join it
        assert r4.clean and auditor._sweep is None
        assert r4.regions_checked == table.region_count
        db.close()

    def test_clean_join_advances_audit_sn_to_begin_lsn(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        auditor = db.auditor
        before = auditor.last_clean_audit_lsn
        assert auditor.start_background_sweep()
        report = auditor.join_background_sweep()
        assert report.clean
        assert report.begin_lsn > before
        assert auditor.last_clean_audit_lsn == report.begin_lsn
        db.close()

    def test_join_with_no_sweep_is_none(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        assert db.auditor.join_background_sweep() is None
        db.close()


class TestSweepVerdicts:
    def test_corruption_before_sweep_is_convicted_at_join(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        address = db.table("acct").record_address(3) + 8
        db.memory.poke(address, b"\x99" * 8)
        region = db.scheme.codeword_table.region_of(address)
        assert db.auditor.start_background_sweep()
        report = db.auditor.join_background_sweep()
        assert not report.clean
        assert region in report.corrupt_regions
        db.close()

    def test_committed_update_mid_sweep_no_false_positive(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        auditor = db.auditor
        maintainer = db.pipeline.maintainer
        assert auditor.start_background_sweep()
        # Mutate while the fold is (or was) racing memory: the touched
        # set forces a synchronous re-check of these regions at join.
        for slot in range(6):
            _touch(db, slot, 7000 + slot)
        assert maintainer.sweep_tracking
        report = auditor.join_background_sweep()
        assert report.clean
        assert not maintainer.sweep_tracking
        db.close()

    def test_corruption_after_fold_is_caught_by_next_sweep(self, tmp_path):
        """A sweep certifies the image as of its begin LSN.  A wild write
        landing after the fold has passed the region is invisible to
        *this* sweep (fold and stored codeword both predate it) -- the
        detection-latency bound is one full-sweep period, exactly as for
        the inline escalation."""
        db = _make_db(str(tmp_path / "db"))
        auditor = db.auditor
        assert auditor.start_background_sweep()
        auditor._sweep.join()  # let the fold finish with the old bytes
        address = db.table("acct").record_address(5) + 8
        db.memory.poke(address, b"\xaa" * 8)
        region = db.scheme.codeword_table.region_of(address)
        report = auditor.join_background_sweep()
        assert report.clean  # the sweep predates the corruption
        assert auditor.start_background_sweep()
        report = auditor.join_background_sweep()
        assert not report.clean and region in report.corrupt_regions
        db.close()


class TestCheckpointJoin:
    def test_checkpoint_joins_in_flight_sweep(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        auditor = db.auditor
        assert auditor.start_background_sweep()
        result = db.checkpoint()
        assert result.certified
        assert auditor._sweep is None
        assert (
            result.audit_report.regions_checked
            == db.scheme.codeword_table.region_count
        )
        db.close()

    def test_checkpoint_without_sweep_uses_dirty_pass(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        _touch(db, 0, 42)
        result = db.checkpoint()
        assert result.certified
        assert (
            result.audit_report.regions_checked
            < db.scheme.codeword_table.region_count
        )
        db.close()


class TestMeterIdentity:
    def test_join_charges_equal_synchronous_full_sweep(self, tmp_path):
        """On a quiescent database the background sweep's meter bill is
        identical to the inline full sweep's -- same latches, same fixed
        costs, same per-word fold charges."""
        deltas = {}
        for mode in ("background", "inline"):
            db = _make_db(
                str(tmp_path / mode), background=(mode == "background")
            )
            for slot in range(8):
                _touch(db, slot, 4000 + slot)
            before = dict(db.meter.counts)
            ns_before = db.meter.clock.now_ns
            if mode == "background":
                assert db.auditor.start_background_sweep()
                report = db.auditor.join_background_sweep()
            else:
                report = db.auditor.run()
            assert report.clean
            deltas[mode] = (
                {
                    event: count - before.get(event, 0)
                    for event, count in db.meter.counts.items()
                    if count != before.get(event, 0)
                },
                db.meter.clock.now_ns - ns_before,
            )
            db.close()
        assert deltas["background"] == deltas["inline"]


class TestShutdownAndRecovery:
    def test_close_abandons_in_flight_sweep(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        assert db.auditor.start_background_sweep()
        db.close()  # must not raise or deadlock
        assert db.auditor._sweep is None

    def test_crash_with_unmatched_audit_begin_recovers(self, tmp_path):
        db = _make_db(str(tmp_path / "db"))
        _touch(db, 0, 77)
        db.checkpoint()
        assert db.auditor.start_background_sweep()
        db.crash()  # abandons the sweep: AUDIT_BEGIN with no AUDIT_END
        db2, _report = Database.recover(db.config)
        txn = db2.begin()
        assert db2.table("acct").read(txn, 0)["balance"] == 77
        db2.commit(txn)
        assert db2.audit().clean
        db2.close()


class TestConfigValidation:
    def test_background_requires_incremental_mode(self, tmp_path):
        from repro.errors import ConfigError

        config = DBConfig(
            dir=str(tmp_path / "bad"),
            scheme="data_cw",
            audit_mode="full",
            background_sweeps=True,
        )
        with pytest.raises(ConfigError):
            Database(config)
