"""Log record codec: roundtrips, CRC protection, logical undo encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LogError
from repro.wal.records import (
    AmendRecord,
    AuditBeginRecord,
    AuditEndRecord,
    LogicalUndo,
    OpBeginRecord,
    OpCommitRecord,
    ReadRecord,
    TxnAbortRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    UpdateRecord,
    decode_record,
    encode_record,
)

EXAMPLES = [
    UpdateRecord(1, 0x100, b"image-bytes"),
    UpdateRecord(2, 0, b"", old_checksum=0xDEADBEEF),
    UpdateRecord(3, 7, b"\x00" * 100, old_checksum=0),
    ReadRecord(4, 0x200, 64),
    ReadRecord(5, 0x200, 64, checksum=123),
    OpBeginRecord(6, op_id=9, level=2, object_key="acct:15"),
    OpCommitRecord(
        7,
        op_id=9,
        level=1,
        object_key="acct:15",
        logical_undo=LogicalUndo("undo_update", ("acct", 15, 8, b"\x01\x02")),
    ),
    TxnBeginRecord(8),
    TxnBeginRecord(8, is_recovery=True),
    TxnCommitRecord(9),
    TxnAbortRecord(10),
    AuditBeginRecord(11),
    AuditEndRecord(12, clean=True),
    AuditEndRecord(13, clean=False, corrupt_regions=(1, 5, 9), region_size=64),
    AmendRecord(14, corrupt_ranges=((0, 64), (4096, 8192)), audit_sn=7),
    AmendRecord(15, audit_sn=0, use_checksums=True, root_txns=(3, 4, 5)),
]


class TestRoundtrips:
    @pytest.mark.parametrize("record", EXAMPLES, ids=lambda r: type(r).__name__)
    def test_encode_decode_roundtrip(self, record):
        decoded, offset = decode_record(encode_record(record))
        assert decoded == record
        assert offset == len(encode_record(record))

    def test_stream_of_records(self):
        blob = b"".join(encode_record(r) for r in EXAMPLES)
        offset = 0
        decoded = []
        while offset < len(blob):
            record, offset = decode_record(blob, offset)
            decoded.append(record)
        assert decoded == EXAMPLES

    @given(
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=0, max_value=2**40),
        st.binary(max_size=300),
        st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)),
    )
    def test_update_record_roundtrip_property(self, txn_id, address, image, checksum):
        record = UpdateRecord(txn_id, address, image, checksum)
        decoded, _ = decode_record(encode_record(record))
        assert decoded == record


class TestCorruptionOfTheLogItself:
    def test_flipped_byte_detected_by_crc(self):
        blob = bytearray(encode_record(EXAMPLES[0]))
        blob[6] ^= 0xFF
        with pytest.raises(LogError, match="CRC"):
            decode_record(bytes(blob))

    def test_truncated_frame_detected(self):
        blob = encode_record(EXAMPLES[0])
        with pytest.raises(LogError):
            decode_record(blob[: len(blob) - 3])

    def test_truncated_header_detected(self):
        with pytest.raises(LogError):
            decode_record(b"\x01\x02")


class TestLogicalUndo:
    def test_all_argument_types(self):
        undo = LogicalUndo("op", (-5, "text", b"\xff\x00", True, False, 0))
        decoded, _ = LogicalUndo.decode(undo.encode())
        assert decoded == undo
        # bool survives as bool, not int
        assert decoded.args[3] is True and decoded.args[4] is False

    def test_empty_args(self):
        undo = LogicalUndo("noop")
        decoded, _ = LogicalUndo.decode(undo.encode())
        assert decoded == undo

    def test_unsupported_arg_type_rejected(self):
        with pytest.raises(LogError):
            LogicalUndo("op", (1.5,)).encode()

    def test_unicode_op_name(self):
        undo = LogicalUndo("op-éü", ("✓",))
        decoded, _ = LogicalUndo.decode(undo.encode())
        assert decoded == undo

    @given(
        st.text(max_size=20),
        st.lists(
            st.one_of(
                st.integers(min_value=-(2**62), max_value=2**62),
                st.text(max_size=30),
                st.binary(max_size=50),
                st.booleans(),
            ),
            max_size=8,
        ),
    )
    def test_roundtrip_property(self, name, args):
        undo = LogicalUndo(name, tuple(args))
        decoded, _ = LogicalUndo.decode(undo.encode())
        assert decoded == undo


class TestApproxSizes:
    @pytest.mark.parametrize("record", EXAMPLES, ids=lambda r: type(r).__name__)
    def test_approx_size_within_2x_of_encoded(self, record):
        """Cost accounting uses approx_size; keep it honest."""
        encoded = len(encode_record(record))
        approx = record.approx_size()
        assert approx > 0
        assert encoded / 3 <= approx <= encoded * 3
