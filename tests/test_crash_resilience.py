"""Crashes at the nastiest moments: mid-checkpoint, mid-recovery."""

import os

import pytest

from repro import Database, CrashPointRegistry, FaultInjector
from repro.errors import SimulatedCrash
from tests.conftest import insert_accounts


class TestCrashDuringCheckpoint:
    def test_scribbled_non_anchored_image_is_harmless(self, db):
        """A crash mid-write of the next ping-pong image must not matter:
        the anchor still names the previous, intact image."""
        slots = insert_accounts(db, 3)
        db.checkpoint()  # anchor -> B (A was written by start())
        anchor = db.checkpointer.read_anchor()
        other = "A" if anchor["image"] == "B" else "B"
        # Simulate a torn image write: trash the non-anchored image file.
        path = db.path(f"ckpt_{other}.img")
        with open(path, "r+b") as handle:
            handle.write(b"\xde\xad" * 1000)
        db.crash()
        db2, report = Database.recover(db.config)
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["balance"] == 100
        db2.commit(txn)
        db2.close()

    def test_missing_meta_for_non_anchored_image_is_harmless(self, db):
        insert_accounts(db, 2)
        db.checkpoint()
        anchor = db.checkpointer.read_anchor()
        other = "A" if anchor["image"] == "B" else "B"
        meta = db.path(f"ckpt_{other}.meta")
        if os.path.exists(meta):
            os.remove(meta)
        db.crash()
        db2, _ = Database.recover(db.config)
        db2.close()


def _arm_and_checkpoint(db, point):
    """Arm ``point``, attempt a checkpoint, and crash at the firing."""
    db.crashpoints.arm(point)
    with pytest.raises(SimulatedCrash) as exc:
        db.checkpoint()
    assert exc.value.point == point
    db.crash()


class TestCheckpointAtomicity:
    """A crash anywhere before the anchor replace must be invisible:
    ``load_latest`` keeps returning the previous consistent image."""

    @pytest.mark.parametrize(
        "point",
        [
            "checkpoint.pre_image",
            "checkpoint.after_image",
            "checkpoint.after_meta",
            "checkpoint.pre_anchor",
        ],
    )
    def test_crash_before_anchor_preserves_previous_checkpoint(self, db, point):
        slots = insert_accounts(db, 3)
        db.checkpoint()
        anchor_before = db.checkpointer.read_anchor()
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 777})
        db.commit(txn)

        _arm_and_checkpoint(db, point)
        # The anchor still names the pre-crash image...
        assert db.checkpointer.read_anchor() == anchor_before
        db2, _ = Database.recover(db.config)
        # ...and recovery replays the commit from the log over it.
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["balance"] == 777
        db2.commit(txn)
        result = db2.checkpoint()
        assert result.certified
        db2.close()

    def test_crash_after_anchor_keeps_new_checkpoint(self, db):
        slots = insert_accounts(db, 3)
        db.checkpoint()
        image_before = db.checkpointer.read_anchor()["image"]
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 888})
        db.commit(txn)

        _arm_and_checkpoint(db, "checkpoint.after_anchor")
        # The replace happened: the anchor names the *new* image, which is
        # complete and certified -- a crash here is benign.
        anchor = db.checkpointer.read_anchor()
        assert anchor["image"] != image_before
        db2, _ = Database.recover(db.config)
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["balance"] == 888
        db2.commit(txn)
        db2.close()


class TestCrashDuringRecovery:
    def test_crash_before_final_checkpoint_reruns_cleanly(self, db_factory):
        """If recovery dies before its final checkpoint, a second recovery
        from the unchanged inputs must reach the same state."""
        db = db_factory(scheme="cw_read_logging")
        slots = insert_accounts(db, 6)
        db.checkpoint()
        table = db.table("acct")
        FaultInjector(db, seed=1).wild_write(table.record_address(slots[1]) + 8, 8)
        txn = db.begin()
        value = table.read(txn, slots[1])["balance"]
        table.update(txn, slots[2], {"balance": value})
        db.commit(txn)
        report = db.audit()
        db.crash_with_corruption(report)

        # First recovery attempt crashes right before amendments + the
        # final recovery checkpoint.
        registry = CrashPointRegistry().arm("recovery.pre_complete")
        with pytest.raises(SimulatedCrash):
            Database.recover(db.config, crashpoints=registry)

        # The corruption note is still there; a fresh recovery succeeds
        # and produces the same delete decisions.
        db2, report2 = Database.recover(db.config)
        assert report2.mode == "delete-transaction-view"
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[2])["balance"] == 100
        assert db2.table("acct").read(txn, slots[1])["balance"] == 100
        db2.commit(txn)
        assert db2.audit().clean
        db2.close()

    def test_recovery_without_anchor_fails_loudly(self, db):
        insert_accounts(db, 1)
        db.crash()
        os.remove(db.path("cur_ckpt"))
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            Database.recover(db.config)
