"""Status reporting and log truncation."""

import pytest

from repro import Database

from tests.conftest import insert_accounts


class TestStatusReport:
    def test_report_structure(self, db_factory):
        db = db_factory(scheme="precheck", region_size=64)
        insert_accounts(db, 5)
        report = db.report()
        assert report["scheme"]["name"] == "precheck"
        assert report["scheme"]["region_size"] == 64
        assert report["scheme"]["space_overhead_pct"] == pytest.approx(6.25)
        assert report["transactions"]["committed"] >= 1
        assert report["tables"]["acct"]["capacity"] == 200
        assert report["events"]  # meter breakdown present
        assert report["memory"]["size_bytes"] > 0

    def test_report_tracks_activity(self, db):
        before = db.report()
        insert_accounts(db, 3)
        db.checkpoint()
        db.audit()
        after = db.report()
        assert after["transactions"]["committed"] > before["transactions"]["committed"]
        assert after["checkpoints"]["taken"] > before["checkpoints"]["taken"]
        assert after["audits"]["runs"] > before["audits"]["runs"]
        assert after["virtual_time_s"] > before["virtual_time_s"]

    def test_status_text(self, db_factory):
        db = db_factory(scheme="data_cw")
        insert_accounts(db, 2)
        text = db.status()
        assert "scheme: data_cw" in text
        assert "transactions:" in text
        assert "top cost events" in text

    def test_index_types_reported(self, tmp_path):
        from repro import DBConfig
        from tests.conftest import ACCT_SCHEMA

        db = Database(DBConfig(dir=str(tmp_path / "r")))
        db.create_table("h", ACCT_SCHEMA, 10, key_field="id")
        db.create_table("b", ACCT_SCHEMA, 10, key_field="id", index_type="btree")
        db.create_table("n", ACCT_SCHEMA, 10, indexed=False)
        db.start()
        tables = db.report()["tables"]
        assert tables["h"]["index"] == "HashIndex"
        assert tables["b"]["index"] == "BTreeIndex"
        assert tables["n"]["index"] is None
        db.close()


class TestLogTruncation:
    def test_truncation_reclaims_old_records(self, db):
        slots = insert_accounts(db, 5)
        db.checkpoint()
        before = db.system_log.stable_record_count
        removed = db.truncate_log()
        assert removed > 0
        assert db.system_log.stable_record_count == before - removed

    def test_recovery_works_after_truncation(self, db):
        slots = insert_accounts(db, 3)
        db.checkpoint()
        db.truncate_log()
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 404})
        db.commit(txn)
        db.crash()
        db2, report = Database.recover(db.config)
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["balance"] == 404
        db2.commit(txn)
        db2.close()

    def test_keep_from_lsn_preserves_archive_window(self, db):
        from repro.recovery.archive import create_archive, recover_from_archive

        slots = insert_accounts(db, 3)
        info = create_archive(db, db.path("arch"))
        txn = db.begin()
        db.table("acct").update(txn, slots[1], {"balance": 55})
        db.commit(txn)
        db.checkpoint()
        # Truncate but keep the log the archive needs.
        db.truncate_log(keep_from_lsn=info.ck_end)
        db.crash()
        db2, _ = recover_from_archive(db.config, info.path)
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[1])["balance"] == 55
        db2.commit(txn)
        db2.close()

    def test_truncating_nothing_returns_zero(self, db):
        insert_accounts(db, 1)
        db.checkpoint()
        db.truncate_log()
        assert db.truncate_log() == 0
