"""Latch-mode concurrency semantics of Section 3.1/3.2.

"If so, a new latch, the codeword latch, may be introduced to guard the
update to the actual codewords, and the protection latch for a region
need only be held in shared mode by updaters.  During audit, the
protection latch must be taken in exclusive mode."

These tests drive the scheme hooks directly from two threads (each with
its own transaction object) and verify who blocks whom:

* Data Codeword: two updaters share a region's protection latch;
* Read Prechecking: updaters exclude each other and readers;
* audits exclude updaters under both.
"""

from __future__ import annotations

import threading

from repro.core.data_codeword import DataCodewordScheme
from repro.core.precheck import ReadPrecheckScheme
from repro.mem.memory import MemoryImage
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import CostModel
from repro.txn.transaction import Transaction

REGION = 4096


def make_scheme(cls, **kwargs):
    memory = MemoryImage(page_size=4096)
    memory.add_segment("data", 2 * REGION)
    scheme = cls(region_size=REGION, **kwargs)
    scheme.attach(memory, Meter(VirtualClock(), CostModel.free()))
    scheme.startup()
    return scheme, memory


def window_in_thread(scheme, address, entered: threading.Event, release: threading.Event):
    """Open an update window in a thread; signal entry, wait to close."""
    txn = Transaction(txn_id=999)

    def work():
        scheme.on_begin_update(txn, address, 8)
        entered.set()
        release.wait(timeout=5)
        old = scheme.memory.read(address, 8)
        new = b"\x01" * 8
        scheme.memory.write(address, new)
        scheme.on_end_update(txn, address, old, new)

    thread = threading.Thread(target=work)
    thread.start()
    return thread


class TestDataCodewordSharing:
    def test_two_updaters_share_one_region(self):
        """Both windows open concurrently in the SAME region."""
        scheme, _memory = make_scheme(DataCodewordScheme)
        entered_a, release_a = threading.Event(), threading.Event()
        entered_b, release_b = threading.Event(), threading.Event()
        thread_a = window_in_thread(scheme, 0, entered_a, release_a)
        assert entered_a.wait(timeout=5)
        thread_b = window_in_thread(scheme, 64, entered_b, release_b)
        # B enters while A still holds its window: shared latch mode.
        assert entered_b.wait(timeout=5)
        release_a.set()
        release_b.set()
        thread_a.join(timeout=5)
        thread_b.join(timeout=5)
        assert scheme.codeword_table.scan_mismatches() == []

    def test_audit_excluded_while_updater_active(self):
        """The auditor needs the protection latch exclusively."""
        scheme, _memory = make_scheme(DataCodewordScheme)
        entered, release = threading.Event(), threading.Event()
        thread = window_in_thread(scheme, 0, entered, release)
        assert entered.wait(timeout=5)
        audit_done = threading.Event()
        result = {}

        def audit():
            result["corrupt"] = scheme.audit_regions([0])
            audit_done.set()

        auditor = threading.Thread(target=audit)
        auditor.start()
        # The audit must NOT complete while the window is open.
        assert not audit_done.wait(timeout=0.2)
        release.set()
        thread.join(timeout=5)
        assert audit_done.wait(timeout=5)
        auditor.join(timeout=5)
        assert result["corrupt"] == []


class TestPrecheckExclusion:
    def test_updaters_exclude_each_other_in_a_region(self):
        scheme, _memory = make_scheme(ReadPrecheckScheme)
        entered_a, release_a = threading.Event(), threading.Event()
        entered_b, release_b = threading.Event(), threading.Event()
        thread_a = window_in_thread(scheme, 0, entered_a, release_a)
        assert entered_a.wait(timeout=5)
        thread_b = window_in_thread(scheme, 64, entered_b, release_b)
        # B must block: exclusive protection latch.
        assert not entered_b.wait(timeout=0.2)
        release_a.set()
        thread_a.join(timeout=5)
        assert entered_b.wait(timeout=5)
        release_b.set()
        thread_b.join(timeout=5)
        assert scheme.codeword_table.scan_mismatches() == []

    def test_updaters_in_different_regions_do_not_interact(self):
        scheme, _memory = make_scheme(ReadPrecheckScheme)
        entered_a, release_a = threading.Event(), threading.Event()
        entered_b, release_b = threading.Event(), threading.Event()
        thread_a = window_in_thread(scheme, 0, entered_a, release_a)
        assert entered_a.wait(timeout=5)
        thread_b = window_in_thread(scheme, REGION, entered_b, release_b)
        assert entered_b.wait(timeout=5)  # different region: no conflict
        release_a.set()
        release_b.set()
        thread_a.join(timeout=5)
        thread_b.join(timeout=5)

    def test_reader_blocks_behind_open_window(self):
        """Prechecking readers take the latch exclusively too."""
        scheme, _memory = make_scheme(ReadPrecheckScheme)
        entered, release = threading.Event(), threading.Event()
        writer = window_in_thread(scheme, 0, entered, release)
        assert entered.wait(timeout=5)
        read_done = threading.Event()

        def read():
            txn = Transaction(txn_id=1000)
            scheme.on_read(txn, 16, 8)
            read_done.set()

        reader = threading.Thread(target=read)
        reader.start()
        assert not read_done.wait(timeout=0.2)
        release.set()
        writer.join(timeout=5)
        assert read_done.wait(timeout=5)
        reader.join(timeout=5)
