"""In-image B+tree: structure, model equivalence, table integration."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, OutOfSpaceError
from repro.mem.memory import MemoryImage
from repro.storage.btree import BTreeIndex, LEAF_KEYS


class RawAccessor:
    def __init__(self, memory: MemoryImage) -> None:
        self.memory = memory

    def read(self, address: int, length: int) -> bytes:
        return self.memory.read(address, length)

    def update(self, address: int, new_bytes: bytes) -> None:
        self.memory.write(address, new_bytes)


def make_tree(node_capacity=256):
    memory = MemoryImage(page_size=4096)
    seg = memory.add_segment("idx", BTreeIndex.size_for(node_capacity))
    tree = BTreeIndex(seg.base, node_capacity)
    ctx = RawAccessor(memory)
    tree.format(ctx)
    return tree, ctx


class TestBasics:
    def test_empty_lookup(self):
        tree, ctx = make_tree()
        assert tree.lookup(ctx, 5) is None
        assert tree.depth(ctx) == 0

    def test_single_insert(self):
        tree, ctx = make_tree()
        tree.insert(ctx, 5, 50)
        assert tree.lookup(ctx, 5) == 50
        assert tree.depth(ctx) == 1

    def test_duplicate_key_rejected(self):
        tree, ctx = make_tree()
        tree.insert(ctx, 5, 50)
        with pytest.raises(ConfigError):
            tree.insert(ctx, 5, 51)

    def test_negative_keys(self):
        tree, ctx = make_tree()
        tree.insert(ctx, -1000, 1)
        tree.insert(ctx, 1000, 2)
        assert tree.lookup(ctx, -1000) == 1
        assert list(tree.iter_all(ctx)) == [(-1000, 1), (1000, 2)]

    def test_delete(self):
        tree, ctx = make_tree()
        for k in range(10):
            tree.insert(ctx, k, k)
        assert tree.delete(ctx, 4)
        assert tree.lookup(ctx, 4) is None
        assert not tree.delete(ctx, 4)
        assert tree.lookup(ctx, 5) == 5

    def test_delete_from_empty(self):
        tree, ctx = make_tree()
        assert not tree.delete(ctx, 1)


class TestSplits:
    def test_leaf_split_grows_depth(self):
        tree, ctx = make_tree()
        for k in range(LEAF_KEYS + 1):
            tree.insert(ctx, k, k)
        assert tree.depth(ctx) == 2
        for k in range(LEAF_KEYS + 1):
            assert tree.lookup(ctx, k) == k

    def test_three_levels(self):
        tree, ctx = make_tree(node_capacity=512)
        count = 400  # forces internal splits
        for k in range(count):
            tree.insert(ctx, k, k * 2)
        assert tree.depth(ctx) >= 3
        for k in range(count):
            assert tree.lookup(ctx, k) == k * 2

    def test_random_insertion_order(self):
        tree, ctx = make_tree(node_capacity=512)
        keys = list(range(300))
        random.Random(7).shuffle(keys)
        for k in keys:
            tree.insert(ctx, k, k)
        assert [k for k, _v in tree.iter_all(ctx)] == sorted(keys)

    def test_node_exhaustion(self):
        tree, ctx = make_tree(node_capacity=2)
        with pytest.raises(OutOfSpaceError):
            for k in range(100):
                tree.insert(ctx, k, k)


class TestRange:
    def test_range_inclusive(self):
        tree, ctx = make_tree()
        for k in range(0, 100, 10):
            tree.insert(ctx, k, k)
        assert [k for k, _ in tree.range(ctx, 20, 50)] == [20, 30, 40, 50]

    def test_range_across_leaves(self):
        tree, ctx = make_tree(node_capacity=512)
        for k in range(200):
            tree.insert(ctx, k, k)
        result = [k for k, _ in tree.range(ctx, 50, 149)]
        assert result == list(range(50, 150))

    def test_empty_and_inverted_ranges(self):
        tree, ctx = make_tree()
        tree.insert(ctx, 5, 5)
        assert list(tree.range(ctx, 10, 20)) == []
        assert list(tree.range(ctx, 20, 10)) == []

    def test_range_skips_deleted(self):
        tree, ctx = make_tree()
        for k in range(10):
            tree.insert(ctx, k, k)
        tree.delete(ctx, 5)
        assert [k for k, _ in tree.range(ctx, 0, 9)] == [0, 1, 2, 3, 4, 6, 7, 8, 9]


class TestModelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "lookup"]),
                st.integers(min_value=-100, max_value=100),
            ),
            max_size=150,
        )
    )
    def test_matches_dict_model(self, operations):
        tree, ctx = make_tree(node_capacity=512)
        model: dict[int, int] = {}
        for op, key in operations:
            if op == "insert":
                if key in model:
                    continue
                model[key] = abs(key) + 1
                tree.insert(ctx, key, abs(key) + 1)
            elif op == "delete":
                assert tree.delete(ctx, key) == (key in model)
                model.pop(key, None)
            else:
                assert tree.lookup(ctx, key) == model.get(key)
        assert list(tree.iter_all(ctx)) == sorted(model.items())


class TestTableIntegration:
    @pytest.fixture
    def bdb(self, tmp_path):
        from repro import Database, DBConfig
        from tests.conftest import ACCT_SCHEMA

        db = Database(DBConfig(dir=str(tmp_path / "b"), scheme="data_cw"))
        db.create_table("acct", ACCT_SCHEMA, 500, key_field="id", index_type="btree")
        db.start()
        return db

    def test_crud_through_btree(self, bdb):
        table = bdb.table("acct")
        txn = bdb.begin()
        for i in range(50):
            table.insert(txn, {"id": i * 3, "balance": i})
        assert table.lookup(txn, 30) is not None
        table.delete(txn, table.lookup(txn, 30))
        assert table.lookup(txn, 30) is None
        bdb.commit(txn)
        assert bdb.audit().clean

    def test_range_scan_returns_rows_in_order(self, bdb):
        table = bdb.table("acct")
        txn = bdb.begin()
        for i in range(30):
            table.insert(txn, {"id": i, "balance": i * 10})
        rows = list(table.range(txn, 10, 14))
        assert [k for k, _ in rows] == [10, 11, 12, 13, 14]
        assert rows[0][1]["balance"] == 100
        bdb.commit(txn)

    def test_range_on_hash_table_rejected(self, db):
        txn = db.begin()
        with pytest.raises(ConfigError):
            list(db.table("acct").range(txn, 0, 10))
        db.commit(txn)

    def test_abort_restores_btree(self, bdb):
        table = bdb.table("acct")
        txn = bdb.begin()
        for i in range(20):
            table.insert(txn, {"id": i, "balance": i})
        bdb.commit(txn)
        txn = bdb.begin()
        table.insert(txn, {"id": 100, "balance": 1})
        table.delete(txn, table.lookup(txn, 5))
        bdb.abort(txn)
        txn = bdb.begin()
        assert table.lookup(txn, 100) is None
        assert table.lookup(txn, 5) is not None
        assert [k for k, _ in table.range(txn, 0, 200)] == list(range(20))
        bdb.commit(txn)
        assert bdb.audit().clean

    def test_btree_survives_crash_recovery(self, bdb):
        from repro import Database

        table = bdb.table("acct")
        txn = bdb.begin()
        for i in range(40):
            table.insert(txn, {"id": i, "balance": i})
        bdb.commit(txn)
        bdb.crash()
        db2, _ = Database.recover(bdb.config)
        txn = db2.begin()
        t2 = db2.table("acct")
        assert [k for k, _ in t2.range(txn, 0, 100)] == list(range(40))
        db2.commit(txn)
        db2.close()

    def test_corruption_in_btree_node_detected(self, bdb):
        from repro import FaultInjector

        table = bdb.table("acct")
        txn = bdb.begin()
        for i in range(30):
            table.insert(txn, {"id": i, "balance": i})
        bdb.commit(txn)
        FaultInjector(bdb, seed=1).wild_write(table.index.pool_base + 32, 8)
        assert not bdb.audit().clean
